"""Tests for the paper-figure renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.random_shapes import random_query_polygon
from repro.viz.figures import (
    render_candidate_comparison,
    render_query_result,
    render_voronoi_delaunay,
)
from repro.workloads.generators import uniform_points

NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase.from_points(uniform_points(300, seed=281)).prepare()


@pytest.fixture(scope="module")
def area():
    import random

    return random_query_polygon(0.08, rng=random.Random(283))


class TestQueryResult:
    def test_valid_svg_with_all_points(self, db, area):
        svg = render_query_result(db, area)
        root = ET.fromstring(svg)
        circles = root.findall(f"{NS}circle")
        assert len(circles) == 300
        polygons = root.findall(f"{NS}polygon")
        assert len(polygons) == 1

    def test_results_colored_distinctly(self, db, area):
        svg = render_query_result(db, area)
        root = ET.fromstring(svg)
        fills = {c.get("fill") for c in root.findall(f"{NS}circle")}
        assert "black" in fills  # results
        assert len(fills) == 2  # results + background


class TestCandidateComparison:
    def test_two_panels(self, db, area):
        svg = render_candidate_comparison(db, area)
        root = ET.fromstring(svg)
        panels = root.findall(f"{NS}svg")
        assert len(panels) == 2

    def test_candidate_counts_in_labels(self, db, area):
        svg = render_candidate_comparison(db, area)
        root = ET.fromstring(svg)
        labels = [
            t.text
            for panel in root.findall(f"{NS}svg")
            for t in panel.findall(f"{NS}text")
        ]
        assert any("traditional" in label for label in labels)
        assert any("voronoi" in label for label in labels)

    def test_green_candidates_present(self, db, area):
        svg = render_candidate_comparison(db, area)
        assert "#2ca02c" in svg  # the paper's green candidate dots

    def test_voronoi_panel_has_fewer_green_dots(self, db):
        # A big irregular area at decent density: the Voronoi panel must
        # show fewer redundant (green) candidates than the traditional one.
        import random

        dense = SpatialDatabase.from_points(
            uniform_points(3000, seed=285), backend_kind="scipy"
        ).prepare()
        area = random_query_polygon(0.15, rng=random.Random(287))
        svg = render_candidate_comparison(dense, area)
        root = ET.fromstring(svg)
        panels = root.findall(f"{NS}svg")
        green_counts = [
            sum(
                1
                for c in panel.findall(f"{NS}circle")
                if c.get("fill") == "#2ca02c"
            )
            for panel in panels
        ]
        traditional_green, voronoi_green = green_counts
        assert voronoi_green < traditional_green


class TestVoronoiDelaunay:
    def test_two_panels_with_cells_and_edges(self):
        points = uniform_points(40, seed=289)
        svg = render_voronoi_delaunay(points)
        root = ET.fromstring(svg)
        panels = root.findall(f"{NS}svg")
        assert len(panels) == 2
        voronoi_panel, delaunay_panel = panels
        assert len(voronoi_panel.findall(f"{NS}polygon")) == 40  # cells
        assert len(delaunay_panel.findall(f"{NS}line")) > 40  # edges
        # 40 generator dots on each panel.
        assert len(voronoi_panel.findall(f"{NS}circle")) == 40
        assert len(delaunay_panel.findall(f"{NS}circle")) == 40
