"""Tests for the SVG canvas (well-formedness and coordinate transform)."""

import xml.etree.ElementTree as ET

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.viz.svg import SvgCanvas, side_by_side

NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_empty_document_is_valid_xml(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        root = _parse(canvas.to_svg())
        assert root.tag == f"{NS}svg"

    def test_rejects_degenerate_world(self):
        with pytest.raises(ValueError):
            SvgCanvas(Rect(0, 0, 0, 1))

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            SvgCanvas(Rect(0, 0, 1, 1), width=10, padding=8)

    def test_aspect_ratio_preserved(self):
        canvas = SvgCanvas(Rect(0, 0, 2, 1), width=640, padding=0)
        assert canvas.height == 320

    def test_to_pixel_corners(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1), width=100, padding=10)
        # World origin maps to bottom-left (y flipped).
        assert canvas.to_pixel(Point(0, 0)) == (10.0, canvas.height - 10.0)
        assert canvas.to_pixel(Point(1, 1)) == (90.0, 10.0)

    def test_y_axis_flipped(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        _, y_low = canvas.to_pixel(Point(0.5, 0.1))
        _, y_high = canvas.to_pixel(Point(0.5, 0.9))
        assert y_high < y_low


class TestElements:
    def test_circle_element(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.circle(Point(0.5, 0.5), 3, fill="red")
        root = _parse(canvas.to_svg())
        circles = root.findall(f"{NS}circle")
        assert len(circles) == 1
        assert circles[0].get("fill") == "red"

    def test_polygon_element(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.polygon([Point(0, 0), Point(1, 0), Point(0, 1)], stroke="blue")
        root = _parse(canvas.to_svg())
        polygons = root.findall(f"{NS}polygon")
        assert len(polygons) == 1
        assert len(polygons[0].get("points").split()) == 3

    def test_line_and_polyline(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.line(Point(0, 0), Point(1, 1))
        canvas.polyline([Point(0, 0), Point(0.5, 1), Point(1, 0)])
        root = _parse(canvas.to_svg())
        assert len(root.findall(f"{NS}line")) == 1
        assert len(root.findall(f"{NS}polyline")) == 1

    def test_text_escaped(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.text(Point(0.5, 0.5), "a < b & c")
        root = _parse(canvas.to_svg())  # parse fails if not escaped
        assert root.findall(f"{NS}text")[0].text == "a < b & c"

    def test_world_circle_radius_scaled(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1), width=120, padding=10)
        canvas.world_circle(Point(0.5, 0.5), 0.25)
        root = _parse(canvas.to_svg())
        r = float(root.findall(f"{NS}circle")[0].get("r"))
        assert r == pytest.approx(0.25 * 100, abs=0.1)

    def test_save(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.circle(Point(0.5, 0.5), 2)
        path = tmp_path / "figure.svg"
        canvas.save(path)
        assert _parse(path.read_text()).tag == f"{NS}svg"


class TestSideBySide:
    def test_compose_two(self):
        a = SvgCanvas(Rect(0, 0, 1, 1), width=100)
        b = SvgCanvas(Rect(0, 0, 1, 1), width=100)
        a.circle(Point(0.5, 0.5), 2)
        b.circle(Point(0.5, 0.5), 2)
        root = _parse(side_by_side([a, b]))
        nested = root.findall(f"{NS}svg")
        assert len(nested) == 2
        assert int(root.get("width")) == 216  # 100 + 16 + 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            side_by_side([])
