"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point, Polygon, Rect
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="session")
def uniform_200():
    """200 uniform points in the unit square (session-cached)."""
    return uniform_points(200, seed=42)


@pytest.fixture(scope="session")
def uniform_1000():
    """1000 uniform points in the unit square (session-cached)."""
    return uniform_points(1000, seed=7)


@pytest.fixture
def rng():
    """A fresh seeded RNG per test."""
    return random.Random(1234)


@pytest.fixture
def unit_square():
    return Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def concave_polygon():
    """An L-shaped (concave) polygon inside the unit square."""
    return Polygon(
        [
            Point(0.1, 0.1),
            Point(0.9, 0.1),
            Point(0.9, 0.5),
            Point(0.5, 0.5),
            Point(0.5, 0.9),
            Point(0.1, 0.9),
        ]
    )


@pytest.fixture
def triangle():
    return Polygon([Point(0.0, 0.0), Point(1.0, 0.0), Point(0.0, 1.0)])
