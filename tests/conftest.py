"""Shared fixtures for the repro test suite.

Also registers the deterministic ``ci`` Hypothesis profile: CI exports
``HYPOTHESIS_PROFILE=ci`` so property tests run derandomised (fixed
example derivation — a failure in the CI logs reproduces exactly with
the same env var locally) and without the wall-clock deadline (shared
runners are slow and deadline flakes are not real failures).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.geometry import Point, Polygon, Rect
from repro.workloads.generators import uniform_points

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    _hypothesis_settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        print_blob=True,
    )
    _profile = os.environ.get("HYPOTHESIS_PROFILE")
    if _profile:
        _hypothesis_settings.load_profile(_profile)


@pytest.fixture(scope="session")
def uniform_200():
    """200 uniform points in the unit square (session-cached)."""
    return uniform_points(200, seed=42)


@pytest.fixture(scope="session")
def uniform_1000():
    """1000 uniform points in the unit square (session-cached)."""
    return uniform_points(1000, seed=7)


@pytest.fixture
def rng():
    """A fresh seeded RNG per test."""
    return random.Random(1234)


@pytest.fixture
def unit_square():
    return Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def concave_polygon():
    """An L-shaped (concave) polygon inside the unit square."""
    return Polygon(
        [
            Point(0.1, 0.1),
            Point(0.9, 0.1),
            Point(0.9, 0.5),
            Point(0.5, 0.5),
            Point(0.5, 0.9),
            Point(0.1, 0.9),
        ]
    )


@pytest.fixture
def triangle():
    return Polygon([Point(0.0, 0.0), Point(1.0, 0.0), Point(0.0, 1.0)])
