"""Unit tests of the CI perf gate (tools/bench_delta.py).

Covers the two personalities of the tool: the *trajectory summary*
(delta rows, ``new``/``removed`` markers) and the *enforced gate*
(stable-set regressions and removals exit 2; everything else warns).
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from bench_delta import (  # noqa: E402
    STABLE_BENCHMARKS,
    TOLERANCE,
    compare,
    load_record,
    main,
)

#: an arbitrary member of the enforced set, used by the gate tests
STABLE = "server_coalescing_speedup"


def record(**results):
    """A minimal BENCH_pr.json payload with the given results section."""
    return {"schema": "repro-bench/1", "python": "3.12.0", "results": results}


class TestStableSet:
    def test_declared_set_matches_the_recorded_benchmarks(self):
        """Every stable name really is produced by the bench suite.

        The names here are the ``record_benchmark`` keys of the
        committed ``BENCH_pr.json``; a typo in STABLE_BENCHMARKS would
        otherwise silently gate nothing.
        """
        bench_json = Path(__file__).resolve().parents[2] / "BENCH_pr.json"
        recorded = set(
            json.loads(bench_json.read_text(encoding="utf-8"))["results"]
        )
        missing = STABLE_BENCHMARKS - recorded
        assert not missing, (
            f"stable benchmarks never recorded: {sorted(missing)}"
        )

    def test_new_benchmarks_start_outside_the_stable_set(self):
        # The one-PR probation: benches added in this PR warn only.
        assert "cluster_read_throughput" not in STABLE_BENCHMARKS

    def test_previous_pr_benchmarks_are_promoted(self):
        # ...and benches that survived their probation PR are enforced.
        assert "skewed_tail_latency" in STABLE_BENCHMARKS
        assert "overload_shedding" in STABLE_BENCHMARKS


class TestCompare:
    def test_improvement_and_noise_are_not_regressions(self):
        previous = record(bench={"speedup": 2.0, "batch_ms": 100.0})
        current = record(bench={"speedup": 2.1, "batch_ms": 95.0})
        rows, warnings, failures = compare(previous, current)
        assert warnings == [] and failures == []
        assert all(not row[5] for row in rows)

    def test_shrinking_speedup_warns_outside_the_stable_set(self):
        previous = record(bench={"speedup": 2.0})
        current = record(bench={"speedup": 2.0 * (1 - TOLERANCE) - 0.1})
        rows, warnings, failures = compare(previous, current)
        assert len(warnings) == 1 and "regressed" in warnings[0]
        assert failures == []
        assert rows[0][5] is True

    def test_shrinking_stable_speedup_is_a_failure(self):
        previous = record(**{STABLE: {"speedup": 2.0}})
        current = record(**{STABLE: {"speedup": 1.5}})
        rows, warnings, failures = compare(previous, current)
        assert warnings == []
        assert len(failures) == 1 and "regressed" in failures[0]
        assert rows[0][5] is True

    def test_growing_stable_time_fails_lower_is_better(self):
        previous = record(**{STABLE: {"coalesced_ms": 100.0}})
        current = record(**{STABLE: {"coalesced_ms": 140.0}})
        _, warnings, failures = compare(previous, current)
        assert warnings == [] and len(failures) == 1

    def test_small_shrink_within_tolerance_passes(self):
        previous = record(**{STABLE: {"speedup": 2.0}})
        current = record(**{STABLE: {"speedup": 2.0 * (1 - TOLERANCE / 2)}})
        _, warnings, failures = compare(previous, current)
        assert warnings == [] and failures == []

    def test_context_keys_and_non_numeric_skipped(self):
        previous = record(
            bench={"threshold": 1.3, "clients": 8, "materialised": False}
        )
        current = record(
            bench={"threshold": 1.5, "clients": 4, "materialised": True}
        )
        rows, warnings, failures = compare(previous, current)
        assert rows == [] and warnings == [] and failures == []

    def test_new_benchmark_renders_explicit_new_rows(self):
        """First-appearance benchmarks are visible, never regressions."""
        previous = record(old_bench={"speedup": 1.5})
        current = record(
            new_bench={"speedup": 1.8, "threshold": 2.0},
            old_bench={"speedup": 1.55},
        )
        rows, warnings, failures = compare(previous, current)
        assert warnings == [] and failures == []
        new_rows = [row for row in rows if row[4] == "new"]
        assert new_rows == [("new_bench", "speedup", "—", 1.8, "new", False)]
        # context keys of a new benchmark stay excluded
        assert not any(row[1] == "threshold" for row in rows)

    def test_new_metric_on_existing_benchmark_is_a_new_row(self):
        previous = record(bench={"speedup": 2.0})
        current = record(bench={"speedup": 2.1, "scalar_ms": 40.0})
        rows, warnings, failures = compare(previous, current)
        assert warnings == [] and failures == []
        assert ("bench", "scalar_ms", "—", 40.0, "new", False) in rows

    def test_vanished_benchmark_renders_an_explicit_removed_row(self):
        previous = record(old_bench={"speedup": 1.5})
        current = record()
        rows, warnings, failures = compare(previous, current)
        assert rows == [
            ("old_bench", "speedup", 1.5, "—", "removed", False)
        ]
        assert len(warnings) == 1 and "disappeared" in warnings[0]
        assert failures == []  # not stable: visible but tolerated

    def test_vanished_stable_benchmark_is_a_failure(self):
        previous = record(**{STABLE: {"speedup": 2.0}})
        current = record()
        rows, warnings, failures = compare(previous, current)
        assert rows == [(STABLE, "speedup", 2.0, "—", "removed", True)]
        assert warnings == []
        assert len(failures) == 1
        assert "STABLE_BENCHMARKS" in failures[0]

    def test_vanished_context_keys_stay_silent(self):
        previous = record(bench={"clients": 8, "speedup": 2.0})
        current = record(bench={"speedup": 2.0})
        rows, warnings, failures = compare(previous, current)
        assert warnings == [] and failures == []
        assert not any(row[4] == "removed" for row in rows)

    def test_new_and_removed_rows_reach_the_rendered_table(self):
        from bench_delta import render_markdown

        previous = record(gone={"loop_ms": 9.0})
        current = record(columnar={"speedup": 5.0})
        rows, _, _ = compare(previous, current)
        table = render_markdown(rows, previous, current)
        assert "| columnar | speedup | — | 5.0 | new |" in table
        assert "| gone | loop_ms | 9.0 | — | removed | ⚠️ removed |" in table


class TestLoadRecord:
    def test_missing_and_invalid_files(self, tmp_path):
        assert load_record(str(tmp_path / "absent.json")) is None
        broken = tmp_path / "broken.json"
        broken.write_text("not json", encoding="utf-8")
        assert load_record(str(broken)) is None
        no_results = tmp_path / "odd.json"
        no_results.write_text('{"schema": "x"}', encoding="utf-8")
        assert load_record(str(no_results)) is None


class TestMain:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_missing_previous_is_fine(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        self._write(current, record(bench={"speedup": 2.0}))
        assert main([str(tmp_path / "absent.json"), str(current)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_missing_current_fails(self, tmp_path, capsys):
        assert main([str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 1
        assert "::warning::" in capsys.readouterr().out

    def test_stable_regression_exits_2_with_error_command(
        self, tmp_path, capsys
    ):
        previous = tmp_path / "prev.json"
        current = tmp_path / "cur.json"
        self._write(previous, record(**{STABLE: {"speedup": 2.0}}))
        self._write(current, record(**{STABLE: {"speedup": 1.2}}))
        assert main([str(previous), str(current)]) == 2
        out = capsys.readouterr().out
        assert "::error::" in out and "regressed" in out

    def test_warn_only_downgrades_the_gate_to_exit_0(
        self, tmp_path, capsys
    ):
        previous = tmp_path / "prev.json"
        current = tmp_path / "cur.json"
        self._write(previous, record(**{STABLE: {"speedup": 2.0}}))
        self._write(current, record(**{STABLE: {"speedup": 1.2}}))
        assert main([str(previous), str(current), "--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "::error::" not in out
        assert "::warning::" in out

    def test_unstable_regression_still_exits_0(self, tmp_path, capsys):
        previous = tmp_path / "prev.json"
        current = tmp_path / "cur.json"
        self._write(previous, record(bench={"speedup": 2.0}))
        self._write(current, record(bench={"speedup": 1.2}))
        assert main([str(previous), str(current)]) == 0
        out = capsys.readouterr().out
        assert "::warning::" in out and "::error::" not in out

    def test_summary_file_receives_the_table(self, tmp_path, capsys):
        previous = tmp_path / "prev.json"
        current = tmp_path / "cur.json"
        summary = tmp_path / "summary.md"
        self._write(previous, record(bench={"speedup": 2.0, "batch_ms": 50}))
        self._write(current, record(bench={"speedup": 1.2, "batch_ms": 80}))
        assert (
            main([str(previous), str(current), "--summary", str(summary)])
            == 0
        )
        out = capsys.readouterr().out
        table = summary.read_text(encoding="utf-8")
        assert "| bench | speedup | 2.0 | 1.2 |" in table
        assert "regression" in table
        assert out.count("::warning::") == 2  # speedup down, time up


@pytest.mark.parametrize(
    "name,direction",
    [("speedup", 1), ("loop_ms", -1), ("seed_walk_reuses", 1)],
)
def test_direction_heuristic(name, direction):
    from bench_delta import _direction

    assert _direction(name) == direction
