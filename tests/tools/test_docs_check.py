"""Tests for the documentation integrity checker (`tools/docs_check.py`).

The checker gates two rot modes — dead cross-links/anchors and stale
CLI examples — so the tests exercise both the detectors (on synthetic
markdown written to tmp_path) and the live contract: the repository's
own docs must come back clean, and the slug/subcommand oracles must
match reality.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import docs_check  # noqa: E402


class TestGithubSlug:
    @pytest.mark.parametrize(
        "heading, slug",
        [
            ("Plain Heading", "plain-heading"),
            ("The `stats` frame", "the-stats-frame"),
            ("Backpressure and load shedding", "backpressure-and-load-shedding"),
            ("p50/p95/p99, per kind!", "p50p95p99-per-kind"),
            ("  Spaced  ", "spaced"),
        ],
    )
    def test_slugs(self, heading, slug):
        assert docs_check.github_slug(heading) == slug


class TestMarkdownAnchors:
    def test_headings_collected_fences_ignored(self):
        text = (
            "# Top\n\nbody\n\n## Sub Section\n\n"
            "```bash\n# not a heading\n```\n\n### `code` head\n"
        )
        anchors = docs_check.markdown_anchors(text)
        assert anchors == {"top", "sub-section", "code-head"}


class TestShellFences:
    def test_only_shell_languages_and_line_numbers(self):
        text = (
            "intro\n\n```python\nprint('x')\n```\n\n"
            "```bash\npython -m repro demo\n```\n"
        )
        fences = docs_check.shell_fences(text)
        assert len(fences) == 1
        line, body = fences[0]
        assert "repro demo" in body
        assert text.splitlines()[line - 1].startswith("```bash")


class TestOracles:
    def test_known_subcommands_match_reality(self):
        subcommands = docs_check.known_subcommands()
        assert {"serve", "query", "experiments", "demo"} <= subcommands

    def test_experiment_targets_match_reality(self):
        targets = docs_check.experiment_targets()
        assert {"tail", "overload", "serve", "all"} <= targets


class TestCheckLinks:
    def _run(self, tmp_path, text, name="page.md"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return docs_check.check_links(path, text, {})

    def test_clean_relative_link_and_anchor(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real Heading\n")
        findings = self._run(
            tmp_path, "[ok](other.md) and [deep](other.md#real-heading)\n"
        )
        assert findings == []

    def test_dead_file_reported_with_line(self, tmp_path):
        findings = self._run(tmp_path, "line one\n[bad](missing.md)\n")
        assert len(findings) == 1
        assert ":2: dead link" in findings[0]

    def test_dead_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real Heading\n")
        findings = self._run(tmp_path, "[bad](other.md#no-such)\n")
        assert len(findings) == 1
        assert "dead anchor" in findings[0]

    def test_own_page_anchor(self, tmp_path):
        text = "# Here\n\n[self](#here) [bad](#gone)\n"
        findings = self._run(tmp_path, text)
        assert len(findings) == 1
        assert "#gone" in findings[0]

    def test_external_schemes_skipped(self, tmp_path):
        findings = self._run(
            tmp_path,
            "[web](https://example.com/x) [mail](mailto:a@b.c)\n",
        )
        assert findings == []

    def test_links_inside_fences_ignored(self, tmp_path):
        findings = self._run(
            tmp_path, "```bash\necho [fake](missing.md)\n```\n"
        )
        assert findings == []


class TestCheckCliExamples:
    def _run(self, tmp_path, body):
        path = tmp_path / "page.md"
        text = f"```bash\n{body}\n```\n"
        path.write_text(text, encoding="utf-8")
        return docs_check.check_cli_examples(
            path,
            text,
            {"serve", "query", "experiments"},
            {"tail", "overload", "all"},
        )

    def test_known_subcommand_clean(self, tmp_path):
        assert self._run(tmp_path, "python -m repro serve --port 1") == []

    def test_unknown_subcommand_reported(self, tmp_path):
        findings = self._run(tmp_path, "python -m repro zerve --port 1")
        assert len(findings) == 1
        assert "unknown subcommand" in findings[0]

    def test_experiment_target_validated(self, tmp_path):
        assert self._run(tmp_path, "python -m repro experiments tail") == []
        findings = self._run(tmp_path, "python -m repro experiments tial")
        assert len(findings) == 1
        assert "unknown experiment target" in findings[0]

    def test_module_invocation_target_validated(self, tmp_path):
        clean = self._run(
            tmp_path, "python -m repro.workloads.experiments overload"
        )
        assert clean == []
        findings = self._run(
            tmp_path, "python -m repro.workloads.experiments bogus"
        )
        assert len(findings) == 1

    def test_flags_only_invocation_ignored(self, tmp_path):
        assert self._run(tmp_path, "python -m repro.tool --help") == []

    def test_prose_outside_fences_ignored(self, tmp_path):
        path = tmp_path / "page.md"
        text = "run python -m repro zerve manually\n"
        path.write_text(text, encoding="utf-8")
        findings = docs_check.check_cli_examples(
            path, text, {"serve"}, set()
        )
        assert findings == []


class TestMain:
    def test_repo_docs_are_clean(self, capsys):
        assert docs_check.main([]) == 0
        assert "0 findings" in capsys.readouterr().err

    def test_findings_fail(self, tmp_path, capsys):
        page = tmp_path / "broken.md"
        page.write_text("[dead](nope.md)\n", encoding="utf-8")
        assert docs_check.main([str(page)]) == 1
        out = capsys.readouterr().out
        assert "dead link" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert docs_check.main([str(tmp_path / "ghost.md")]) == 1
        assert "no such file" in capsys.readouterr().out
