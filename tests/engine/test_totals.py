"""Lifetime engine accounting (``EngineTotals``) and public validation."""

import pytest

from repro.core.database import SpatialDatabase
from repro.core.exceptions import InvalidQueryAreaError
from repro.engine.batch import BatchStats, EngineTotals
from repro.geometry.polygon import Polygon
from repro.query.spec import AreaQuery, KnnQuery, UnionQuery, WindowQuery
from repro.workloads.generators import uniform_points


@pytest.fixture()
def db():
    """A fresh small database per test (totals start at zero)."""
    return SpatialDatabase.from_points(
        uniform_points(300, seed=41), backend_kind="scipy"
    ).prepare()


class TestEngineTotals:
    def test_totals_accumulate_across_batches(self, db):
        window = WindowQuery((0.2, 0.2, 0.6, 0.6))
        db.engine.run_specs([window, window, KnnQuery((0.5, 0.5), 3)])
        db.engine.run_specs([window])  # LRU cache hit now
        totals = db.engine.totals
        assert totals.batches == 2
        assert totals.total_queries == 4
        assert totals.coalesced_batches == 1
        assert totals.max_batch_size == 3
        assert totals.duplicate_hits == 1
        assert totals.cache_hits == 1
        assert totals.executed == 2
        assert totals.time_ms > 0.0

    def test_totals_track_composites(self, db):
        union = UnionQuery(
            (
                WindowQuery((0.1, 0.1, 0.3, 0.3)),
                WindowQuery((0.2, 0.2, 0.4, 0.4)),
            )
        )
        db.engine.run_specs([union])
        assert db.engine.totals.composite_queries == 1
        assert db.engine.totals.composite_leaves == 2

    def test_as_dict_is_json_ready(self, db):
        import json

        db.engine.run_specs([WindowQuery((0.1, 0.1, 0.5, 0.5))])
        payload = db.engine.totals.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["batches"] == 1

    def test_absorb_matches_batch_stats(self):
        totals = EngineTotals()
        totals.absorb(
            BatchStats(
                total_queries=5,
                cache_hits=1,
                duplicate_hits=2,
                executed=2,
                seed_walk_reuses=3,
                time_ms=1.5,
            )
        )
        totals.absorb(BatchStats(total_queries=1, executed=1, time_ms=0.5))
        assert totals.batches == 2
        assert totals.total_queries == 6
        assert totals.coalesced_batches == 1  # only the 5-spec batch
        assert totals.seed_walk_reuses == 3
        assert totals.time_ms == pytest.approx(2.0)

    def test_batch_stats_as_dict(self, db):
        batch = db.engine.run_specs([WindowQuery((0.1, 0.1, 0.2, 0.2))])
        payload = batch.stats.as_dict()
        assert payload["total_queries"] == 1
        assert "method_counts" in payload


class TestValidateSpec:
    def test_accepts_good_and_rejects_bad(self, db):
        db.engine.validate_spec(WindowQuery((0, 0, 1, 1)))
        with pytest.raises(TypeError, match="not a query spec"):
            db.engine.validate_spec("window")
        degenerate = Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)])
        with pytest.raises(InvalidQueryAreaError):
            db.engine.validate_spec(AreaQuery(degenerate))

    def test_recurses_into_composites(self, db):
        degenerate = Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)])
        bad_union = UnionQuery(
            (WindowQuery((0, 0, 1, 1)), AreaQuery(degenerate))
        )
        with pytest.raises(InvalidQueryAreaError):
            db.engine.validate_spec(bad_union)
