"""Heterogeneous spec batches: correctness, grouping, sharing, caching."""

import pytest

from repro import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    SpatialDatabase,
    WindowQuery,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.workloads.experiments import make_mixed_trace
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload


@pytest.fixture()
def db():
    return SpatialDatabase.from_points(
        uniform_points(600, seed=21)
    ).prepare()


def _mixed_specs(seed=0, distinct=12):
    return make_mixed_trace(0.03, distinct, 1, seed=seed)


def test_heterogeneous_batch_matches_single_execution(db):
    specs = _mixed_specs()
    batch = db.query_batch(specs, use_cache=False)
    assert len(batch) == len(specs)
    for spec, result in zip(specs, batch):
        assert result.spec is spec
        assert result.ids() == db.query(spec).ids(), spec.describe()


def test_results_in_submission_order(db):
    specs = list(reversed(_mixed_specs(seed=5)))
    batch = db.query_batch(specs, use_cache=False)
    assert [r.spec for r in batch] == specs


def test_kind_and_method_accounting(db):
    specs = [
        AreaQuery(QueryWorkload(query_size=0.02, seed=1).areas(1)[0]),
        WindowQuery(Rect(0.2, 0.2, 0.5, 0.5)),
        KnnQuery(Point(0.4, 0.4), 5),
        NearestQuery(Point(0.6, 0.6)),
    ]
    batch = db.query_batch(specs, use_cache=False)
    assert batch.stats.kind_counts == {
        "area": 1,
        "window": 1,
        "knn": 1,
        "nearest": 1,
    }
    assert sum(batch.stats.method_counts.values()) == 4
    assert batch.stats.executed == 4


def test_mixed_batch_dedups_repeated_specs(db):
    specs = _mixed_specs(seed=3, distinct=8)
    trace = specs * 3
    batch = db.query_batch(trace, use_cache=False)
    assert batch.stats.executed == len(specs)
    assert batch.stats.duplicate_hits == 2 * len(specs)
    for i, result in enumerate(batch):
        assert result.ids() == batch[i % len(specs)].ids()


def test_mixed_batch_cache_round_trip(db):
    specs = _mixed_specs(seed=9, distinct=8)
    first = db.query_batch(specs)
    assert first.stats.cache_hits == 0
    second = db.query_batch(specs)
    assert second.stats.cache_hits == len(specs)
    assert second.stats.executed == 0
    assert [r.ids() for r in second] == [r.ids() for r in first]


def test_insert_invalidates_all_kinds(db):
    rect = Rect(0.45, 0.45, 0.55, 0.55)
    specs = [WindowQuery(rect), KnnQuery(Point(0.5, 0.5), 3)]
    db.query_batch(specs)
    new_id = db.insert((0.5, 0.5))
    after = db.query_batch(specs)
    assert after.stats.cache_hits == 0  # version stamp invalidated
    assert new_id in after[0].ids()
    assert new_id in after[1].ids()  # the inserted point is the new 1-NN


def test_voronoi_knn_seed_walks_reused(db):
    # Force the Voronoi kNN strategy so the seed-walk chain engages.
    rng_points = [Point(0.1 + 0.08 * i, 0.5) for i in range(8)]
    specs = [KnnQuery(p, 4, method="voronoi") for p in rng_points]
    batch = db.query_batch(specs, use_cache=False)
    stats = batch.stats
    assert stats.seed_walk_reuses + stats.seed_index_lookups == len(specs)
    assert stats.seed_walk_reuses >= len(specs) - 1  # first needs the index
    for spec, result in zip(specs, batch):
        assert result.ids() == db.query(spec).ids()


def test_shared_window_frontier_spans_area_and_window_specs(db):
    rect = Rect(0.30, 0.30, 0.60, 0.60)
    area = QueryWorkload(query_size=0.08, seed=13).areas(1)[0]
    # Coincident windows/areas so grouping must engage.
    specs = []
    for _ in range(3):
        specs.append(WindowQuery(rect))
        specs.append(AreaQuery(area, method="traditional"))
    batch = db.query_batch(specs, use_cache=False)
    # duplicates collapse first; the two surviving specs may share one
    # frontier if their MBRs are close enough — just assert correctness
    # plus the accounting invariants.
    assert batch.stats.duplicate_hits == 4
    assert batch[0].ids() == db.query(WindowQuery(rect)).ids()
    assert batch[1].ids() == db.query(AreaQuery(area)).ids()


def test_window_groups_share_one_traversal(db):
    base = Rect(0.2, 0.2, 0.5, 0.5)
    nested = [
        WindowQuery(base),
        WindowQuery(Rect(0.22, 0.22, 0.5, 0.5)),
        WindowQuery(Rect(0.2, 0.2, 0.48, 0.49)),
    ]
    batch = db.query_batch(nested, use_cache=False)
    assert batch.stats.shared_window_groups == 1
    assert batch.stats.shared_window_queries == 3
    for spec, result in zip(nested, batch):
        brute = sorted(
            i
            for i, p in enumerate(db.points)
            if spec.rect.contains_point(p)
        )
        assert result.ids() == brute


def test_predicate_specs_execute_in_batches(db):
    keep = lambda p: p.x < 0.5  # noqa: E731 - test fixture
    specs = [
        KnnQuery(Point(0.5, 0.5), 5, predicate=keep),
        WindowQuery(Rect(0.1, 0.1, 0.9, 0.9), predicate=keep, limit=7),
    ]
    batch = db.query_batch(specs)
    assert batch.stats.executed == 2  # uncacheable, both ran
    assert all(p.x < 0.5 for p in batch[0].points())
    assert len(batch[1].ids()) == 7
    assert batch[0].ids() == db.query(specs[0]).ids()
    assert batch[1].ids() == db.query(specs[1]).ids()


def test_non_spec_input_rejected(db):
    with pytest.raises(TypeError):
        db.query_batch([Rect(0, 0, 1, 1)])


def test_empty_spec_list(db):
    batch = db.query_batch([])
    assert len(batch) == 0
    assert batch.stats.total_queries == 0
