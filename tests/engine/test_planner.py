"""Cost-based planner: predictions must track measured work.

The decisive property: on workloads where the *measured* counters (weighed
by the same cost model) clearly favour one method, the planner must choose
that method *before* running anything.  Scenarios mirror the paper's cost
asymmetry — dense data + irregular polygon favours the Voronoi expansion,
sparse data (NN seed + boundary shell dominate) and rectangle queries
(MBR == polygon, the traditional method's best case) favour the baseline.
"""

import pytest

from repro import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    SpatialDatabase,
    WindowQuery,
)
from repro.engine.planner import (
    PLANNABLE_METHODS,
    CostModel,
    QueryPlanner,
)
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.query.executor import execute_spec
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload


def _database(n: int) -> SpatialDatabase:
    return SpatialDatabase.from_points(
        uniform_points(n, seed=11), backend_kind="scipy"
    ).prepare()


def _measured_winner(db: SpatialDatabase, area, model: CostModel) -> str:
    traditional = execute_spec(
        db, AreaQuery(area), method="traditional"
    ).stats
    voronoi = execute_spec(db, AreaQuery(area), method="voronoi").stats
    if model.cost_of(traditional) < model.cost_of(voronoi):
        return "traditional"
    return "voronoi"


@pytest.mark.parametrize(
    "n, query_size, shape, expected",
    [
        # dense + irregular: the MBR/polygon area gap costs the baseline
        (20_000, 0.08, "irregular", "voronoi"),
        # sparse: the boundary shell dwarfs the few internal points
        (200, 0.08, "irregular", "traditional"),
        # rectangle: MBR == polygon, the baseline's zero-redundancy case
        (2_000, 0.04, "rectangle", "traditional"),
    ],
)
def test_planner_matches_measured_winner(n, query_size, shape, expected):
    db = _database(n)
    planner = db.engine.planner
    areas = QueryWorkload(
        query_size=query_size, shape=shape, seed=5
    ).areas(6)
    for area in areas:
        chosen = planner.choose(area)
        assert chosen == expected
        assert chosen == _measured_winner(db, area, planner.model)


def test_auto_method_routes_through_planner():
    db = _database(500)
    area = QueryWorkload(query_size=0.04, seed=3).areas(1)[0]
    auto = db.area_query(area, method="auto")
    assert auto.stats.method == db.engine.planner.choose(area)
    assert auto.ids == db.area_query(area, method="voronoi").ids


def test_estimates_cover_both_methods_with_positive_costs():
    db = _database(1_000)
    area = QueryWorkload(query_size=0.02, seed=9).areas(1)[0]
    estimates = db.engine.planner.estimate(area)
    assert set(estimates) == set(PLANNABLE_METHODS)
    for method, estimate in estimates.items():
        assert estimate.method == method
        assert estimate.cost > 0.0
        assert estimate.validations >= 0.0
        assert estimate.node_accesses > 0.0


def test_explain_execute_reports_measured_costs():
    db = _database(2_000)
    area = QueryWorkload(query_size=0.04, seed=1).areas(1)[0]
    explanation = db.explain(area, execute=True)
    assert explanation.chosen in PLANNABLE_METHODS
    assert set(explanation.actual_costs) == set(PLANNABLE_METHODS)
    assert explanation.predicted_cost == pytest.approx(
        explanation.estimates[explanation.chosen].cost
    )
    assert explanation.prediction_correct is not None
    rendered = explanation.render()
    assert "traditional" in rendered and "voronoi" in rendered
    assert "meas. cost" in rendered


def test_explain_without_execute_has_no_actuals():
    db = _database(300)
    area = QueryWorkload(query_size=0.04, seed=2).areas(1)[0]
    explanation = db.explain(area)
    assert explanation.actual == {}
    assert explanation.prediction_correct is None


def test_calibrate_fits_positive_millisecond_scale_weights():
    db = _database(3_000)
    probes = QueryWorkload(query_size=0.04, seed=4).areas(5)
    before = db.engine.planner.model
    model = db.engine.planner.calibrate(probes)
    assert db.engine.planner.model is model
    assert model.validation_cost > 0.0
    assert model.node_access_cost >= 0.0
    # same fixed segment/validation cost ratio as the prior model
    assert model.segment_test_cost == pytest.approx(
        model.validation_cost
        * before.segment_test_cost
        / before.validation_cost
    )
    # the calibrated unit is milliseconds: predicted cost of a measured
    # query should be the same order of magnitude as its wall time
    stats = db.area_query(probes[0], method="traditional").stats
    assert model.cost_of(stats) < max(stats.time_ms, 0.001) * 50


def test_calibrate_degenerate_probes_keep_model():
    db = _database(50)
    planner = QueryPlanner(db)
    before = planner.model
    assert planner.calibrate([]) is before


def test_planner_adapts_to_database_density():
    """The same region flips methods as the database densifies."""
    area = QueryWorkload(query_size=0.08, shape="irregular", seed=5).areas(1)[0]
    sparse_choice = _database(200).engine.planner.choose(area)
    dense_choice = _database(20_000).engine.planner.choose(area)
    assert sparse_choice == "traditional"
    assert dense_choice == "voronoi"


# -- spec-level planning (all query kinds) ------------------------------------


class TestSpecPlanning:
    def test_area_spec_estimates_match_region_estimates(self):
        db = _database(500)
        area = QueryWorkload(query_size=0.04, seed=3).areas(1)[0]
        by_spec = db.engine.planner.estimate_spec(AreaQuery(area))
        by_region = db.engine.planner.estimate(area)
        assert by_spec.keys() == by_region.keys()
        for method in by_spec:
            assert by_spec[method].cost == by_region[method].cost

    def test_window_estimates_both_strategies(self):
        db = _database(500)
        estimates = db.engine.planner.estimate_spec(
            WindowQuery(Rect(0.2, 0.2, 0.6, 0.6))
        )
        assert set(estimates) == {"index", "voronoi"}
        assert all(e.cost > 0 for e in estimates.values())

    def test_knn_estimates_scale_with_k(self):
        db = _database(2_000)
        planner = db.engine.planner
        small = planner.estimate_spec(KnnQuery(Point(0.5, 0.5), 2))
        large = planner.estimate_spec(KnnQuery(Point(0.5, 0.5), 500))
        assert set(small) == {"index", "voronoi"}
        assert large["voronoi"].cost > small["voronoi"].cost
        # the Voronoi expansion's edge erodes as k grows
        ratio_small = small["voronoi"].cost / small["index"].cost
        ratio_large = large["voronoi"].cost / large["index"].cost
        assert ratio_large > ratio_small

    def test_nearest_always_plans_index(self):
        db = _database(500)
        planner = db.engine.planner
        spec = NearestQuery(Point(0.4, 0.2))
        assert planner.plan(spec) == "index"
        assert set(planner.estimate_spec(spec)) == {"index"}

    def test_plan_honours_explicit_methods(self):
        db = _database(500)
        planner = db.engine.planner
        area = QueryWorkload(query_size=0.04, seed=3).areas(1)[0]
        assert planner.plan(AreaQuery(area, method="voronoi")) == "voronoi"
        assert (
            planner.plan(WindowQuery(Rect(0, 0, 1, 1), method="index"))
            == "index"
        )

    def test_plan_on_empty_database_routes_to_index(self):
        empty = SpatialDatabase()
        planner = empty.engine.planner
        assert planner.plan(WindowQuery(Rect(0, 0, 1, 1))) == "index"
        assert planner.plan(KnnQuery(Point(0.5, 0.5), 3)) == "index"

    def test_explain_spec_execute_measures_every_method(self):
        db = _database(500)
        explanation = db.engine.planner.explain_spec(
            KnnQuery(Point(0.5, 0.5), 6), execute=True
        )
        assert set(explanation.actual_costs) == {"index", "voronoi"}
        assert explanation.prediction_correct in (True, False)
        rendered = explanation.render()
        assert "meas. cost" in rendered
        assert rendered.count("\n") == 2  # header + one row per method

    def test_planner_auto_choice_is_measured_sensible_for_knn(self):
        """For small k on a deep index the Voronoi expansion (seed descent
        + ~6k neighbour distances) must at least be *considered* cheaper
        than a full best-first descent on large databases."""
        db = _database(20_000)
        planner = db.engine.planner
        estimates = planner.estimate_spec(KnnQuery(Point(0.5, 0.5), 2))
        assert estimates["voronoi"].cost < estimates["index"].cost
