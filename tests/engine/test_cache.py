"""Result cache: spec keys, hit/miss accounting, eviction, invalidation."""

import pytest

from repro import AreaQuery, KnnQuery, SpatialDatabase
from repro.core.stats import QueryResult, QueryStats
from repro.engine.cache import ResultCache
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload


def _result(ids):
    return QueryResult(ids=list(ids), stats=QueryStats(method="voronoi"))


# -- spec cache keys ----------------------------------------------------------


def test_spec_keys_equal_for_equal_polygons():
    a = AreaQuery(Polygon.from_rect(Rect(0.1, 0.1, 0.3, 0.4)))
    b = AreaQuery(Polygon.from_rect(Rect(0.1, 0.1, 0.3, 0.4)))
    assert a.cache_key() == b.cache_key()
    assert hash(a.cache_key()) == hash(b.cache_key())


def test_spec_keys_distinguish_geometry():
    base = Polygon.from_rect(Rect(0.1, 0.1, 0.3, 0.4))
    shifted = base.translated(1e-9, 0.0)
    assert AreaQuery(base).cache_key() != AreaQuery(shifted).cache_key()


def test_spec_keys_distinguish_shapes():
    circle = Circle(Point(0.5, 0.5), 0.1)
    square = Polygon.from_rect(circle.mbr)
    assert AreaQuery(circle).cache_key() != AreaQuery(square).cache_key()
    assert (
        AreaQuery(circle).cache_key()
        == AreaQuery(Circle(Point(0.5, 0.5), 0.1)).cache_key()
    )


def test_spec_keys_normalise_method_and_projection():
    """Method and projection never change the result rows, so the key
    strips them — a voronoi-cached entry serves a traditional request."""
    region = Polygon.from_rect(Rect(0.1, 0.1, 0.3, 0.4))
    assert (
        AreaQuery(region, method="voronoi").cache_key()
        == AreaQuery(region, method="traditional").cache_key()
    )
    knn = KnnQuery((0.5, 0.5), 4)
    assert knn.cache_key() == knn.returning("points").cache_key()
    # limit changes the rows, so it stays in the key
    assert AreaQuery(region).cache_key() != (
        AreaQuery(region, limit=2).cache_key()
    )


def test_predicate_specs_are_uncacheable_and_always_execute():
    db = SpatialDatabase.from_points(uniform_points(300, seed=13)).prepare()
    spec = AreaQuery(
        Polygon.from_rect(Rect(0.2, 0.2, 0.6, 0.6)),
        predicate=lambda p: p.x < 0.5,
    )
    assert spec.cache_key() is None
    first = db.query_batch([spec, spec])
    # no dedup, no cache fill: both occurrences executed
    assert first.stats.executed == 2
    assert first.stats.cache_hits == 0 and first.stats.duplicate_hits == 0
    second = db.query_batch([spec])
    assert second.stats.cache_hits == 0 and second.stats.executed == 1
    assert first[0].ids() == first[1].ids() == second[0].ids()


class _OpaqueRegion:
    """A conforming QueryRegion with identity (not value) hashing."""

    def __init__(self, polygon):
        self._polygon = polygon

    def __getattr__(self, name):
        if name in ("vertices", "center", "radius"):
            raise AttributeError(name)
        return getattr(self._polygon, name)


def test_opaque_regions_cache_by_identity_only():
    """A custom region without value hashing gets identity-scoped cache
    entries: only the very same object can hit them, so two equal-geometry
    instances never serve each other's results."""
    db = SpatialDatabase.from_points(uniform_points(300, seed=13)).prepare()
    polygon = Polygon.from_rect(Rect(0.2, 0.2, 0.6, 0.6))
    first_obj = _OpaqueRegion(polygon)
    second_obj = _OpaqueRegion(polygon)
    first = db.query_batch([AreaQuery(first_obj), AreaQuery(second_obj)])
    assert first.stats.executed == 2  # distinct identities: no sharing
    again = db.query_batch([AreaQuery(first_obj)])
    assert again.stats.cache_hits == 1  # same object: served from cache
    expected = db.query(AreaQuery(polygon, method="traditional")).ids()
    assert first[0].ids() == first[1].ids() == again[0].ids() == expected


# -- cache mechanics ---------------------------------------------------------


def test_hit_and_miss_accounting():
    cache = ResultCache(capacity=4)
    assert cache.get("k", version=1) is None
    cache.put("k", 1, _result([1, 2]))
    hit = cache.get("k", version=1)
    assert hit is not None and hit.ids == [1, 2]
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_hits_return_independent_copies():
    cache = ResultCache(capacity=4)
    cache.put("k", 1, _result([1, 2]))
    first = cache.get("k", version=1)
    first.ids.append(99)
    second = cache.get("k", version=1)
    assert second.ids == [1, 2]


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", 1, _result([1]))
    cache.put("b", 1, _result([2]))
    assert cache.get("a", version=1) is not None  # refresh "a"
    cache.put("c", 1, _result([3]))  # evicts "b", the LRU entry
    assert cache.stats.evictions == 1
    assert cache.get("b", version=1) is None
    assert cache.get("a", version=1) is not None
    assert cache.get("c", version=1) is not None


def test_version_mismatch_counts_invalidation_and_drops_entry():
    cache = ResultCache(capacity=4)
    cache.put("k", 1, _result([1]))
    assert cache.get("k", version=2) is None
    assert cache.stats.invalidations == 1
    assert len(cache) == 0


def test_zero_capacity_disables_storage():
    cache = ResultCache(capacity=0)
    cache.put("k", 1, _result([1]))
    assert len(cache) == 0
    assert cache.get("k", version=1) is None


def test_clear_preserves_stats():
    cache = ResultCache(capacity=4)
    cache.put("k", 1, _result([1]))
    cache.get("k", version=1)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


# -- database integration ----------------------------------------------------


@pytest.fixture()
def db():
    return SpatialDatabase.from_points(
        uniform_points(400, seed=9)
    ).prepare()


def test_repeated_batch_is_served_from_cache(db):
    regions = QueryWorkload(query_size=0.04, seed=31).areas(8)
    first = db.batch_area_query(regions, method="auto")
    assert first.stats.cache_hits == 0
    second = db.batch_area_query(regions, method="auto")
    assert second.stats.cache_hits == len(regions)
    assert second.stats.executed == 0
    assert [r.ids for r in second] == [r.ids for r in first]


def test_insert_invalidates_cached_results(db):
    region = Polygon.from_rect(Rect(0.4, 0.4, 0.6, 0.6))
    before = db.batch_area_query([region])[0]
    new_id = db.insert((0.5, 0.5))
    after_batch = db.batch_area_query([region])
    after = after_batch[0]
    assert after_batch.stats.cache_hits == 0
    assert new_id in after.ids
    assert set(after.ids) == set(before.ids) | {new_id}
    assert after.ids == db.area_query(region, method="traditional").ids


def test_cache_hits_are_method_independent(db):
    """Both methods return identical ids (the paper's theorem), so a
    cached result may serve either method's request."""
    regions = QueryWorkload(query_size=0.04, seed=33).areas(4)
    db.batch_area_query(regions, method="traditional")
    batch = db.batch_area_query(regions, method="voronoi")
    assert batch.stats.cache_hits == len(regions)
    assert [r.ids for r in batch] == [
        db.area_query(region, method="voronoi").ids for region in regions
    ]


def test_use_cache_false_bypasses_cache(db):
    regions = QueryWorkload(query_size=0.04, seed=35).areas(3)
    db.batch_area_query(regions)
    bypass = db.batch_area_query(regions, use_cache=False)
    assert bypass.stats.cache_hits == 0
    assert bypass.stats.executed == len(regions)


def test_region_fingerprint_shim_warns_and_matches_legacy():
    """The 1.0 helper survives one release as a deprecation shim."""
    from repro.engine import region_fingerprint

    polygon = Polygon.from_rect(Rect(0.1, 0.1, 0.3, 0.4))
    with pytest.warns(DeprecationWarning, match="cache_key"):
        key = region_fingerprint(polygon)
    assert key == ("polygon", tuple((p.x, p.y) for p in polygon.vertices))
    with pytest.warns(DeprecationWarning):
        assert region_fingerprint(Circle(Point(0.5, 0.5), 0.1)) == (
            "circle",
            0.5,
            0.5,
            0.1,
        )
    with pytest.warns(DeprecationWarning):
        assert region_fingerprint(object()) is None
