"""Planner recursion over composites, kNN k=None costing, calibration."""

import pytest

from repro.core.database import SpatialDatabase
from repro.engine.planner import CostModel, QueryPlanner
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    DifferenceQuery,
    KnnQuery,
    UnionQuery,
    WindowQuery,
)
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload

W1 = WindowQuery(Rect(0.1, 0.1, 0.4, 0.4))
W2 = WindowQuery(Rect(0.5, 0.5, 0.8, 0.8))


@pytest.fixture(scope="module")
def db():
    """A 2000-point database shared by the planner tests."""
    return SpatialDatabase.from_points(
        uniform_points(2000, seed=11), backend_kind="scipy"
    ).prepare()


class TestCompositePlanning:
    def test_plan_returns_composite(self, db):
        assert db.engine.planner.plan(UnionQuery((W1, W2))) == "composite"

    def test_estimate_sums_planned_parts(self, db):
        planner = db.engine.planner
        union = UnionQuery((W1, W2))
        total = planner.estimate_spec(union)["composite"]
        parts_cost = sum(
            planner.estimate_spec(part)[planner.plan(part)].cost
            for part in union.parts
        )
        assert total.cost == pytest.approx(parts_cost)
        assert total.method == "composite"

    def test_estimate_honours_explicit_part_methods(self, db):
        planner = db.engine.planner
        free = planner.estimate_spec(UnionQuery((W1, W2)))["composite"]
        forced = planner.estimate_spec(
            UnionQuery(
                (
                    WindowQuery(W1.rect, method="voronoi"),
                    WindowQuery(W2.rect, method="voronoi"),
                )
            )
        )["composite"]
        # the planner prefers the index for these windows, so forcing
        # voronoi parts must cost at least as much
        assert forced.cost >= free.cost

    def test_estimate_recurses_into_nested_composites(self, db):
        planner = db.engine.planner
        nested = DifferenceQuery((UnionQuery((W1, W2)), W1))
        inner = planner.estimate_spec(UnionQuery((W1, W2)))["composite"]
        leaf = planner.estimate_spec(W1)[planner.plan(W1)]
        total = planner.estimate_spec(nested)["composite"]
        assert total.cost == pytest.approx(inner.cost + leaf.cost)

    def test_explain_nests_part_explanations(self, db):
        explanation = db.explain(DifferenceQuery((UnionQuery((W1, W2)), W1)))
        assert explanation.chosen == "composite"
        assert len(explanation.parts) == 2
        assert explanation.parts[0].chosen == "composite"
        assert len(explanation.parts[0].parts) == 2
        rendered = explanation.render()
        assert "part 0" in rendered and "part 1" in rendered

    def test_explain_execute_measures_composite(self, db):
        explanation = db.explain(UnionQuery((W1, W2)), execute=True)
        assert "composite" in explanation.actual_costs
        assert explanation.prediction_correct is True
        # parts were measured too
        assert all(part.actual for part in explanation.parts)


class TestUnboundedKnnPlanning:
    def test_unbounded_knn_costed_at_database_size(self, db):
        planner = db.engine.planner
        unbounded = planner.estimate_spec(KnnQuery((0.5, 0.5), None))
        full = planner.estimate_spec(KnnQuery((0.5, 0.5), len(db)))
        assert unbounded["index"].cost == pytest.approx(full["index"].cost)

    def test_limit_caps_the_unbounded_estimate(self, db):
        planner = db.engine.planner
        capped = planner.estimate_spec(KnnQuery((0.5, 0.5), None, limit=8))
        bounded = planner.estimate_spec(KnnQuery((0.5, 0.5), 8))
        assert capped["voronoi"].cost == pytest.approx(
            bounded["voronoi"].cost
        )

    def test_plan_routes_unbounded_knn(self, db):
        assert db.engine.planner.plan(KnnQuery((0.5, 0.5), None)) in (
            "index",
            "voronoi",
        )


class TestCalibrationCoverage:
    def test_calibrate_fits_knn_expansion_factor(self, db):
        planner = QueryPlanner(db)
        default_factor = CostModel().knn_expansion_factor
        probes = QueryWorkload(query_size=0.03, seed=9).areas(4)
        model = planner.calibrate(probes)
        assert model.validation_cost > 0.0
        # fitted from measured voronoi-kNN expansions, not the default
        assert model.knn_expansion_factor > 0.0
        assert model.knn_expansion_factor != default_factor
        assert planner.model is model

    def test_estimates_use_the_fitted_factor(self, db):
        planner = QueryPlanner(db)
        spec = KnnQuery((0.5, 0.5), 10)
        before = planner.estimate_spec(spec)["voronoi"]
        planner.model = CostModel(knn_expansion_factor=12.0)
        after = planner.estimate_spec(spec)["voronoi"]
        assert after.validations == pytest.approx(1.0 + 12.0 * 10)
        assert after.validations > before.validations

    def test_explicit_probe_sequences(self, db):
        planner = QueryPlanner(db)
        probes = QueryWorkload(query_size=0.03, seed=9).areas(3)
        windows = [Rect(0.2, 0.2, 0.45, 0.45)]
        points = [(Point(0.5, 0.5), 6)]
        model = planner.calibrate(
            probes, probe_windows=windows, probe_points=points
        )
        assert model.validation_cost > 0.0

    def test_empty_probe_kinds_fall_back_to_area_fit(self, db):
        planner = QueryPlanner(db)
        probes = QueryWorkload(query_size=0.03, seed=9).areas(3)
        model = planner.calibrate(
            probes, probe_windows=(), probe_points=()
        )
        assert model.validation_cost > 0.0
        # no kNN probes ran: the expansion factor keeps its prior value
        assert model.knn_expansion_factor == CostModel().knn_expansion_factor

    def test_degenerate_probes_keep_model_object(self, db):
        planner = QueryPlanner(db)
        before = planner.model
        assert planner.calibrate([]) is before
