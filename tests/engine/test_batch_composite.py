"""Batch decomposition of composite specs: sharing, dedup, caching."""

import pytest

from repro.core.database import SpatialDatabase
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)
from repro.workloads.experiments import (
    composite_reference_ids,
    make_composite_trace,
)

W1 = WindowQuery(Rect(0.1, 0.1, 0.5, 0.5))
W2 = WindowQuery(Rect(0.4, 0.4, 0.8, 0.8))
W3 = WindowQuery(Rect(0.2, 0.3, 0.6, 0.7))
POLY = Polygon([(0.15, 0.15), (0.7, 0.2), (0.6, 0.65), (0.2, 0.55)])


@pytest.fixture
def db(uniform_1000):
    """A fresh 1000-point database per test (cache state matters here)."""
    return SpatialDatabase.from_points(uniform_1000).prepare()


def test_batch_matches_single_execution_and_reference(db):
    specs = [
        UnionQuery((W1, W2, W3)),
        W1,
        IntersectionQuery((W1, AreaQuery(POLY))),
        DifferenceQuery((AreaQuery(POLY), W2)),
        KnnQuery((0.5, 0.5), 4),
        NearestQuery((0.9, 0.1)),
    ]
    batch = db.query_batch(specs, use_cache=False)
    for spec, handle in zip(specs, batch):
        assert handle.ids() == db.query(spec).ids()
        assert handle.ids() == composite_reference_ids(db, spec)


def test_mixed_composite_trace_matches_loop(db):
    trace = make_composite_trace(0.002, 9, seed=5, parts=4)
    batch = db.query_batch(trace, use_cache=False)
    assert [h.ids() for h in batch] == [
        composite_reference_ids(db, spec) for spec in trace
    ]


def test_decomposition_stats(db):
    specs = [
        UnionQuery((W1, W2, W3)),
        IntersectionQuery((W1, W2)),
        W1,
    ]
    stats = db.query_batch(specs, use_cache=False).stats
    assert stats.composite_queries == 2
    assert stats.composite_leaves == 5
    # W1 and W2 each execute once even though three specs mention them:
    # 5 composite leaves + 1 plain spec collapse onto 3 unique jobs
    assert stats.leaf_duplicate_hits == 3
    assert stats.kind_counts == {"union": 1, "intersection": 1, "window": 1}
    assert sum(stats.method_counts.values()) == 3


def test_identical_composites_dedup_at_spec_level(db):
    union = UnionQuery((W1, W2))
    stats = db.query_batch([union, UnionQuery((W1, W2))]).stats
    assert stats.duplicate_hits == 1
    assert stats.composite_queries == 1


def test_composite_served_from_cache_on_second_batch(db):
    union = UnionQuery((W1, W2))
    first = db.query_batch([union])
    assert first.stats.cache_hits == 0
    second = db.query_batch([union])
    assert second.stats.cache_hits == 1
    assert second[0].ids() == first[0].ids()


def test_leaves_cached_for_later_batches(db):
    # executing a composite caches its leaves ...
    db.query_batch([UnionQuery((W1, W2))])
    # ... so a later batch asking for a leaf directly hits the cache
    stats = db.query_batch([W1]).stats
    assert stats.cache_hits == 1


def test_composite_leaf_reuses_cached_plain_result(db):
    db.query_batch([W1, W2])
    stats = db.query_batch([UnionQuery((W1, W2))]).stats
    assert stats.leaf_cache_hits == 2
    assert stats.executed == 1
    assert sum(stats.method_counts.values()) == 0  # nothing hit the index


def test_insert_invalidates_composite_cache(db):
    union = UnionQuery((W1, W2))
    before = db.query_batch([union])[0].ids()
    db.insert((0.45, 0.45))  # inside both windows
    after = db.query_batch([union])
    assert after.stats.cache_hits == 0
    assert len(after[0].ids()) == len(before) + 1


def test_validation_recurses_into_composites(db):
    degenerate = Polygon([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)])
    with pytest.raises(InvalidQueryAreaError):
        db.query_batch([UnionQuery((W1, AreaQuery(degenerate)))])
    empty = SpatialDatabase()
    with pytest.raises(EmptyDatabaseError):
        empty.query_batch([UnionQuery((W1, AreaQuery(POLY)))])


def test_composite_stats_aggregate_leaf_work(db):
    record = db.query_batch([UnionQuery((AreaQuery(POLY), W1))], use_cache=False)[0]
    stats = record.stats
    assert stats.method == "composite"
    assert stats.result_size == len(record.ids())
    # leaf counters surface on the composite (candidates from both leaves)
    assert stats.candidates > 0
