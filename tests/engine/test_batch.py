"""Batch engine correctness: batching must never change any answer.

The anchor property is id-identity: for every region mix, every method
(fixed or planned), and every sharing path (shared window frontier, seed
walk, intra-batch dedup), ``batch_area_query`` returns exactly the ids the
one-query-at-a-time loop returns, in submission order.
"""

import pytest

from repro import SpatialDatabase
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.engine.batch import BATCH_METHODS, BatchQueryEngine, greedy_seed_walk
from repro.engine.order import hilbert_index, locality_order
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload


@pytest.fixture(scope="module")
def db():
    """1k uniform points, prepared, shared by the whole module."""
    return SpatialDatabase.from_points(
        uniform_points(1_000, seed=3)
    ).prepare()


@pytest.fixture(scope="module")
def mixed_regions():
    """Stars, rectangles, and a circle — every QueryRegion flavour."""
    regions = QueryWorkload(query_size=0.03, seed=21).areas(12)
    regions += QueryWorkload(
        query_size=0.05, shape="rectangle", seed=22
    ).areas(4)
    regions.append(Circle(Point(0.4, 0.6), 0.1))
    return regions


@pytest.mark.parametrize("method", BATCH_METHODS)
def test_batch_ids_identical_to_loop(db, mixed_regions, method):
    loop = [
        db.area_query(region, method="voronoi").ids
        for region in mixed_regions
    ]
    batch = db.batch_area_query(
        mixed_regions, method=method, use_cache=False
    )
    assert len(batch) == len(mixed_regions)
    assert [result.ids for result in batch] == loop


def test_batch_handles_duplicates_once(db, mixed_regions):
    trace = mixed_regions + mixed_regions + mixed_regions[:3]
    batch = db.batch_area_query(trace, method="voronoi", use_cache=False)
    assert [r.ids for r in batch] == [
        db.area_query(region, method="voronoi").ids for region in trace
    ]
    assert batch.stats.duplicate_hits == len(mixed_regions) + 3
    assert batch.stats.executed == len(mixed_regions)


def test_batch_stats_record_sharing(db):
    # Overlapping rectangle windows at one hotspot: must form shared groups.
    overlapping = [
        Polygon.from_rect(
            Rect(0.3 + 0.01 * i, 0.3, 0.5 + 0.01 * i, 0.5)
        )
        for i in range(5)
    ]
    batch = db.batch_area_query(
        overlapping, method="traditional", use_cache=False
    )
    assert batch.stats.shared_window_groups >= 1
    assert batch.stats.shared_window_queries >= 2
    assert [r.ids for r in batch] == [
        db.area_query(region, method="traditional").ids
        for region in overlapping
    ]


def test_batch_voronoi_reuses_seeds(db, mixed_regions):
    batch = db.batch_area_query(
        mixed_regions, method="voronoi", use_cache=False
    )
    # first seed needs the index; later ones should mostly walk
    assert batch.stats.seed_index_lookups >= 1
    assert batch.stats.seed_walk_reuses >= len(mixed_regions) // 2
    assert (
        batch.stats.seed_walk_reuses + batch.stats.seed_index_lookups
        == batch.stats.executed
    )


def test_batch_result_is_a_sequence(db, mixed_regions):
    batch = db.batch_area_query(mixed_regions[:4], method="voronoi")
    assert len(batch) == 4
    assert batch[0].ids == list(batch)[0].ids
    assert [r.ids for r in batch[:2]] == [r.ids for r in batch.results[:2]]


def test_batch_rejects_unknown_method(db, mixed_regions):
    with pytest.raises(ValueError, match="unknown method"):
        db.batch_area_query(mixed_regions[:1], method="fastest")


def test_batch_rejects_zero_area_region(db):
    degenerate = Circle(Point(0.5, 0.5), 1e-12)
    object.__setattr__(degenerate, "radius", 0.0)  # bypass ctor guard
    with pytest.raises(InvalidQueryAreaError):
        db.batch_area_query([degenerate])


def test_batch_on_empty_database_raises():
    empty = SpatialDatabase()
    with pytest.raises(EmptyDatabaseError):
        empty.batch_area_query(
            [Polygon.from_rect(Rect(0.1, 0.1, 0.2, 0.2))]
        )


def test_empty_batch_returns_empty_result(db):
    batch = db.batch_area_query([])
    assert len(batch) == 0
    assert batch.stats.total_queries == 0


def test_greedy_seed_walk_finds_true_nearest_neighbor(db):
    """The walk must land exactly where the index NN search would."""
    points = db.points
    table = db.backend.neighbor_table()
    rng_targets = [
        (0.05 + 0.9 * ((i * 37) % 97) / 97.0, 0.05 + 0.9 * ((i * 61) % 89) / 89.0)
        for i in range(40)
    ]
    start = 0
    for tx, ty in rng_targets:
        walked = greedy_seed_walk(table, points, start, tx, ty, 4_000)
        entry = db.index.nearest_neighbor(Point(tx, ty))
        assert walked is not None
        assert points[walked].squared_distance_to(
            Point(tx, ty)
        ) == pytest.approx(
            entry[0].squared_distance_to(Point(tx, ty))
        )
        start = walked


def test_greedy_seed_walk_hop_budget_exhaustion_returns_none(db):
    table = db.backend.neighbor_table()
    assert (
        greedy_seed_walk(table, db.points, 0, 0.99, 0.99, max_hops=0)
        in (None, 0)
    )


def test_hilbert_index_is_locality_preserving():
    # Adjacent cells along the curve differ by exactly one grid step.
    side = 1 << 4
    positions = {}
    for xi in range(side):
        for yi in range(side):
            key = hilbert_index(
                (xi + 0.5) / side, (yi + 0.5) / side, order=4
            )
            positions[key] = (xi, yi)
    assert len(positions) == side * side
    for distance in range(side * side - 1):
        x1, y1 = positions[distance]
        x2, y2 = positions[distance + 1]
        assert abs(x1 - x2) + abs(y1 - y2) == 1


def test_locality_order_is_a_stable_permutation(db, mixed_regions):
    order = locality_order(mixed_regions)
    assert sorted(order) == list(range(len(mixed_regions)))
    # identical regions keep submission order (stable sort)
    duplicated = [mixed_regions[0]] * 3
    assert locality_order(duplicated) == [0, 1, 2]


def test_sliding_tile_chains_do_not_snowball_into_one_group(db):
    """Pairwise-overlapping tiles must not merge transitively: the union
    is bounded by the largest member window, so a sliding chain (each
    tile overlapping the next by half) stays ungrouped and no member
    ever scans the whole strip's frontier."""
    chain = [
        Polygon.from_rect(Rect(0.05 + 0.1 * i, 0.4, 0.25 + 0.1 * i, 0.6))
        for i in range(7)  # each overlaps the next by half its width
    ]
    batch = db.batch_area_query(chain, method="traditional", use_cache=False)
    assert batch.stats.shared_window_groups == 0
    assert [r.ids for r in batch] == [
        db.area_query(region, method="traditional").ids for region in chain
    ]


def test_window_slack_zero_disables_grouping(db, mixed_regions):
    engine = BatchQueryEngine(db, window_slack=0.0, cache_capacity=0)
    batch = engine.batch_area_query(mixed_regions, method="traditional")
    assert batch.stats.shared_window_groups == 0
    assert [r.ids for r in batch] == [
        db.area_query(region, method="traditional").ids
        for region in mixed_regions
    ]
