"""Failure injection and degenerate-input behaviour of the core queries."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.core.database import SpatialDatabase
from repro.core.exceptions import (
    EmptyDatabaseError,
    InvalidQueryAreaError,
    ReproError,
)
from repro.core.voronoi_query import interior_position, voronoi_area_query
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        assert issubclass(EmptyDatabaseError, ReproError)
        assert issubclass(InvalidQueryAreaError, ReproError)

    def test_catchable_as_base(self, concave_polygon):
        with pytest.raises(ReproError):
            SpatialDatabase().area_query(concave_polygon)


class TestDegenerateAreas:
    def test_sliver_polygon(self):
        db = SpatialDatabase.from_points(uniform_points(200, seed=131)).prepare()
        sliver = Polygon([(0.0, 0.5), (1.0, 0.500001), (1.0, 0.5)])
        voronoi = db.area_query(sliver, method="voronoi")
        traditional = db.area_query(sliver, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_polygon_with_collinear_run(self):
        # Redundant collinear vertices on an edge must not break anything.
        db = SpatialDatabase.from_points(uniform_points(200, seed=133)).prepare()
        area = Polygon(
            [
                (0.2, 0.2),
                (0.5, 0.2),  # collinear with previous and next
                (0.8, 0.2),
                (0.8, 0.8),
                (0.2, 0.8),
            ]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_query_vertex_coincides_with_data_point(self):
        points = uniform_points(100, seed=135)
        db = SpatialDatabase.from_points(points).prepare()
        anchor = points[0]
        area = Polygon(
            [
                anchor,  # polygon vertex exactly on a data point
                Point(anchor.x + 0.2, anchor.y),
                Point(anchor.x + 0.2, anchor.y + 0.2),
                Point(anchor.x, anchor.y + 0.2),
            ]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids
        assert 0 in voronoi.ids  # boundary-inclusive semantics

    def test_data_point_on_query_edge(self):
        db = SpatialDatabase()
        db.extend([(0.5, 0.5), (0.25, 0.5), (0.9, 0.9)])
        db.prepare()
        area = Polygon([(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)])
        # (0.25, 0.5) lies exactly on the left edge; closed semantics
        # include it.
        result = db.area_query(area, method="voronoi")
        assert result.ids == [0, 1]
        assert db.area_query(area, method="traditional").ids == [0, 1]


class TestRefinementFaults:
    def test_always_false_contains(self):
        """If refinement rejects everything, the Voronoi expansion must
        still terminate (expansion only proceeds over crossing links)."""
        points = uniform_points(150, seed=137)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.1, rng=random.Random(139))
        result = voronoi_area_query(
            db.index,
            db.backend,
            db.points,
            area,
            contains=lambda polygon, p: False,
        )
        assert result.ids == []
        # It still validated the shell it could reach.
        assert result.stats.validations >= 1

    def test_always_true_contains(self):
        """If refinement accepts everything, the expansion floods the whole
        connected graph and returns every row — bounded, terminating."""
        points = uniform_points(150, seed=141)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.1, rng=random.Random(143))
        result = voronoi_area_query(
            db.index,
            db.backend,
            db.points,
            area,
            contains=lambda polygon, p: True,
        )
        assert result.ids == list(range(150))

    def test_counting_hook_sees_every_candidate(self):
        points = uniform_points(200, seed=145)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.05, rng=random.Random(147))
        seen = []

        def counting(polygon, p):
            seen.append(p)
            return polygon.contains_point(p)

        result = voronoi_area_query(
            db.index, db.backend, db.points, area, contains=counting
        )
        assert len(seen) == result.stats.validations


class TestInteriorPositionFailure:
    def test_interior_position_raises_on_zero_area(self):
        degenerate = Polygon([(0, 0), (1, 0), (0.5, 0), (0.25, 0)])
        with pytest.raises((InvalidQueryAreaError, ValueError)):
            interior_position(degenerate)


class TestExtremeScales:
    def test_very_small_coordinates(self):
        rng = random.Random(149)
        points = [
            Point(rng.random() * 1e-9, rng.random() * 1e-9) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(0.0, 0.0), (5e-10, 0.0), (5e-10, 5e-10), (0.0, 5e-10)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_very_large_coordinates(self):
        rng = random.Random(151)
        points = [
            Point(rng.random() * 1e9, rng.random() * 1e9) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(0.0, 0.0), (5e8, 0.0), (5e8, 5e8), (0.0, 5e8)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_negative_coordinate_space(self):
        rng = random.Random(153)
        points = [
            Point(rng.random() - 5.0, rng.random() - 5.0) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(-4.8, -4.8), (-4.2, -4.8), (-4.2, -4.2), (-4.8, -4.2)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids
