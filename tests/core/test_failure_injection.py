"""Failure injection and degenerate-input behaviour of the core queries."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.core.database import SpatialDatabase
from repro.core.exceptions import (
    EmptyDatabaseError,
    InvalidQueryAreaError,
    ReproError,
)
from repro.core.voronoi_query import interior_position, voronoi_area_query
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        assert issubclass(EmptyDatabaseError, ReproError)
        assert issubclass(InvalidQueryAreaError, ReproError)

    def test_catchable_as_base(self, concave_polygon):
        with pytest.raises(ReproError):
            SpatialDatabase().area_query(concave_polygon)


class TestDegenerateAreas:
    def test_sliver_polygon(self):
        db = SpatialDatabase.from_points(uniform_points(200, seed=131)).prepare()
        sliver = Polygon([(0.0, 0.5), (1.0, 0.500001), (1.0, 0.5)])
        voronoi = db.area_query(sliver, method="voronoi")
        traditional = db.area_query(sliver, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_polygon_with_collinear_run(self):
        # Redundant collinear vertices on an edge must not break anything.
        db = SpatialDatabase.from_points(uniform_points(200, seed=133)).prepare()
        area = Polygon(
            [
                (0.2, 0.2),
                (0.5, 0.2),  # collinear with previous and next
                (0.8, 0.2),
                (0.8, 0.8),
                (0.2, 0.8),
            ]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_query_vertex_coincides_with_data_point(self):
        points = uniform_points(100, seed=135)
        db = SpatialDatabase.from_points(points).prepare()
        anchor = points[0]
        area = Polygon(
            [
                anchor,  # polygon vertex exactly on a data point
                Point(anchor.x + 0.2, anchor.y),
                Point(anchor.x + 0.2, anchor.y + 0.2),
                Point(anchor.x, anchor.y + 0.2),
            ]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids
        assert 0 in voronoi.ids  # boundary-inclusive semantics

    def test_data_point_on_query_edge(self):
        db = SpatialDatabase()
        db.extend([(0.5, 0.5), (0.25, 0.5), (0.9, 0.9)])
        db.prepare()
        area = Polygon([(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)])
        # (0.25, 0.5) lies exactly on the left edge; closed semantics
        # include it.
        result = db.area_query(area, method="voronoi")
        assert result.ids == [0, 1]
        assert db.area_query(area, method="traditional").ids == [0, 1]


class TestRefinementFaults:
    def test_always_false_contains(self):
        """If refinement rejects everything, the Voronoi expansion must
        still terminate (expansion only proceeds over crossing links)."""
        points = uniform_points(150, seed=137)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.1, rng=random.Random(139))
        result = voronoi_area_query(
            db.index,
            db.backend,
            db.points,
            area,
            contains=lambda polygon, p: False,
        )
        assert result.ids == []
        # It still validated the shell it could reach.
        assert result.stats.validations >= 1

    def test_always_true_contains(self):
        """If refinement accepts everything, the expansion floods the whole
        connected graph and returns every row — bounded, terminating."""
        points = uniform_points(150, seed=141)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.1, rng=random.Random(143))
        result = voronoi_area_query(
            db.index,
            db.backend,
            db.points,
            area,
            contains=lambda polygon, p: True,
        )
        assert result.ids == list(range(150))

    def test_counting_hook_sees_every_candidate(self):
        points = uniform_points(200, seed=145)
        db = SpatialDatabase.from_points(points).prepare()
        area = random_query_polygon(0.05, rng=random.Random(147))
        seen = []

        def counting(polygon, p):
            seen.append(p)
            return polygon.contains_point(p)

        result = voronoi_area_query(
            db.index, db.backend, db.points, area, contains=counting
        )
        assert len(seen) == result.stats.validations


class TestInteriorPositionFailure:
    def test_interior_position_raises_on_zero_area(self):
        degenerate = Polygon([(0, 0), (1, 0), (0.5, 0), (0.25, 0)])
        with pytest.raises((InvalidQueryAreaError, ValueError)):
            interior_position(degenerate)


class TestExtremeScales:
    def test_very_small_coordinates(self):
        rng = random.Random(149)
        points = [
            Point(rng.random() * 1e-9, rng.random() * 1e-9) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(0.0, 0.0), (5e-10, 0.0), (5e-10, 5e-10), (0.0, 5e-10)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_very_large_coordinates(self):
        rng = random.Random(151)
        points = [
            Point(rng.random() * 1e9, rng.random() * 1e9) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(0.0, 0.0), (5e8, 0.0), (5e8, 5e8), (0.0, 5e8)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_negative_coordinate_space(self):
        rng = random.Random(153)
        points = [
            Point(rng.random() - 5.0, rng.random() - 5.0) for _ in range(80)
        ]
        db = SpatialDatabase.from_points(points).prepare()
        area = Polygon(
            [(-4.8, -4.8), (-4.2, -4.8), (-4.2, -4.2), (-4.8, -4.2)]
        )
        voronoi = db.area_query(area, method="voronoi")
        traditional = db.area_query(area, method="traditional")
        assert voronoi.ids == traditional.ids


class TestWritePathFaults:
    """Rejected mutations must leave the store and index bit-identical."""

    def _snapshot_state(self, db):
        return (
            db.version,
            len(db.store),
            db.store.deleted_count,
            db.store.xs.tobytes(),
            db.store.ys.tobytes(),
        )

    def test_nan_insert_leaves_everything_untouched(self):
        db = SpatialDatabase.from_points(
            uniform_points(60, seed=71)
        ).prepare()
        before = self._snapshot_state(db)
        for x, y in [
            (float("nan"), 0.5),
            (0.5, float("inf")),
            (float("-inf"), float("nan")),
        ]:
            with pytest.raises(ValueError):
                db.insert((x, y))
        assert self._snapshot_state(db) == before
        # The index answers exactly as before (no phantom entries).
        assert db.k_nearest_neighbors(Point(0.5, 0.5), 5) == sorted(
            range(len(db)),
            key=lambda i: (
                db.point(i).squared_distance_to(Point(0.5, 0.5)),
                i,
            ),
        )[:5]

    def test_extend_with_one_bad_row_is_atomic(self):
        """A batch containing one non-finite coordinate inserts nothing:
        no rows, no version bump, no index entries."""
        db = SpatialDatabase.from_points(
            uniform_points(60, seed=73)
        ).prepare()
        before = self._snapshot_state(db)
        with pytest.raises(ValueError):
            db.extend([(0.1, 0.2), (0.3, float("nan")), (0.5, 0.6)])
        assert self._snapshot_state(db) == before
        area = random_query_polygon(0.3, rng=random.Random(5))
        assert (
            db.area_query(area, "voronoi").ids
            == db.area_query(area, "traditional").ids
        )

    def test_delete_out_of_range_and_double_delete(self):
        db = SpatialDatabase.from_points(uniform_points(40, seed=77))
        with pytest.raises(IndexError):
            db.delete(len(db.store))
        with pytest.raises(IndexError):
            db.delete(-1)
        db.delete(7)
        before = self._snapshot_state(db)
        with pytest.raises(ValueError):
            db.delete(7)
        assert self._snapshot_state(db) == before
        assert db.store.is_deleted(7)
        assert db.store.live_count == 39

    def test_failed_write_does_not_invalidate_result_cache(self):
        """The engine's version-stamped cache stays warm across rejected
        writes (the version did not move)."""
        db = SpatialDatabase.from_points(
            uniform_points(80, seed=79)
        ).prepare()
        from repro.query.spec import WindowQuery

        spec = WindowQuery((0.2, 0.2, 0.6, 0.6))
        first = db.query_batch([spec])[0].ids()
        with pytest.raises(ValueError):
            db.insert((float("nan"), 0.1))
        hits_before = db.engine.totals.as_dict()["cache_hits"]
        assert db.query_batch([spec])[0].ids() == first
        assert db.engine.totals.as_dict()["cache_hits"] > hits_before
