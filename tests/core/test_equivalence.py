"""The headline invariant: Voronoi query ≡ traditional query ≡ brute force.

This module is the load-bearing correctness argument of the reproduction:
on every workload we can generate — uniform, clustered, grid-degenerate,
duplicated, every query shape and size, both Delaunay backends, every
spatial index — the three implementations must return identical row sets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.random_shapes import random_query_polygon
from repro.core.database import SpatialDatabase
from repro.workloads.generators import (
    clustered_points,
    grid_points,
    uniform_points,
)


def _brute_force(db, area):
    return sorted(
        i for i in range(len(db)) if area.contains_point(db.point(i))
    )


def _assert_equivalent(db, area):
    voronoi = db.area_query(area, method="voronoi")
    traditional = db.area_query(area, method="traditional")
    expected = _brute_force(db, area)
    assert voronoi.ids == expected, "voronoi disagrees with brute force"
    assert traditional.ids == expected, "traditional disagrees with brute force"


class TestUniformWorkloads:
    @pytest.mark.parametrize("query_size", [0.001, 0.01, 0.08, 0.32])
    def test_query_sizes(self, query_size):
        db = SpatialDatabase.from_points(uniform_points(600, seed=81)).prepare()
        rng = random.Random(83)
        for _ in range(5):
            _assert_equivalent(
                db, random_query_polygon(query_size, rng=rng)
            )

    @pytest.mark.parametrize("n_vertices", [3, 5, 10, 30])
    def test_polygon_complexity(self, n_vertices):
        db = SpatialDatabase.from_points(uniform_points(400, seed=85)).prepare()
        rng = random.Random(87)
        for _ in range(5):
            _assert_equivalent(
                db,
                random_query_polygon(0.05, n_vertices=n_vertices, rng=rng),
            )


class TestDistributions:
    def test_clustered_data(self):
        db = SpatialDatabase.from_points(
            clustered_points(500, seed=89, clusters=8)
        ).prepare()
        rng = random.Random(91)
        for _ in range(10):
            _assert_equivalent(db, random_query_polygon(0.05, rng=rng))

    def test_grid_data_degenerate(self):
        db = SpatialDatabase.from_points(grid_points(400)).prepare()
        rng = random.Random(93)
        for _ in range(10):
            _assert_equivalent(db, random_query_polygon(0.05, rng=rng))

    def test_data_with_duplicates(self):
        points = uniform_points(200, seed=95)
        points += points[:50]  # 25 % duplicates
        db = SpatialDatabase.from_points(points).prepare()
        rng = random.Random(97)
        for _ in range(10):
            _assert_equivalent(db, random_query_polygon(0.08, rng=rng))

    def test_tiny_database(self):
        db = SpatialDatabase.from_points(uniform_points(3, seed=99)).prepare()
        rng = random.Random(101)
        for _ in range(5):
            _assert_equivalent(db, random_query_polygon(0.25, rng=rng))

    def test_single_point_database(self):
        db = SpatialDatabase.from_points([Point(0.5, 0.5)]).prepare()
        inside = Polygon([(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)])
        outside = Polygon([(0.8, 0.8), (0.9, 0.8), (0.9, 0.9), (0.8, 0.9)])
        assert db.area_query(inside).ids == [0]
        assert db.area_query(outside).ids == []


class TestBackendsAndIndexes:
    def test_both_backends(self):
        points = uniform_points(300, seed=103)
        rng = random.Random(105)
        areas = [random_query_polygon(0.05, rng=rng) for _ in range(5)]
        pure_db = SpatialDatabase.from_points(points, backend_kind="pure")
        scipy_db = SpatialDatabase.from_points(points, backend_kind="scipy")
        for area in areas:
            assert (
                pure_db.area_query(area).ids == scipy_db.area_query(area).ids
            )

    @pytest.mark.parametrize(
        "index_kind", ["rtree", "rstar", "kdtree", "quadtree", "grid", "brute"]
    )
    def test_all_indexes(self, index_kind):
        db = SpatialDatabase.from_points(
            uniform_points(300, seed=107), index_kind=index_kind
        ).prepare()
        rng = random.Random(109)
        for _ in range(5):
            _assert_equivalent(db, random_query_polygon(0.05, rng=rng))


class TestQueryAreaPlacement:
    def test_area_overlapping_space_boundary(self):
        # Polygon partially outside the data extent.
        db = SpatialDatabase.from_points(uniform_points(400, seed=111)).prepare()
        shifted = Polygon(
            [(-0.2, -0.2), (0.3, -0.1), (0.4, 0.4), (-0.1, 0.3)]
        )
        _assert_equivalent(db, shifted)

    def test_area_fully_outside_data(self):
        db = SpatialDatabase.from_points(uniform_points(100, seed=113)).prepare()
        outside = Polygon([(2, 2), (3, 2), (3, 3), (2, 3)])
        assert db.area_query(outside, method="voronoi").ids == []
        assert db.area_query(outside, method="traditional").ids == []

    def test_area_containing_all_data(self):
        db = SpatialDatabase.from_points(uniform_points(150, seed=115)).prepare()
        everything = Polygon([(-1, -1), (2, -1), (2, 2), (-1, 2)])
        assert db.area_query(everything).ids == list(range(150))

    def test_rectangle_query_area(self):
        # Shape where the traditional method has zero redundancy.
        db = SpatialDatabase.from_points(uniform_points(400, seed=117)).prepare()
        rect_area = Polygon([(0.2, 0.3), (0.7, 0.3), (0.7, 0.6), (0.2, 0.6)])
        _assert_equivalent(db, rect_area)


class TestHypothesisEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        data_seed=st.integers(0, 1000),
        query_seed=st.integers(0, 1000),
        n=st.integers(5, 120),
        query_size=st.floats(min_value=0.001, max_value=0.5),
    )
    def test_random_workloads(self, data_seed, query_seed, n, query_size):
        db = SpatialDatabase.from_points(
            uniform_points(n, seed=data_seed)
        ).prepare()
        area = random_query_polygon(
            query_size, rng=random.Random(query_seed)
        )
        _assert_equivalent(db, area)

    @settings(max_examples=25, deadline=None)
    @given(
        data_seed=st.integers(0, 1000),
        n=st.integers(5, 120),
        cx=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        cy=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        radius=st.floats(min_value=0.01, max_value=0.5),
    )
    def test_circle_regions(self, data_seed, n, cx, cy, radius):
        from repro.geometry.circle import Circle

        db = SpatialDatabase.from_points(
            uniform_points(n, seed=data_seed)
        ).prepare()
        disc = Circle(Point(cx, cy), radius)
        voronoi = db.area_query(disc, method="voronoi")
        traditional = db.area_query(disc, method="traditional")
        expected = sorted(
            i for i in range(len(db)) if disc.contains_point(db.point(i))
        )
        assert voronoi.ids == expected
        assert traditional.ids == expected

    @settings(max_examples=15, deadline=None)
    @given(
        vertices=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=3,
            max_size=12,
        ),
        data_seed=st.integers(0, 100),
    )
    def test_arbitrary_simple_polygons(self, vertices, data_seed):
        from repro.geometry.polygon import convex_hull

        hull = convex_hull([Point(x, y) for x, y in vertices])
        if len(hull) < 3:
            return
        area = Polygon(hull)
        if area.area <= 1e-12:
            return
        db = SpatialDatabase.from_points(
            uniform_points(80, seed=data_seed)
        ).prepare()
        _assert_equivalent(db, area)
