"""Unit tests for the SpatialDatabase facade."""

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.core.database import SpatialDatabase
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def db_300():
    return SpatialDatabase.from_points(uniform_points(300, seed=71)).prepare()


class TestConstruction:
    def test_from_points(self):
        db = SpatialDatabase.from_points([(0.1, 0.2), (0.3, 0.4)])
        assert len(db) == 2
        assert db.point(0) == Point(0.1, 0.2)

    def test_insert_returns_row_ids(self):
        db = SpatialDatabase()
        assert db.insert(Point(0.5, 0.5)) == 0
        assert db.insert((0.6, 0.6)) == 1
        assert len(db) == 2

    def test_extend_returns_row_ids(self):
        db = SpatialDatabase()
        ids = db.extend([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)])
        assert ids == [0, 1, 2]

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError):
            SpatialDatabase(index_kind="btree")

    def test_index_kwargs_forwarded(self):
        db = SpatialDatabase(max_entries=4)
        assert db.index.max_entries == 4


class TestQueries:
    def test_area_query_methods_agree(self, db_300, concave_polygon):
        voronoi = db_300.area_query(concave_polygon, method="voronoi")
        traditional = db_300.area_query(concave_polygon, method="traditional")
        assert voronoi.ids == traditional.ids

    def test_default_method_is_voronoi(self, db_300, concave_polygon):
        result = db_300.area_query(concave_polygon)
        assert result.stats.method == "voronoi"

    def test_unknown_method(self, db_300, concave_polygon):
        with pytest.raises(ValueError, match="unknown method"):
            db_300.area_query(concave_polygon, method="magic")

    def test_window_query(self, db_300):
        window = Rect(0.25, 0.25, 0.5, 0.5)
        expected = sorted(
            i
            for i in range(len(db_300))
            if window.contains_point(db_300.point(i))
        )
        assert db_300.window_query(window) == expected

    def test_nearest_neighbor(self, db_300):
        q = Point(0.4, 0.6)
        row = db_300.nearest_neighbor(q)
        best = min(
            range(len(db_300)),
            key=lambda i: db_300.point(i).squared_distance_to(q),
        )
        assert db_300.point(row).squared_distance_to(
            q
        ) == db_300.point(best).squared_distance_to(q)

    def test_k_nearest_neighbors(self, db_300):
        q = Point(0.1, 0.9)
        rows = db_300.k_nearest_neighbors(q, 5)
        assert len(rows) == 5
        distances = [db_300.point(i).distance_to(q) for i in rows]
        assert distances == sorted(distances)

    def test_voronoi_neighbors_symmetric(self, db_300):
        for i in range(0, 300, 30):
            for j in db_300.voronoi_neighbors(i):
                assert i in db_300.voronoi_neighbors(j)


class TestErrors:
    def test_empty_database_area_query(self, concave_polygon):
        with pytest.raises(EmptyDatabaseError):
            SpatialDatabase().area_query(concave_polygon)

    def test_empty_database_backend(self):
        with pytest.raises(EmptyDatabaseError):
            _ = SpatialDatabase().backend

    def test_nearest_neighbor_empty(self):
        assert SpatialDatabase().nearest_neighbor(Point(0, 0)) is None

    def test_zero_area_polygon_rejected(self, db_300):
        degenerate = Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)])
        assert degenerate.area == pytest.approx(0.0)
        with pytest.raises(InvalidQueryAreaError):
            db_300.area_query(degenerate)


class TestBackendLifecycle:
    def test_insert_grows_pure_backend_incrementally(self):
        db = SpatialDatabase.from_points(uniform_points(50, seed=73))
        backend_before = db.backend
        db.insert(Point(0.5, 0.5))
        # The pure backend is maintained in place, not rebuilt.
        assert db.backend is backend_before
        assert db.backend.size == 51

    def test_insert_invalidates_scipy_backend(self):
        db = SpatialDatabase.from_points(
            uniform_points(50, seed=73), backend_kind="scipy"
        )
        backend_before = db.backend
        db.insert(Point(0.5, 0.5))
        assert db.backend is not backend_before
        assert db.backend.size == 51

    def test_far_outside_insert_falls_back_to_rebuild(self):
        db = SpatialDatabase.from_points(uniform_points(50, seed=73))
        backend_before = db.backend
        db.insert(Point(1e9, 1e9))
        assert db.backend is not backend_before
        assert db.backend.size == 51

    def test_queries_stay_correct_across_inserts(self, concave_polygon):
        db = SpatialDatabase.from_points(uniform_points(80, seed=74)).prepare()
        rng = __import__("random").Random(75)
        for _ in range(40):
            db.insert(Point(rng.random(), rng.random()))
        voronoi = db.area_query(concave_polygon, method="voronoi")
        traditional = db.area_query(concave_polygon, method="traditional")
        expected = sorted(
            i
            for i in range(len(db))
            if concave_polygon.contains_point(db.point(i))
        )
        assert voronoi.ids == expected
        assert traditional.ids == expected

    def test_prepare_is_idempotent(self):
        db = SpatialDatabase.from_points(uniform_points(30, seed=75))
        assert db.prepare() is db
        backend = db.backend
        db.prepare()
        assert db.backend is backend

    def test_scipy_backend_option(self, concave_polygon):
        points = uniform_points(100, seed=77)
        pure_db = SpatialDatabase.from_points(points, backend_kind="pure")
        scipy_db = SpatialDatabase.from_points(points, backend_kind="scipy")
        assert (
            pure_db.area_query(concave_polygon).ids
            == scipy_db.area_query(concave_polygon).ids
        )


class TestClassification:
    def test_classes_partition_rows(self, db_300, concave_polygon):
        classes = db_300.classify_against(concave_polygon)
        all_rows = sorted(
            classes["internal"] + classes["boundary"] + classes["external"]
        )
        assert all_rows == list(range(300))

    def test_internal_matches_query(self, db_300, concave_polygon):
        classes = db_300.classify_against(concave_polygon)
        result = db_300.area_query(concave_polygon)
        assert classes["internal"] == result.ids

    def test_property7_internal_not_adjacent_to_external(
        self, db_300, concave_polygon
    ):
        """The paper's key structural conclusion: no internal point is a
        Voronoi neighbour of an external point."""
        classes = db_300.classify_against(concave_polygon)
        external = set(classes["external"])
        for row in classes["internal"]:
            assert not (set(db_300.voronoi_neighbors(row)) & external)


class TestPointsImmutability:
    """The point table is exposed as an immutable view (regression).

    ``db.points`` used to hand out the internal mutable list — a caller
    appending to it silently desynchronised ``len(db)`` and the spatial
    index.  The property now returns a read-only materialized view over
    the columnar store: mutation attempts fail loudly and nothing can
    drift.
    """

    def test_mutation_attempts_fail_and_nothing_desyncs(self):
        from repro.geometry.rectangle import Rect
        from repro.query.spec import WindowQuery

        db = SpatialDatabase.from_points(uniform_points(60, seed=8))
        everything = Rect(-1.0, -1.0, 2.0, 2.0)
        baseline = db.query(WindowQuery(everything)).ids()
        view = db.points

        with pytest.raises(AttributeError):
            view.append(Point(0.5, 0.5))  # type: ignore[attr-defined]
        with pytest.raises(AttributeError):
            view.extend([Point(0.5, 0.5)])  # type: ignore[attr-defined]
        with pytest.raises(TypeError):
            view[0] = Point(0.5, 0.5)  # type: ignore[index]
        with pytest.raises(AttributeError):
            view.pop()  # type: ignore[attr-defined]

        assert len(db) == 60
        assert len(db.points) == 60
        assert db.query(WindowQuery(everything)).ids() == baseline
        assert baseline == list(range(60))

    def test_view_tracks_legitimate_inserts(self):
        db = SpatialDatabase.from_points(uniform_points(10, seed=9))
        view = db.points
        row = db.insert(Point(0.25, 0.75))
        assert len(view) == 11
        assert view[row] == Point(0.25, 0.75)
        assert db.point(row) == Point(0.25, 0.75)

    def test_view_equality_with_lists(self):
        points = uniform_points(15, seed=10)
        db = SpatialDatabase.from_points(points)
        assert db.points == points
        assert points == db.points
