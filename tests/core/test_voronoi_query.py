"""Unit tests for Algorithm 1 (the Voronoi-diagram-based area query)."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.index.rtree import RTree
from repro.delaunay.backends import PureDelaunayBackend
from repro.core.voronoi_query import interior_position, voronoi_area_query
from repro.workloads.generators import uniform_points
from repro.geometry.random_shapes import random_query_polygon


@pytest.fixture(scope="module")
def setup_500():
    points = uniform_points(500, seed=61)
    index = RTree()
    index.bulk_load((p, i) for i, p in enumerate(points))
    backend = PureDelaunayBackend(points)
    return points, index, backend


class TestInteriorPosition:
    def test_centroid_of_convex(self, triangle):
        pos = interior_position(triangle)
        assert triangle.contains_point(pos)

    def test_concave_polygon(self, concave_polygon):
        pos = interior_position(concave_polygon)
        assert concave_polygon.contains_point(pos)

    def test_centroid_outside_crescent(self):
        # A horseshoe whose centroid is in the notch (outside).
        horseshoe = Polygon(
            [
                (0.0, 0.0),
                (1.0, 0.0),
                (1.0, 1.0),
                (0.0, 1.0),
                (0.0, 0.8),
                (0.8, 0.8),
                (0.8, 0.2),
                (0.0, 0.2),
            ]
        )
        pos = interior_position(horseshoe)
        assert horseshoe.contains_point(pos)

    def test_thin_sliver(self):
        sliver = Polygon([(0, 0), (1, 0.001), (1, 0.0)])
        pos = interior_position(sliver)
        assert sliver.contains_point(pos)


class TestCorrectness:
    def test_matches_brute_force(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if concave_polygon.contains_point(p)
        )
        assert result.ids == expected

    def test_random_polygons(self, setup_500):
        points, index, backend = setup_500
        rng = random.Random(63)
        for _ in range(20):
            area = random_query_polygon(0.05, rng=rng)
            result = voronoi_area_query(index, backend, points, area)
            expected = sorted(
                i for i, p in enumerate(points) if area.contains_point(p)
            )
            assert result.ids == expected

    def test_empty_result_area_between_points(self, setup_500):
        # A tiny polygon placed in a gap: no internal points, and the
        # query must terminate with an empty (correct) result.
        points, index, backend = setup_500
        rng = random.Random(65)
        empties = 0
        for _ in range(50):
            area = random_query_polygon(0.00001, rng=rng)
            result = voronoi_area_query(index, backend, points, area)
            expected = sorted(
                i for i, p in enumerate(points) if area.contains_point(p)
            )
            assert result.ids == expected
            empties += not result.ids
        assert empties > 0, "expected at least one empty-result query"

    def test_area_covering_everything(self, setup_500):
        points, index, backend = setup_500
        big = Polygon([(-1, -1), (2, -1), (2, 2), (-1, 2)])
        result = voronoi_area_query(index, backend, points, big)
        assert result.ids == list(range(500))

    def test_seed_position_override(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(
            index,
            backend,
            points,
            concave_polygon,
            seed_position=Point(0.2, 0.2),
        )
        expected = sorted(
            i
            for i, p in enumerate(points)
            if concave_polygon.contains_point(p)
        )
        assert result.ids == expected


class TestStats:
    def test_method_label(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        assert result.stats.method == "voronoi"

    def test_validations_equal_candidates(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        assert result.stats.validations == result.stats.candidates

    def test_redundant_accounting(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        assert (
            result.stats.redundant_validations
            == result.stats.candidates - result.stats.result_size
        )

    def test_fewer_candidates_than_traditional(self, setup_500):
        """The headline claim on a strongly concave area."""
        from repro.core.traditional_query import traditional_area_query

        points, index, backend = setup_500
        # The L-shape covers half its MBR, so the traditional candidate set
        # is about double the result; the Voronoi one is result + shell.
        horseshoe = Polygon(
            [
                (0.1, 0.1),
                (0.9, 0.1),
                (0.9, 0.9),
                (0.1, 0.9),
                (0.1, 0.7),
                (0.7, 0.7),
                (0.7, 0.3),
                (0.1, 0.3),
            ]
        )
        voronoi = voronoi_area_query(index, backend, points, horseshoe)
        traditional = traditional_area_query(index, horseshoe)
        assert voronoi.ids == traditional.ids
        assert voronoi.stats.candidates < traditional.stats.candidates

    def test_segment_tests_counted(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        assert result.stats.segment_tests > 0

    def test_seed_nn_node_accesses_recorded(self, setup_500, concave_polygon):
        points, index, backend = setup_500
        result = voronoi_area_query(index, backend, points, concave_polygon)
        assert result.stats.index_node_accesses > 0


class TestShellLocality:
    def test_all_candidates_near_area(self, setup_500):
        """Every redundant candidate must be Voronoi-adjacent to the area:
        its cell borders the region, so its distance to the polygon is at
        most one Voronoi-cell diameter (~sqrt(1/n) scale)."""
        points, index, backend = setup_500
        rng = random.Random(67)
        area = random_query_polygon(0.04, rng=rng)
        # Re-run the query and collect candidates via the contains hook.
        validated = []

        def tracking_contains(polygon, p):
            validated.append(p)
            return polygon.contains_point(p)

        voronoi_area_query(
            index, backend, points, area, contains=tracking_contains
        )
        # 500 uniform points => typical Voronoi cell diameter ~ 2/sqrt(500).
        max_shell_distance = 4.0 / (500 ** 0.5)
        for p in validated:
            if area.contains_point(p):
                continue
            distance = min(
                edge.distance_to_point(p) for edge in area.edges()
            )
            assert distance < max_shell_distance
