"""Executable checks of the paper's Properties 1–9 (Sections II–III).

Each test cites the property it verifies.  Together they validate the
theoretical argument that makes Algorithm 1 correct, on top of the
end-to-end result equality tested elsewhere.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.delaunay.backends import PureDelaunayBackend
from repro.delaunay.graph import is_connected, reachable_without
from repro.delaunay.triangulation import DelaunayTriangulation
from repro.delaunay.voronoi import VoronoiDiagram
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def points_300():
    return uniform_points(300, seed=121)


@pytest.fixture(scope="module")
def backend_300(points_300):
    return PureDelaunayBackend(points_300)


class TestProperty1Uniqueness:
    def test_voronoi_diagram_unique(self, points_300):
        """Property 1: V D(P) is unique — rebuilding with different
        insertion orders yields identical neighbour relations (general
        position)."""
        dt1 = DelaunayTriangulation(points_300, seed=1)
        dt2 = DelaunayTriangulation(points_300, seed=2)
        for i in range(len(points_300)):
            assert set(dt1.neighbors(i)) == set(dt2.neighbors(i))


class TestProperty2NearestAmongNeighbors:
    def test_nearest_point_is_a_voronoi_neighbor(
        self, points_300, backend_300
    ):
        """Property 2: the nearest point of P to q ∈ P is among q's Voronoi
        neighbours."""
        for i in range(0, 300, 7):
            p = points_300[i]
            nearest = min(
                (j for j in range(300) if j != i),
                key=lambda j: points_300[j].squared_distance_to(p),
            )
            neighbor_best = min(
                points_300[j].squared_distance_to(p)
                for j in backend_300.neighbors(i)
            )
            assert (
                neighbor_best == points_300[nearest].squared_distance_to(p)
            )


class TestProperty3CellMembership:
    def test_nn_cell_contains_query(self, points_300):
        """Property 3: p' is nearest to q ∉ P iff q ∈ V(P, p')."""
        vd = VoronoiDiagram(points_300)
        rng = random.Random(123)
        for _ in range(60):
            q = Point(rng.random(), rng.random())
            nearest = min(
                range(300),
                key=lambda i: points_300[i].squared_distance_to(q),
            )
            assert vd.cell(nearest).contains(q)


class TestProperty4Duality:
    def test_voronoi_neighbors_are_delaunay_edges(self, points_300):
        """Property 4: the Delaunay triangulation is the dual of the Voronoi
        diagram — two generators are Voronoi neighbours iff they share a
        Delaunay edge."""
        dt = DelaunayTriangulation(points_300)
        edge_set = set(dt.edges())
        for i in range(300):
            for j in dt.neighbors(i):
                assert ((i, j) if i < j else (j, i)) in edge_set


class TestProperty5Connectivity:
    def test_delaunay_graph_connected(self, backend_300):
        """Property 5: the Delaunay graph is connected."""
        assert is_connected(backend_300)


class TestProperty6NearestNeighborGraph:
    def test_nn_graph_subset_of_delaunay(self, points_300, backend_300):
        """Property 6: the nearest-neighbour graph is a subgraph of the
        Delaunay graph."""
        for i in range(300):
            p = points_300[i]
            nearest = min(
                (j for j in range(300) if j != i),
                key=lambda j: (points_300[j].squared_distance_to(p), j),
            )
            assert nearest in backend_300.neighbors(i)


@pytest.fixture(scope="module")
def classified(points_300, backend_300):
    """The paper's three point classes for a fixed random query area."""
    area = random_query_polygon(0.15, rng=random.Random(125))
    internal = {
        i for i, p in enumerate(points_300) if area.contains_point(p)
    }
    boundary = set()
    for i, p in enumerate(points_300):
        if i in internal:
            continue
        for j in backend_300.neighbors(i):
            if j in internal or area.intersects_segment(
                Segment(p, points_300[j])
            ):
                boundary.add(i)
                break
    external = set(range(300)) - internal - boundary
    return area, internal, boundary, external


class TestProperty7InternalNeighbors:
    def test_internal_points_only_touch_internal_or_boundary(
        self, backend_300, classified
    ):
        """Property 7: every Voronoi neighbour of an internal point is
        internal or boundary."""
        _, internal, boundary, external = classified
        for i in internal:
            for j in backend_300.neighbors(i):
                assert j not in external


class TestProperty8ExternalNeighbors:
    def test_external_points_only_touch_external_or_boundary(
        self, backend_300, classified
    ):
        """Property 8: every Voronoi neighbour of an external point is
        external or boundary (never internal)."""
        _, internal, boundary, external = classified
        for i in external:
            for j in backend_300.neighbors(i):
                assert j not in internal


class TestProperty9BoundaryCrossing:
    def test_boundary_points_have_a_crossing_link(
        self, points_300, backend_300, classified
    ):
        """Property 9: every boundary point has a neighbour link that
        intersects the area (that is how the class is defined, and how
        Algorithm 1 decides to keep expanding)."""
        area, internal, boundary, _ = classified
        for i in boundary:
            has_crossing = any(
                j in internal
                or area.intersects_segment(
                    Segment(points_300[i], points_300[j])
                )
                for j in backend_300.neighbors(i)
            )
            assert has_crossing


class TestReachabilityConclusion:
    def test_internal_points_reachable_avoiding_external(
        self, points_300, backend_300, classified
    ):
        """The paper's conclusion from Properties 7–9: starting at any
        internal point, every internal point is reachable through internal
        and boundary points only — the correctness core of Algorithm 1."""
        _, internal, boundary, external = classified
        if not internal:
            pytest.skip("query area happened to contain no points")
        seed = next(iter(internal))
        reachable = reachable_without(backend_300, seed, blocked=external)
        assert internal <= reachable
