"""Unit tests of the columnar :class:`repro.core.store.PointStore`."""

import numpy as np
import pytest

from repro.core.store import PointStore, PointsView
from repro.geometry.point import Point


class TestPointStore:
    def test_append_returns_stable_row_ids(self):
        store = PointStore()
        assert store.append(0.1, 0.2) == 0
        assert store.append(0.3, 0.4) == 1
        assert len(store) == 2
        assert store.coords(0) == (0.1, 0.2)
        assert store.coords(1) == (0.3, 0.4)

    def test_growth_beyond_initial_capacity(self):
        store = PointStore()
        for i in range(1000):
            assert store.append(float(i), float(-i)) == i
        assert len(store) == 1000
        assert store.xs[999] == 999.0
        assert store.ys[999] == -999.0

    def test_extend_points_and_arrays(self):
        store = PointStore()
        rows = store.extend_points([Point(1.0, 2.0), Point(3.0, 4.0)])
        assert list(rows) == [0, 1]
        rows = store.extend_array(
            np.array([5.0, 6.0]), np.array([7.0, 8.0])
        )
        assert list(rows) == [2, 3]
        assert store.coords(3) == (6.0, 8.0)
        assert list(store.extend_points([])) == []
        assert len(store) == 4

    def test_extend_array_rejects_mismatched_columns(self):
        store = PointStore()
        with pytest.raises(ValueError, match="disagree"):
            store.extend_array(np.zeros(3), np.zeros(2))

    def test_version_bumps_on_every_mutation(self):
        store = PointStore()
        v0 = store.version
        store.append(0.0, 0.0)
        v1 = store.version
        store.extend_points([Point(1.0, 1.0)])
        v2 = store.version
        store.extend_array(np.array([2.0]), np.array([2.0]))
        assert v0 < v1 < v2 < store.version

    def test_column_views_are_read_only_and_live(self):
        store = PointStore()
        store.append(1.0, 2.0)
        xs = store.xs
        assert xs.shape == (1,)
        with pytest.raises(ValueError):
            xs[0] = 9.0
        store.append(3.0, 4.0)
        assert store.xs.shape == (2,)

    def test_as_xy_round_trip(self):
        store = PointStore()
        store.extend_points([Point(0.5, 0.25), Point(0.75, 0.125)])
        xy = store.as_xy()
        assert xy.shape == (2, 2)
        assert xy.dtype == np.float64
        other = PointStore()
        other.extend_array(xy[:, 0], xy[:, 1])
        assert other.view() == store.view()
        # the snapshot is a copy: mutating it cannot reach the store
        xy[0, 0] = 99.0
        assert store.coords(0) == (0.5, 0.25)

    def test_point_materialization_is_cached_and_append_safe(self):
        store = PointStore()
        store.extend_points([Point(0.0, 0.0), Point(1.0, 1.0)])
        first = store.point(0)
        assert store.point(0) is first  # cached object
        store.append(2.0, 2.0)  # append-only: cache stays valid
        assert store.point(0) is first
        assert store.point(2) == Point(2.0, 2.0)

    def test_coords_bounds(self):
        store = PointStore()
        store.append(1.0, 2.0)
        assert store.coords(-1) == (1.0, 2.0)
        with pytest.raises(IndexError):
            store.coords(1)


class TestPointsView:
    def build(self):
        store = PointStore()
        store.extend_points(
            [Point(float(i), float(i * i)) for i in range(5)]
        )
        return store, store.view()

    def test_sequence_behaviour(self):
        store, view = self.build()
        assert len(view) == 5
        assert view[0] == Point(0.0, 0.0)
        assert view[-1] == Point(4.0, 16.0)
        assert view[1:3] == [Point(1.0, 1.0), Point(2.0, 4.0)]
        assert list(view) == [Point(float(i), float(i * i)) for i in range(5)]
        with pytest.raises(IndexError):
            view[5]
        with pytest.raises(IndexError):
            view[-6]

    def test_equality_against_lists_and_views(self):
        store, view = self.build()
        materialized = [Point(float(i), float(i * i)) for i in range(5)]
        assert view == materialized
        assert materialized == view  # reflected comparison
        assert view == tuple(materialized)
        other = PointStore()
        other.extend_points(materialized)
        assert view == other.view()
        other.append(9.0, 9.0)
        assert view != other.view()

    def test_view_is_live_but_immutable(self):
        store, view = self.build()
        store.append(5.0, 25.0)
        assert len(view) == 6  # live window onto the table
        assert not hasattr(view, "append")
        with pytest.raises(TypeError):
            view[0] = Point(9.0, 9.0)  # type: ignore[index]

    def test_unhashable_like_a_list(self):
        _, view = self.build()
        with pytest.raises(TypeError):
            hash(view)

    def test_repr(self):
        _, view = self.build()
        assert "5 rows" in repr(view)

    def test_rows_is_the_shared_cache_list(self):
        store, view = self.build()
        rows = store.rows()
        assert isinstance(rows, list)
        assert rows[3] is view[3]
        store.append(7.0, 49.0)
        assert store.rows()[5] == Point(7.0, 49.0)
        assert isinstance(view, PointsView)
