"""Unit tests for the traditional filter–refine area query."""


import pytest

from repro.index.rtree import RTree
from repro.core.traditional_query import (
    traditional_area_query,
    traditional_area_query_points,
)
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def indexed_points():
    points = uniform_points(500, seed=51)
    index = RTree()
    index.bulk_load((p, i) for i, p in enumerate(points))
    return points, index


class TestCorrectness:
    def test_matches_brute_force(self, indexed_points, concave_polygon):
        points, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if concave_polygon.contains_point(p)
        )
        assert result.ids == expected

    def test_result_sorted(self, indexed_points, concave_polygon):
        _, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        assert result.ids == sorted(result.ids)

    def test_triangle_query(self, indexed_points, triangle):
        points, index = indexed_points
        result = traditional_area_query(index, triangle)
        expected = sorted(
            i for i, p in enumerate(points) if triangle.contains_point(p)
        )
        assert result.ids == expected


class TestStats:
    def test_candidates_are_mbr_hits(self, indexed_points, concave_polygon):
        points, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        mbr_hits = sum(
            1 for p in points if concave_polygon.mbr.contains_point(p)
        )
        assert result.stats.candidates == mbr_hits

    def test_validations_equal_candidates(self, indexed_points, concave_polygon):
        _, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        assert result.stats.validations == result.stats.candidates

    def test_redundant_accounting(self, indexed_points, concave_polygon):
        _, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        assert (
            result.stats.redundant_validations
            == result.stats.candidates - result.stats.result_size
        )

    def test_method_label(self, indexed_points, concave_polygon):
        _, index = indexed_points
        assert (
            traditional_area_query(index, concave_polygon).stats.method
            == "traditional"
        )

    def test_time_positive(self, indexed_points, concave_polygon):
        _, index = indexed_points
        assert traditional_area_query(index, concave_polygon).stats.time_ms > 0

    def test_node_accesses_recorded(self, indexed_points, concave_polygon):
        _, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        assert result.stats.index_node_accesses > 0

    def test_l_shape_redundancy_matches_area_deficit(
        self, indexed_points, concave_polygon
    ):
        # The L-polygon covers 0.48/0.64 = 75 % of its MBR, so about a
        # quarter of the candidates should be redundant (uniform data).
        _, index = indexed_points
        result = traditional_area_query(index, concave_polygon)
        ratio = result.stats.redundant_validations / result.stats.candidates
        assert 0.15 < ratio < 0.4


class TestInjection:
    def test_contains_override(self, indexed_points, concave_polygon):
        _, index = indexed_points
        calls = []

        def fake_contains(area, p):
            calls.append(p)
            return False

        result = traditional_area_query(
            index, concave_polygon, contains=fake_contains
        )
        assert result.ids == []
        assert len(calls) == result.stats.candidates


class TestScanVariant:
    def test_scan_matches_index_query(self, indexed_points, concave_polygon):
        points, index = indexed_points
        entries = [(p, i) for i, p in enumerate(points)]
        scan = traditional_area_query_points(entries, concave_polygon)
        indexed = traditional_area_query(index, concave_polygon)
        assert scan.ids == indexed.ids
        assert scan.stats.candidates == indexed.stats.candidates
