"""Algorithm 1 takes "an arbitrary position in A" — test that arbitrariness.

The paper's pseudo-code seeds from the NN of *any* position inside the
query area.  Correctness must therefore be independent of the chosen
position, and efficiency nearly so (the candidate set is determined by the
area's internal points plus the boundary shell, not by the seed).
"""

import random

import pytest

from repro.geometry.point import Point
from repro.core.database import SpatialDatabase
from repro.core.voronoi_query import voronoi_area_query
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase.from_points(uniform_points(500, seed=401)).prepare()


class TestSeedInvariance:
    def test_results_identical_for_any_interior_seed(self, db):
        rng = random.Random(403)
        area = random_query_polygon(0.1, rng=rng)
        reference = None
        for seed_position in area.sample_interior(25, rng):
            result = voronoi_area_query(
                db.index,
                db.backend,
                db.points,
                area,
                seed_position=seed_position,
            )
            if reference is None:
                reference = result.ids
            assert result.ids == reference

    def test_candidates_stable_across_seeds(self, db):
        """The candidate count may differ by at most the one seed point
        (a seed whose NN lies outside the area adds itself)."""
        rng = random.Random(405)
        area = random_query_polygon(0.1, rng=rng)
        counts = {
            voronoi_area_query(
                db.index,
                db.backend,
                db.points,
                area,
                seed_position=seed_position,
            ).stats.candidates
            for seed_position in area.sample_interior(25, rng)
        }
        assert max(counts) - min(counts) <= 1

    def test_seed_outside_area_still_correct(self, db):
        """Even a (contract-violating) exterior seed position cannot produce
        wrong results — the expansion classifies every candidate exactly.
        It may return an empty set if the seed's component never touches
        the area, but whatever it returns must be a subset of the truth,
        and for seeds near the area it is exactly the truth."""
        rng = random.Random(407)
        area = random_query_polygon(0.1, rng=rng)
        expected = sorted(
            i for i in range(len(db)) if area.contains_point(db.point(i))
        )
        # Positions on a ring just outside the area's MBR.
        mbr = area.mbr
        near_positions = [
            Point(mbr.min_x - 0.01, mbr.min_y - 0.01),
            Point(mbr.max_x + 0.01, mbr.max_y + 0.01),
            Point(mbr.center.x, mbr.max_y + 0.01),
        ]
        for position in near_positions:
            result = voronoi_area_query(
                db.index, db.backend, db.points, area, seed_position=position
            )
            assert set(result.ids) <= set(expected)

    def test_degenerate_seed_on_data_point(self, db):
        """Seeding exactly on a database point (NN distance zero)."""
        rng = random.Random(409)
        area = random_query_polygon(0.15, rng=rng)
        inside_rows = [
            i for i in range(len(db)) if area.contains_point(db.point(i))
        ]
        if not inside_rows:
            pytest.skip("area happened to contain no points")
        expected = sorted(inside_rows)
        result = voronoi_area_query(
            db.index,
            db.backend,
            db.points,
            area,
            seed_position=db.point(inside_rows[0]),
        )
        assert result.ids == expected
