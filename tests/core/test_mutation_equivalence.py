"""Mutation equivalence: random write/query interleavings vs brute force.

The MVCC serving work (tombstone deletes, incremental inserts, snapshot
streams) only holds together if *every* query kind keeps agreeing with a
trivially-correct model database across arbitrary mutation histories.
This suite drives a :class:`SpatialDatabase` and a plain ``dict`` model
through the same interleaved insert/extend/delete sequences — Hypothesis
chooses the interleavings — and checks area, window, kNN (all methods),
composite, and streaming-kNN answers against the model after every
phase, across every registered index kind and both execution modes
(``vectorized=True/False``).
"""

import random

import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.core.database import SpatialDatabase
from repro.index import INDEX_REGISTRY
from repro.query.spec import (
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    UnionQuery,
    WindowQuery,
)
from repro.workloads.generators import uniform_points

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _build(index_kind, vectorized, n=40, seed=101):
    """A small prepared database plus its brute-force model dict."""
    points = uniform_points(n, seed=seed)
    db = SpatialDatabase.from_points(
        points, index_kind=index_kind, vectorized=vectorized
    ).prepare()
    model = {i: (p.x, p.y) for i, p in enumerate(points)}
    return db, model


def _apply(db, model, operations):
    """Apply one operation list to the database and the model alike."""
    for op in operations:
        kind = op[0]
        if kind == "insert":
            _, x, y = op
            row = db.insert((x, y))
            assert row not in model
            model[row] = (x, y)
        elif kind == "extend":
            _, pairs = op
            rows = db.extend(pairs)
            for row, (x, y) in zip(rows, pairs):
                assert row not in model
                model[row] = (x, y)
        else:  # delete: op carries an index into the sorted live rows
            _, pick = op
            live = sorted(model)
            if len(live) <= 3:  # keep the Delaunay graph non-degenerate
                continue
            victim = live[pick % len(live)]
            db.delete(victim)
            del model[victim]


def _check_all_kinds(db, model, rng):
    """Every query kind against the model, at the current version."""
    assert len(db) == len(model)
    assert db.store.live_count == len(model)

    # Area query, both methods, against brute force over the model.
    disc = Circle(
        Point(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)),
        rng.uniform(0.08, 0.3),
    )
    expected = sorted(
        row
        for row, (x, y) in model.items()
        if disc.contains_point(Point(x, y))
    )
    assert db.area_query(disc, method="voronoi").ids == expected
    assert db.area_query(disc, method="traditional").ids == expected

    # Window query.
    x0, y0 = rng.uniform(0.0, 0.6), rng.uniform(0.0, 0.6)
    rect = (x0, y0, x0 + 0.35, y0 + 0.35)
    in_window = sorted(
        row
        for row, (x, y) in model.items()
        if x0 <= x <= rect[2] and y0 <= y <= rect[3]
    )
    assert db.query(WindowQuery(rect)).ids() == in_window

    # kNN: voronoi graph walk and index best-first must both match the
    # model ranking (ties broken by row id, exactly like the kernels).
    q = Point(rng.random(), rng.random())
    k = min(8, len(model))
    ranked = sorted(
        model,
        key=lambda row: (
            (model[row][0] - q.x) ** 2 + (model[row][1] - q.y) ** 2,
            row,
        ),
    )
    assert db.k_nearest_neighbors(q, k, method="voronoi") == ranked[:k]
    assert db.k_nearest_neighbors(q, k, method="index") == ranked[:k]

    # Streaming (unbounded) kNN: the lazy generator path with tombstones.
    first = db.query(KnnQuery((q.x, q.y), None)).first(k)
    assert first == ranked[:k]

    # Composites over two overlapping windows.
    a = WindowQuery((x0, y0, x0 + 0.35, y0 + 0.35))
    b = WindowQuery((x0 + 0.15, y0 + 0.15, x0 + 0.5, y0 + 0.5))
    in_b = {
        row
        for row, (x, y) in model.items()
        if x0 + 0.15 <= x <= x0 + 0.5 and y0 + 0.15 <= y <= y0 + 0.5
    }
    assert db.query(UnionQuery((a, b))).ids() == sorted(
        set(in_window) | in_b
    )
    assert db.query(IntersectionQuery((a, b))).ids() == sorted(
        set(in_window) & in_b
    )
    assert db.query(DifferenceQuery((a, b))).ids() == sorted(
        set(in_window) - in_b
    )


# One operation: insert one point, extend a small batch, or delete the
# pick-th live row.  Coordinates stay off exact duplicates often enough
# for the Delaunay superset graph to remain well-formed.
_coord = st.floats(
    min_value=0.001, max_value=0.999, allow_nan=False, allow_infinity=False
)
_operation = st.one_of(
    st.tuples(st.just("insert"), _coord, _coord),
    st.tuples(
        st.just("extend"),
        st.lists(st.tuples(_coord, _coord), min_size=1, max_size=4),
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10_000)),
)


class TestRandomInterleavings:
    """Hypothesis-chosen mutation histories, checked phase by phase."""

    @given(
        index_kind=st.sampled_from(sorted(INDEX_REGISTRY)),
        vectorized=st.booleans(),
        phases=st.lists(
            st.lists(_operation, min_size=1, max_size=6),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_query_kinds_match_model(
        self, index_kind, vectorized, phases, seed
    ):
        db, model = _build(index_kind, vectorized)
        rng = random.Random(seed)
        for operations in phases:
            _apply(db, model, operations)
            _check_all_kinds(db, model, rng)


class TestEveryIndexKind:
    """Deterministic sweep: one fixed history on every registered index.

    The Hypothesis test samples kinds; this sweep guarantees each of the
    registered index implementations survives the same delete-heavy
    history in both execution modes on every run.
    """

    @pytest.mark.parametrize("index_kind", sorted(INDEX_REGISTRY))
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_fixed_history(self, index_kind, vectorized):
        db, model = _build(index_kind, vectorized, n=60, seed=202)
        rng = random.Random(7)
        history = [
            [("insert", 0.41, 0.43), ("delete", 11), ("delete", 5)],
            [
                ("extend", [(0.21, 0.84), (0.84, 0.22), (0.5, 0.51)]),
                ("delete", 0),
                ("insert", 0.52, 0.49),
            ],
            [("delete", 17), ("delete", 17), ("delete", 17)],
        ]
        for operations in history:
            _apply(db, model, operations)
            _check_all_kinds(db, model, rng)
        assert db.store.deleted_count == 6

    def test_delete_then_reinsert_near_tombstone(self):
        """A new point lands almost exactly on a tombstone: the live
        point must win every ranking, the tombstone none."""
        db, model = _build("rtree", True, n=50, seed=303)
        x, y = model[20]
        db.delete(20)
        del model[20]
        row = db.insert((x + 1e-6, y))
        model[row] = (x + 1e-6, y)
        q = Point(x, y)
        assert db.k_nearest_neighbors(q, 1, method="voronoi") == [row]
        assert db.query(KnnQuery((x, y), None)).first(1) == [row]
        _check_all_kinds(db, model, random.Random(9))
