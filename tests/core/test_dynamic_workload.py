"""Integration stress test: interleaved inserts and queries.

A live GIS ingests points while serving queries.  This module drives a
:class:`SpatialDatabase` through mixed insert/area-query/kNN workloads and
checks every answer against brute force — exercising the incremental
Delaunay maintenance, the R-tree's dynamic inserts, and the neighbor-table
patching together, which no single-module test covers.
"""

import random


from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.core.database import SpatialDatabase
from repro.core.knn_query import voronoi_knn_query
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


def _check_area(db, area):
    voronoi = db.area_query(area, method="voronoi")
    traditional = db.area_query(area, method="traditional")
    expected = sorted(
        i for i in range(len(db)) if area.contains_point(db.point(i))
    )
    assert voronoi.ids == expected
    assert traditional.ids == expected


class TestInterleavedWorkload:
    def test_insert_query_cycles(self):
        rng = random.Random(331)
        db = SpatialDatabase.from_points(uniform_points(150, seed=333)).prepare()
        for cycle in range(12):
            for _ in range(15):
                db.insert(Point(rng.random(), rng.random()))
            area = random_query_polygon(
                rng.choice([0.02, 0.08, 0.2]), rng=rng
            )
            _check_area(db, area)
        assert len(db) == 150 + 12 * 15

    def test_inserts_inside_active_query_area(self):
        """Insert points *into* the query region between queries; they must
        appear in the next answer."""
        rng = random.Random(335)
        db = SpatialDatabase.from_points(uniform_points(200, seed=337)).prepare()
        area = random_query_polygon(0.1, rng=rng)
        before = db.area_query(area, method="voronoi")
        added = [
            db.insert(p) for p in area.sample_interior(10, rng)
        ]
        after = db.area_query(area, method="voronoi")
        assert set(after.ids) == set(before.ids) | set(added)
        _check_area(db, area)

    def test_duplicate_inserts_during_queries(self):
        rng = random.Random(339)
        base = uniform_points(120, seed=341)
        db = SpatialDatabase.from_points(base).prepare()
        for i in range(0, 60, 5):
            db.insert(base[i])  # exact duplicates
            area = random_query_polygon(0.05, rng=rng)
            _check_area(db, area)

    def test_knn_stays_exact_across_inserts(self):
        rng = random.Random(343)
        db = SpatialDatabase.from_points(uniform_points(180, seed=345)).prepare()
        for _ in range(8):
            for _ in range(10):
                db.insert(Point(rng.random(), rng.random()))
            q = Point(rng.random(), rng.random())
            got = voronoi_knn_query(db.index, db.backend, db.points, q, 12)
            expected = sorted(
                range(len(db)),
                key=lambda i: (db.point(i).squared_distance_to(q), i),
            )[:12]
            assert got.ids == expected

    def test_circle_queries_across_inserts(self):
        rng = random.Random(347)
        db = SpatialDatabase.from_points(uniform_points(150, seed=349)).prepare()
        for _ in range(6):
            for _ in range(12):
                db.insert(Point(rng.random(), rng.random()))
            disc = Circle(
                Point(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)),
                rng.uniform(0.05, 0.2),
            )
            voronoi = db.area_query(disc, method="voronoi")
            expected = sorted(
                i
                for i in range(len(db))
                if disc.contains_point(db.point(i))
            )
            assert voronoi.ids == expected

    def test_hull_expanding_inserts(self):
        """Points inserted outside the current hull (but within the
        incremental-safe extent) keep everything consistent."""
        rng = random.Random(351)
        db = SpatialDatabase.from_points(uniform_points(100, seed=353)).prepare()
        for step in range(1, 6):
            db.insert(Point(1.0 + step * 0.5, 1.0 + step * 0.5))
            db.insert(Point(-step * 0.5, -step * 0.5))
        area = random_query_polygon(0.2, rng=rng)
        _check_area(db, area)
        # And the far-flung points are reachable via kNN.
        q = Point(3.0, 3.0)
        nearest = voronoi_knn_query(db.index, db.backend, db.points, q, 3)
        expected = sorted(
            range(len(db)),
            key=lambda i: (db.point(i).squared_distance_to(q), i),
        )[:3]
        assert nearest.ids == expected


class TestLongRunningConsistency:
    def test_thousand_operation_soak(self):
        """A longer soak mixing all operation types with periodic full
        verification."""
        rng = random.Random(355)
        db = SpatialDatabase.from_points(uniform_points(100, seed=357)).prepare()
        operations = 0
        for round_number in range(5):
            # ~200 operations per round: 150 inserts, 50 queries.
            for _ in range(150):
                if rng.random() < 0.1 and len(db) > 0:
                    db.insert(db.point(rng.randrange(len(db))))  # duplicate
                else:
                    db.insert(Point(rng.random(), rng.random()))
                operations += 1
            for _ in range(50):
                kind = rng.random()
                if kind < 0.5:
                    area = random_query_polygon(0.05, rng=rng)
                    voronoi = db.area_query(area, "voronoi")
                    # Spot-check against the traditional method (cheaper
                    # than brute force at this frequency).
                    assert voronoi.ids == db.area_query(area, "traditional").ids
                else:
                    q = Point(rng.random(), rng.random())
                    assert db.k_nearest_neighbors(
                        q, 5, method="voronoi"
                    ) == db.k_nearest_neighbors(q, 5, method="index")
                operations += 1
            # Full verification once per round.
            area = random_query_polygon(0.1, rng=rng)
            _check_area(db, area)
        assert operations == 5 * 200
        assert len(db) == 100 + 5 * 150
