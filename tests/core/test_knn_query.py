"""Unit tests for the Voronoi-based kNN query."""

import random

import pytest

from repro.geometry.point import Point
from repro.core.database import SpatialDatabase
from repro.core.knn_query import incremental_nearest, voronoi_knn_query
from repro.workloads.generators import clustered_points, uniform_points


@pytest.fixture(scope="module")
def db_400():
    return SpatialDatabase.from_points(uniform_points(400, seed=171)).prepare()


def _brute_knn(db, query, k):
    order = sorted(
        range(len(db)),
        key=lambda i: (db.point(i).squared_distance_to(query), i),
    )
    return order[:k]


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5, 20, 100])
    def test_matches_brute_force(self, db_400, k):
        rng = random.Random(173)
        for _ in range(10):
            q = Point(rng.random(), rng.random())
            got = voronoi_knn_query(
                db_400.index, db_400.backend, db_400.points, q, k
            )
            assert got.ids == _brute_knn(db_400, q, k)

    def test_k_exceeds_database(self, db_400):
        q = Point(0.5, 0.5)
        got = voronoi_knn_query(
            db_400.index, db_400.backend, db_400.points, q, 10_000
        )
        assert len(got.ids) == 400
        assert got.ids == _brute_knn(db_400, q, 400)

    def test_k_zero(self, db_400):
        got = voronoi_knn_query(
            db_400.index, db_400.backend, db_400.points, Point(0.5, 0.5), 0
        )
        assert got.ids == []

    def test_query_outside_data_extent(self, db_400):
        q = Point(3.0, -2.0)
        got = voronoi_knn_query(
            db_400.index, db_400.backend, db_400.points, q, 7
        )
        assert got.ids == _brute_knn(db_400, q, 7)

    def test_clustered_data(self):
        db = SpatialDatabase.from_points(
            clustered_points(300, seed=175, clusters=6)
        ).prepare()
        rng = random.Random(177)
        for _ in range(10):
            q = Point(rng.random(), rng.random())
            got = voronoi_knn_query(db.index, db.backend, db.points, q, 15)
            assert got.ids == _brute_knn(db, q, 15)

    def test_agrees_with_index_knn(self, db_400):
        rng = random.Random(179)
        for _ in range(10):
            q = Point(rng.random(), rng.random())
            assert db_400.k_nearest_neighbors(
                q, 9, method="voronoi"
            ) == db_400.k_nearest_neighbors(q, 9, method="index")

    def test_unknown_method_rejected(self, db_400):
        with pytest.raises(ValueError):
            db_400.k_nearest_neighbors(Point(0.5, 0.5), 3, method="magic")


class TestStats:
    def test_candidate_count_small(self, db_400):
        """Expansion locality: confirming k results should only evaluate
        O(k) candidates (~6 neighbours per confirmation), not O(n)."""
        q = Point(0.4, 0.6)
        got = voronoi_knn_query(
            db_400.index, db_400.backend, db_400.points, q, 10
        )
        assert got.stats.candidates < 10 * 8

    def test_method_label(self, db_400):
        got = voronoi_knn_query(
            db_400.index, db_400.backend, db_400.points, Point(0.5, 0.5), 3
        )
        # Unified method naming across the query API: the kNN kind's
        # Voronoi execution reports plain "voronoi".
        assert got.stats.method == "voronoi"


class TestIncrementalNearest:
    def test_streams_in_distance_order(self, db_400):
        q = Point(0.31, 0.62)
        stream = incremental_nearest(
            db_400.index, db_400.backend, db_400.points, q
        )
        first_25 = [next(stream) for _ in range(25)]
        assert first_25 == _brute_knn(db_400, q, 25)

    def test_exhausts_database(self, db_400):
        q = Point(0.9, 0.1)
        everything = list(
            incremental_nearest(db_400.index, db_400.backend, db_400.points, q)
        )
        assert sorted(everything) == list(range(400))

    def test_empty_database(self):
        db = SpatialDatabase()
        assert (
            list(incremental_nearest(db.index, None, db.points, Point(0, 0)))
            == []
        )
