"""Columnar vs scalar execution — exact equivalence on every query kind.

``SpatialDatabase(vectorized=True)`` (the default) runs the columnar
hot paths: bulk index probes, array refinement kernels, CSR wave BFS,
batched kNN distances.  ``vectorized=False`` runs the original scalar
per-point loops, kept as the oracle.  This suite drives *random traces
of every query kind* — area (both methods), window (index and voronoi),
kNN (index/voronoi, bounded and ``k=None`` streaming), nearest, and
nested composites — through both databases and asserts the results are
**byte-identical**: same ids, same distances (exact float equality, not
approximate), on the single-query path, the batch path, and the
streaming path.

Everything runs under ``simplefilter("error", DeprecationWarning)``:
the columnar paths must not touch any deprecated surface.
"""

import random
import warnings
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import SpatialDatabase
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.random_shapes import random_query_polygon
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)

N_POINTS = 500

_PAIR = {}


def database_pair():
    """One vectorized database and its scalar twin over the same rows."""
    if not _PAIR:
        rng = random.Random(20200417)
        points = [Point(rng.random(), rng.random()) for _ in range(N_POINTS)]
        _PAIR["vec"] = SpatialDatabase.from_points(
            points, backend_kind="scipy"
        ).prepare()
        _PAIR["scalar"] = SpatialDatabase.from_points(
            points, backend_kind="scipy", vectorized=False
        ).prepare()
    return _PAIR["vec"], _PAIR["scalar"]


@contextmanager
def deprecations_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


# -- spec strategies ----------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**20)
coords = st.floats(min_value=-0.2, max_value=1.2)
area_methods = st.sampled_from(["auto", "traditional", "voronoi"])


@st.composite
def polygons(draw):
    rng = random.Random(draw(seeds))
    query_size = rng.choice([0.005, 0.02, 0.08, 0.3])
    return random_query_polygon(query_size=query_size, rng=rng)


@st.composite
def regions(draw):
    if draw(st.booleans()):
        return draw(polygons())
    return Circle(
        Point(draw(coords), draw(coords)),
        draw(st.floats(min_value=0.01, max_value=0.4)),
    )


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2 + 1e-3, y2 + 1e-3)


limits = st.one_of(st.none(), st.integers(min_value=0, max_value=40))


@st.composite
def area_specs(draw):
    return AreaQuery(
        draw(regions()), method=draw(area_methods), limit=draw(limits)
    )


@st.composite
def window_specs(draw):
    return WindowQuery(
        draw(rects()),
        method=draw(st.sampled_from(["auto", "index", "voronoi"])),
        limit=draw(limits),
    )


@st.composite
def knn_specs(draw):
    k = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=30)))
    return KnnQuery(
        Point(draw(coords), draw(coords)),
        k,
        method=draw(st.sampled_from(["auto", "index", "voronoi"])),
        limit=draw(limits) if k is not None else draw(
            st.integers(min_value=0, max_value=40)
        ),
    )


@st.composite
def nearest_specs(draw):
    return NearestQuery(Point(draw(coords), draw(coords)))


region_leaves = st.one_of(area_specs(), window_specs())


@st.composite
def composite_specs(draw, children=region_leaves):
    kind = draw(
        st.sampled_from([UnionQuery, IntersectionQuery, DifferenceQuery])
    )
    parts = draw(st.lists(children, min_size=2, max_size=3))
    return kind(tuple(parts), limit=draw(limits))


nested_composites = st.one_of(
    composite_specs(),
    composite_specs(children=st.one_of(region_leaves, composite_specs())),
)

any_spec = st.one_of(
    area_specs(),
    window_specs(),
    knn_specs(),
    nearest_specs(),
    nested_composites,
)


def assert_same_result(spec, vec_result, scalar_result):
    assert vec_result.ids() == scalar_result.ids(), spec
    anchor = getattr(spec, "point", None)
    if anchor is not None:
        # exact float equality: the batched distance kernels perform the
        # scalar operations bit for bit
        assert vec_result.distances() == scalar_result.distances(), spec


# -- the suite ----------------------------------------------------------------


class TestColumnarEquivalence:
    @given(trace=st.lists(any_spec, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_single_and_batch_paths_agree(self, trace):
        db_vec, db_scalar = database_pair()
        with deprecations_are_errors():
            for spec in trace:
                assert_same_result(
                    spec, db_vec.query(spec), db_scalar.query(spec)
                )
            vec_batch = db_vec.query_batch(trace)
            scalar_batch = db_scalar.query_batch(trace)
            for spec, vec_result, scalar_result in zip(
                trace, vec_batch, scalar_batch
            ):
                assert_same_result(spec, vec_result, scalar_result)

    @given(
        qx=coords,
        qy=coords,
        n=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_knn_agrees(self, qx, qy, n):
        db_vec, db_scalar = database_pair()
        spec = KnnQuery((qx, qy), None)
        with deprecations_are_errors():
            assert (
                db_vec.query(spec).first(n) == db_scalar.query(spec).first(n)
            )

    @given(spec=nested_composites, n=st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_streaming_composites_agree(self, spec, n):
        db_vec, db_scalar = database_pair()
        with deprecations_are_errors():
            assert (
                db_vec.query(spec).first(n) == db_scalar.query(spec).first(n)
            )

    @given(region=regions())
    @settings(max_examples=30, deadline=None)
    def test_predicate_filtering_agrees(self, region):
        db_vec, db_scalar = database_pair()
        spec = AreaQuery(region, predicate=lambda p: p.x < 0.5)
        with deprecations_are_errors():
            assert db_vec.query(spec).ids() == db_scalar.query(spec).ids()

    def test_classify_against_agrees(self):
        db_vec, db_scalar = database_pair()
        rng = random.Random(5)
        with deprecations_are_errors():
            for _ in range(5):
                area = random_query_polygon(query_size=0.1, rng=rng)
                assert db_vec.classify_against(
                    area
                ) == db_scalar.classify_against(area)


class TestEquivalenceAcrossMutation:
    def test_inserts_keep_the_paths_identical(self):
        rng = random.Random(99)
        points = [Point(rng.random(), rng.random()) for _ in range(300)]
        with deprecations_are_errors():
            db_vec = SpatialDatabase.from_points(points)
            db_scalar = SpatialDatabase.from_points(
                points, vectorized=False
            )
            area = random_query_polygon(query_size=0.2, rng=rng)
            before_vec = db_vec.query(AreaQuery(area)).ids()
            assert before_vec == db_scalar.query(AreaQuery(area)).ids()
            fresh = [Point(rng.random(), rng.random()) for _ in range(50)]
            for p in fresh[:10]:
                assert db_vec.insert(p) == db_scalar.insert(p)
            db_vec.extend(fresh[10:])
            db_scalar.extend(fresh[10:])
            for method in ("traditional", "voronoi"):
                assert (
                    db_vec.query(AreaQuery(area, method=method)).ids()
                    == db_scalar.query(AreaQuery(area, method=method)).ids()
                )
            spec = KnnQuery((0.4, 0.6), 12, method="voronoi")
            assert db_vec.query(spec).ids() == db_scalar.query(spec).ids()


def test_scalar_twin_reports_vectorized_off():
    db_vec, db_scalar = database_pair()
    assert db_vec.vectorized and not db_scalar.vectorized
    assert db_vec.points == db_scalar.points
