"""Unit tests for QueryStats / QueryResult."""

from repro.core.stats import QueryResult, QueryStats


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.candidates == 0
        assert stats.time_ms == 0.0

    def test_merge_sums_counters(self):
        a = QueryStats(method="voronoi", candidates=10, validations=8,
                       redundant_validations=2, time_ms=1.5)
        b = QueryStats(candidates=5, validations=4, redundant_validations=1,
                       time_ms=0.5)
        merged = a.merge(b)
        assert merged.method == "voronoi"
        assert merged.candidates == 15
        assert merged.validations == 12
        assert merged.redundant_validations == 3
        assert merged.time_ms == 2.0

    def test_merge_keeps_other_method_when_unset(self):
        merged = QueryStats().merge(QueryStats(method="traditional"))
        assert merged.method == "traditional"

    def test_scaled(self):
        stats = QueryStats(candidates=10, validations=10, time_ms=4.0)
        half = stats.scaled(0.5)
        assert half.candidates == 5
        assert half.time_ms == 2.0

    def test_scaled_rounds(self):
        assert QueryStats(candidates=3).scaled(0.5).candidates == 2


class TestQueryResult:
    def test_len_and_iter(self):
        result = QueryResult(ids=[3, 1, 2])
        assert len(result) == 3
        assert list(result) == [3, 1, 2]

    def test_contains(self):
        result = QueryResult(ids=[1, 2, 3])
        assert 2 in result
        assert 9 not in result

    def test_default_empty(self):
        result = QueryResult()
        assert len(result) == 0
        assert result.stats.candidates == 0
