"""Unit tests for the experiment harness (small-scale smoke runs)."""

import pytest

from repro.workloads.experiments import (
    ExperimentConfig,
    main,
    make_query_trace,
    render_batch_table,
    render_figure,
    render_table,
    run_batch_throughput_experiment,
    run_data_size_sweep,
    run_query_size_sweep,
)


@pytest.fixture(scope="module")
def tiny_config():
    # Scaled down from the paper but kept dense enough (results of
    # hundreds of points) that the boundary shell is thin relative to the
    # result — the regime the paper's claims are about.
    return ExperimentConfig(
        data_sizes=(6000, 12000),
        query_sizes=(0.01, 0.04),
        fixed_query_size=0.04,
        fixed_data_size=6000,
        repetitions=3,
        backend_kind="scipy",
    )


@pytest.fixture(scope="module")
def data_rows(tiny_config):
    return run_data_size_sweep(tiny_config)


@pytest.fixture(scope="module")
def query_rows(tiny_config):
    return run_query_size_sweep(tiny_config)


class TestDataSizeSweep:
    def test_row_per_size(self, data_rows, tiny_config):
        assert [row.parameter for row in data_rows] == [6000.0, 12000.0]

    def test_repetitions_recorded(self, data_rows, tiny_config):
        assert all(
            row.repetitions == tiny_config.repetitions for row in data_rows
        )

    def test_result_grows_with_data(self, data_rows):
        assert data_rows[1].result_size > data_rows[0].result_size

    def test_candidates_exceed_results(self, data_rows):
        for row in data_rows:
            assert row.traditional_candidates >= row.result_size
            assert row.voronoi_candidates >= row.result_size

    def test_voronoi_candidate_advantage(self, data_rows):
        """The paper's core claim holds even at toy scale: fewer candidates."""
        for row in data_rows:
            assert row.voronoi_candidates < row.traditional_candidates

    def test_savings_properties(self, data_rows):
        for row in data_rows:
            assert 0.0 < row.candidate_saving < 1.0
            assert row.redundant_saving > 0.0


class TestQuerySizeSweep:
    def test_row_per_query_size(self, query_rows):
        assert [row.parameter for row in query_rows] == [0.01, 0.04]

    def test_result_grows_with_query_size(self, query_rows):
        assert query_rows[1].result_size > query_rows[0].result_size

    def test_traditional_candidates_track_mbr(self, query_rows, tiny_config):
        # Traditional candidates ≈ data_size * query_size.
        for row in query_rows:
            expected = tiny_config.fixed_data_size * row.parameter
            assert row.traditional_candidates == pytest.approx(
                expected, rel=0.35
            )

    def test_voronoi_advantage_at_larger_query(self, query_rows):
        # The advantage grows with query size; the 4 % row must show it.
        row = query_rows[-1]
        assert row.voronoi_candidates < row.traditional_candidates


class TestRendering:
    def test_table_contains_all_rows(self, query_rows):
        table = render_table(
            query_rows, parameter_label="Query size", as_query_size=True
        )
        assert "1%" in table
        assert "4%" in table
        assert "Result size" in table

    def test_figure_time(self, data_rows):
        figure = render_figure(
            data_rows, value="time", title="Fig. 4 smoke"
        )
        assert "Fig. 4 smoke" in figure
        assert figure.count(" V |") == len(data_rows)
        assert figure.count(" T |") == len(data_rows)

    def test_figure_redundant(self, query_rows):
        figure = render_figure(
            query_rows,
            value="redundant",
            title="Fig. 7 smoke",
            as_query_size=True,
        )
        assert "validations" in figure

    def test_figure_rejects_unknown_value(self, data_rows):
        with pytest.raises(ValueError):
            render_figure(data_rows, value="iops", title="x")


class TestPaperScaleConfig:
    def test_paper_scale_parameters(self):
        config = ExperimentConfig.paper_scale()
        assert config.data_sizes[0] == 100_000
        assert config.data_sizes[-1] == 1_000_000
        assert config.query_sizes == (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
        assert config.repetitions == 1000


class TestBatchThroughput:
    def test_trace_shape_and_determinism(self):
        trace = make_query_trace(0.02, distinct=5, repeat=3, seed=4)
        assert len(trace) == 15
        assert len(set(trace)) == 5  # area specs are hashable: 3 hits each
        assert all(spec.kind == "area" for spec in trace)
        again = make_query_trace(0.02, distinct=5, repeat=3, seed=4)
        assert trace == again

    def test_mixed_trace_covers_all_kinds(self):
        from repro.workloads.experiments import make_mixed_trace

        trace = make_mixed_trace(0.02, distinct=8, repeat=2, seed=4)
        assert len(trace) == 16
        assert {spec.kind for spec in trace} == {
            "area",
            "window",
            "knn",
            "nearest",
        }
        assert len(set(trace)) == 8
        assert trace == make_mixed_trace(0.02, distinct=8, repeat=2, seed=4)

    def test_composite_trace_shape_and_determinism(self):
        from repro.workloads.experiments import make_composite_trace

        trace = make_composite_trace(0.002, distinct=6, seed=4, parts=4)
        assert len(trace) == 6
        assert {spec.kind for spec in trace} == {
            "union",
            "intersection",
            "difference",
        }
        assert all(len(spec.parts) == 4 for spec in trace)
        assert all(
            leaf.kind == "area" and leaf.method == "voronoi"
            for spec in trace
            for leaf in spec.iter_leaves()
        )
        assert trace == make_composite_trace(
            0.002, distinct=6, seed=4, parts=4
        )

    def test_composite_experiment_rows(self):
        from repro.workloads.experiments import (
            COMPOSITE_TRACE_STRATEGIES,
            run_composite_throughput_experiment,
        )

        rows = run_composite_throughput_experiment(
            ExperimentConfig(),
            data_size=800,
            distinct=3,
            parts=4,
            query_size=0.002,
            rounds=1,
        )
        assert [row.strategy for row in rows] == list(
            COMPOSITE_TRACE_STRATEGIES
        )
        for row in rows:
            assert row.total_ms > 0.0

    def test_experiment_rows_and_rendering(self):
        rows = run_batch_throughput_experiment(
            ExperimentConfig(),
            data_size=800,
            distinct=4,
            repeat=2,
            query_size=0.04,
            rounds=1,
        )
        assert [row.strategy for row in rows] == [
            "loop/voronoi",
            "loop/traditional",
            "batch/voronoi",
            "batch/traditional",
            "batch/auto",
        ]
        assert rows[0].speedup == pytest.approx(1.0)
        for row in rows:
            assert row.total_ms > 0.0
            assert row.queries_per_second > 0.0
        table = render_batch_table(rows)
        assert "batch/auto" in table
        assert "queries/s" in table

    def test_main_batch_smoke(self, capsys):
        exit_code = main(
            [
                "batch",
                "--data-size",
                "600",
                "--batch-distinct",
                "3",
                "--batch-repeat",
                "2",
                "--batch-query-size",
                "0.05",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Batch engine throughput" in out
        assert "batch/auto" in out


class TestCLI:
    def test_main_table2_smoke(self, capsys):
        exit_code = main(
            [
                "table2",
                "--repetitions",
                "2",
                "--data-size",
                "800",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "32%" in out


class TestServeThroughput:
    def test_serve_trace_shapes(self):
        from repro.query.spec import AreaQuery, WindowQuery
        from repro.workloads.experiments import make_serve_trace

        trace = make_serve_trace(0.01, 8, 2, seed=5, cluster=4)
        assert len(trace) == 16
        assert trace[:8] == trace[8:]  # the repeat rounds
        assert trace == make_serve_trace(0.01, 8, 2, seed=5, cluster=4)
        kinds = {type(spec) for spec in trace}
        assert kinds == {WindowQuery, AreaQuery}  # mixed shape default
        # clusters are contiguous: the first four specs are jittered
        # copies of one hot tile (near-coincident anchors)
        anchors = [spec.anchor() for spec in trace[:4]]
        union = anchors[0]
        for anchor in anchors[1:]:
            union = union.union(anchor)
        assert union.area <= 1.2 * max(a.area for a in anchors)
        tiles = make_serve_trace(0.01, 6, 1, seed=5, shape="tiles")
        assert {type(spec) for spec in tiles} == {WindowQuery}
        regions = make_serve_trace(0.01, 6, 1, seed=5, shape="regions")
        assert {type(spec) for spec in regions} == {AreaQuery}
        with pytest.raises(ValueError, match="shape"):
            make_serve_trace(0.01, 6, 1, shape="spiral")

    def test_serve_experiment_rows(self):
        from repro.core.database import SpatialDatabase
        from repro.workloads.experiments import (
            run_serve_throughput_experiment,
        )
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(500, seed=47), backend_kind="scipy"
        ).prepare()
        rows = run_serve_throughput_experiment(
            ExperimentConfig(seed=3),
            clients=2,
            distinct=4,
            repeat=1,
            query_size=0.02,
            rounds=1,
            cluster=2,
            database=db,
        )
        assert [row.strategy for row in rows] == [
            "serve/sequential",
            "serve/coalesced x2",
        ]
        assert rows[0].speedup == 1.0
        assert all(row.total_ms > 0.0 for row in rows)
        table = render_batch_table(rows)
        assert "serve/coalesced x2" in table

    def test_main_serve_smoke(self, capsys):
        exit_code = main(
            [
                "serve",
                "--data-size",
                "500",
                "--batch-distinct",
                "4",
                "--batch-repeat",
                "1",
                "--clients",
                "2",
                "--batch-query-size",
                "0.02",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Served throughput over the NDJSON wire" in out
        assert "serve/sequential" in out


class TestProductionSessions:
    def test_structure_and_interleave(self):
        from repro.workloads.experiments import make_production_sessions

        ops = make_production_sessions(sessions=8, ops_per_session=6, seed=2)
        assert len(ops) > 0
        sessions = {op.session for op in ops}
        assert sessions == set(range(8))
        # Round-robin interleave: the first ops cycle through sessions
        # rather than draining one session at a time.
        first_eight = [op.session for op in ops[:8]]
        assert len(set(first_eight)) > 1
        kinds = {op.kind for op in ops}
        assert "window" in kinds
        assert kinds <= {
            "window",
            "area",
            "knn",
            "insert",
            "subscribe",
            "unsubscribe",
        }

    def test_deterministic_and_seed_sensitive(self):
        from repro.workloads.experiments import make_production_sessions

        a = make_production_sessions(sessions=5, ops_per_session=8, seed=3)
        b = make_production_sessions(sessions=5, ops_per_session=8, seed=3)
        c = make_production_sessions(sessions=5, ops_per_session=8, seed=4)
        assert [(o.kind, o.session) for o in a] == [
            (o.kind, o.session) for o in b
        ]
        assert [(o.kind, o.session) for o in a] != [
            (o.kind, o.session) for o in c
        ]

    def test_subscriptions_bracket_their_session(self):
        """A session that subscribes does so first and unsubscribes
        last — subscription lifetime spans the session."""
        from repro.workloads.experiments import make_production_sessions

        ops = make_production_sessions(
            sessions=30, ops_per_session=6, subscribe_fraction=1.0, seed=1
        )
        by_session = {}
        for op in ops:
            by_session.setdefault(op.session, []).append(op.kind)
        for session, kinds in by_session.items():
            assert kinds[0] == "subscribe", (session, kinds)
            assert kinds[-1] == "unsubscribe", (session, kinds)

    def test_zipf_home_tiles_concentrate_traffic(self):
        """Most sessions should live on a few hot tiles: the spread of
        distinct window anchors must be far below the session count."""
        from repro.workloads.experiments import make_production_sessions

        ops = make_production_sessions(
            sessions=64,
            ops_per_session=4,
            tiles=12,
            alpha=1.3,
            subscribe_fraction=0.0,
            write_fraction=0.0,
            knn_fraction=0.0,
            area_fraction=0.0,
            seed=0,
        )
        # Bucket window centres to their tile; Zipf should leave some
        # of the 144 tiles untouched while the hot ones dominate.
        centres = set()
        for op in ops:
            rect = op.payload.rect
            centres.add(
                (round((rect.min_x + rect.max_x) / 2, 1),
                 round((rect.min_y + rect.max_y) / 2, 1))
            )
        assert len(centres) < 64


class TestTailLatencyExperiment:
    def test_small_run_end_to_end(self):
        from repro.core.database import SpatialDatabase
        from repro.workloads.experiments import (
            render_tail_table,
            run_tail_latency_experiment,
        )
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(600, seed=11), backend_kind="pure"
        ).prepare()
        result = run_tail_latency_experiment(
            ExperimentConfig(seed=5),
            data_size=600,
            sessions=4,
            ops_per_session=5,
            rate=400.0,
            connections=2,
            database=db,
        )
        report = result.report
        assert report.answered == report.offered == 20
        kinds = result.kind_percentiles()
        assert kinds, "no per-kind percentiles measured"
        for row in kinds.values():
            assert 0.0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        wait = result.server_latency()["admission_wait"]
        assert wait["count"] > 0
        table = render_tail_table(result)
        assert "admission" in table

    def test_main_tail_smoke(self, capsys):
        exit_code = main(
            [
                "tail",
                "--data-size",
                "600",
                "--sessions",
                "4",
                "--rate",
                "400",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Tail latency under skewed bursty traffic" in out


class TestOverloadExperiment:
    def test_small_run_sheds_and_bounds(self):
        from repro.core.database import SpatialDatabase
        from repro.workloads.experiments import (
            render_overload_table,
            run_overload_experiment,
        )
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(600, seed=13), backend_kind="scipy"
        ).prepare()
        result = run_overload_experiment(
            ExperimentConfig(seed=7),
            data_size=600,
            calibration_requests=120,
            overload_factor=2.0,
            duration_s=0.4,
            connections=4,
            max_queue=8,
            database=db,
        )
        assert result.capacity_rps > 0
        assert result.offered_rps == pytest.approx(
            2.0 * result.capacity_rps
        )
        assert result.admitted > 0
        assert 0.0 <= result.shed_rate < 1.0
        table = render_overload_table(result)
        assert "shed" in table

    def test_main_overload_smoke(self, capsys):
        exit_code = main(
            [
                "overload",
                "--data-size",
                "600",
                "--duration",
                "0.3",
                "--max-queue",
                "8",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Overload shedding at" in out
