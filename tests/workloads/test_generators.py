"""Unit tests for the dataset generators."""

import pytest

from repro.geometry.rectangle import Rect
from repro.workloads.generators import (
    clustered_points,
    grid_points,
    uniform_points,
)


class TestUniform:
    def test_count(self):
        assert len(uniform_points(123)) == 123

    def test_deterministic(self):
        assert uniform_points(50, seed=5) == uniform_points(50, seed=5)

    def test_seed_changes_data(self):
        assert uniform_points(50, seed=5) != uniform_points(50, seed=6)

    def test_inside_space(self):
        space = Rect(2, 3, 4, 5)
        for p in uniform_points(100, seed=1, space=space):
            assert space.contains_point(p)

    def test_zero_points(self):
        assert uniform_points(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1)

    def test_roughly_uniform_quadrants(self):
        points = uniform_points(4000, seed=9)
        quadrant_counts = [0, 0, 0, 0]
        for p in points:
            quadrant_counts[(p.x >= 0.5) + 2 * (p.y >= 0.5)] += 1
        for count in quadrant_counts:
            assert 800 < count < 1200


class TestClustered:
    def test_count(self):
        assert len(clustered_points(200, seed=1)) == 200

    def test_inside_space(self):
        space = Rect(0, 0, 1, 1)
        for p in clustered_points(300, seed=2):
            assert space.contains_point(p)

    def test_clustering_effect(self):
        # Clustered data is measurably denser locally than uniform data:
        # compare mean nearest-neighbour distance.

        uniform = uniform_points(300, seed=3)
        clustered = clustered_points(300, seed=3, clusters=5, spread=0.01)

        def mean_nn(points):
            total = 0.0
            for i, p in enumerate(points):
                total += min(
                    p.distance_to(q) for j, q in enumerate(points) if j != i
                )
            return total / len(points)

        assert mean_nn(clustered) < mean_nn(uniform) * 0.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            clustered_points(-1)
        with pytest.raises(ValueError):
            clustered_points(10, clusters=0)


class TestGrid:
    def test_square_count(self):
        assert len(grid_points(49)) == 49  # 7x7

    def test_rounds_up(self):
        assert len(grid_points(50)) == 64  # 8x8

    def test_no_jitter_is_regular(self):
        points = grid_points(16, jitter=0.0)
        xs = sorted({p.x for p in points})
        assert len(xs) == 4

    def test_jitter_breaks_regularity(self):
        points = grid_points(16, jitter=0.3, seed=7)
        xs = {p.x for p in points}
        assert len(xs) == 16

    def test_inside_space(self):
        space = Rect(0, 0, 1, 1)
        for p in grid_points(100, jitter=0.5, seed=9):
            assert space.contains_point(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_points(0)


class TestMovingObjects:
    def _positions(self, n=15, seed=3):
        return uniform_points(n, seed=seed)

    def test_step_count_and_shape(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        steps = list(moving_object_steps(positions, 40, seed=7))
        assert len(steps) == 40
        for index, old, new in steps:
            assert 0 <= index < len(positions)
            assert old != new

    def test_deterministic_in_seed(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        assert list(moving_object_steps(positions, 30, seed=9)) == list(
            moving_object_steps(positions, 30, seed=9)
        )
        assert list(moving_object_steps(positions, 30, seed=9)) != list(
            moving_object_steps(positions, 30, seed=10)
        )

    def test_moves_stay_inside_space_and_chain(self):
        from repro.geometry.point import Point
        from repro.workloads.generators import moving_object_steps

        space = Rect(0.0, 0.0, 1.0, 1.0)
        positions = self._positions()
        current = {i: (p.x, p.y) for i, p in enumerate(positions)}
        for index, old, new in moving_object_steps(positions, 200, seed=11):
            # Each step departs from the object's current position...
            assert current[index] == old
            current[index] = new
            # ...and lands inside the space.
            assert space.contains_point(Point(*new))

    def test_step_length_bounded_by_speed(self):
        import math

        from repro.workloads.generators import moving_object_steps

        speed = 0.03
        for _, old, new in moving_object_steps(
            self._positions(), 100, seed=13, speed=speed
        ):
            assert math.hypot(new[0] - old[0], new[1] - old[1]) <= speed * 1.001

    def test_input_not_mutated(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        snapshot = list(positions)
        list(moving_object_steps(positions, 50, seed=17))
        assert positions == snapshot

    def test_validation(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, -1))
        with pytest.raises(ValueError):
            list(moving_object_steps([], 5))
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, 5, speed=0.0))
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, 5, hotspot_fraction=1.5))
        assert list(moving_object_steps([], 0)) == []
