"""Unit tests for the dataset generators."""

import pytest

from repro.geometry.rectangle import Rect
from repro.workloads.generators import (
    clustered_points,
    grid_points,
    uniform_points,
)


class TestUniform:
    def test_count(self):
        assert len(uniform_points(123)) == 123

    def test_deterministic(self):
        assert uniform_points(50, seed=5) == uniform_points(50, seed=5)

    def test_seed_changes_data(self):
        assert uniform_points(50, seed=5) != uniform_points(50, seed=6)

    def test_inside_space(self):
        space = Rect(2, 3, 4, 5)
        for p in uniform_points(100, seed=1, space=space):
            assert space.contains_point(p)

    def test_zero_points(self):
        assert uniform_points(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1)

    def test_roughly_uniform_quadrants(self):
        points = uniform_points(4000, seed=9)
        quadrant_counts = [0, 0, 0, 0]
        for p in points:
            quadrant_counts[(p.x >= 0.5) + 2 * (p.y >= 0.5)] += 1
        for count in quadrant_counts:
            assert 800 < count < 1200


class TestClustered:
    def test_count(self):
        assert len(clustered_points(200, seed=1)) == 200

    def test_inside_space(self):
        space = Rect(0, 0, 1, 1)
        for p in clustered_points(300, seed=2):
            assert space.contains_point(p)

    def test_clustering_effect(self):
        # Clustered data is measurably denser locally than uniform data:
        # compare mean nearest-neighbour distance.

        uniform = uniform_points(300, seed=3)
        clustered = clustered_points(300, seed=3, clusters=5, spread=0.01)

        def mean_nn(points):
            total = 0.0
            for i, p in enumerate(points):
                total += min(
                    p.distance_to(q) for j, q in enumerate(points) if j != i
                )
            return total / len(points)

        assert mean_nn(clustered) < mean_nn(uniform) * 0.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            clustered_points(-1)
        with pytest.raises(ValueError):
            clustered_points(10, clusters=0)


class TestGrid:
    def test_square_count(self):
        assert len(grid_points(49)) == 49  # 7x7

    def test_rounds_up(self):
        assert len(grid_points(50)) == 64  # 8x8

    def test_no_jitter_is_regular(self):
        points = grid_points(16, jitter=0.0)
        xs = sorted({p.x for p in points})
        assert len(xs) == 4

    def test_jitter_breaks_regularity(self):
        points = grid_points(16, jitter=0.3, seed=7)
        xs = {p.x for p in points}
        assert len(xs) == 16

    def test_inside_space(self):
        space = Rect(0, 0, 1, 1)
        for p in grid_points(100, jitter=0.5, seed=9):
            assert space.contains_point(p)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_points(0)


class TestMovingObjects:
    def _positions(self, n=15, seed=3):
        return uniform_points(n, seed=seed)

    def test_step_count_and_shape(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        steps = list(moving_object_steps(positions, 40, seed=7))
        assert len(steps) == 40
        for index, old, new in steps:
            assert 0 <= index < len(positions)
            assert old != new

    def test_deterministic_in_seed(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        assert list(moving_object_steps(positions, 30, seed=9)) == list(
            moving_object_steps(positions, 30, seed=9)
        )
        assert list(moving_object_steps(positions, 30, seed=9)) != list(
            moving_object_steps(positions, 30, seed=10)
        )

    def test_moves_stay_inside_space_and_chain(self):
        from repro.geometry.point import Point
        from repro.workloads.generators import moving_object_steps

        space = Rect(0.0, 0.0, 1.0, 1.0)
        positions = self._positions()
        current = {i: (p.x, p.y) for i, p in enumerate(positions)}
        for index, old, new in moving_object_steps(positions, 200, seed=11):
            # Each step departs from the object's current position...
            assert current[index] == old
            current[index] = new
            # ...and lands inside the space.
            assert space.contains_point(Point(*new))

    def test_step_length_bounded_by_speed(self):
        import math

        from repro.workloads.generators import moving_object_steps

        speed = 0.03
        for _, old, new in moving_object_steps(
            self._positions(), 100, seed=13, speed=speed
        ):
            assert math.hypot(new[0] - old[0], new[1] - old[1]) <= speed * 1.001

    def test_input_not_mutated(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        snapshot = list(positions)
        list(moving_object_steps(positions, 50, seed=17))
        assert positions == snapshot

    def test_validation(self):
        from repro.workloads.generators import moving_object_steps

        positions = self._positions()
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, -1))
        with pytest.raises(ValueError):
            list(moving_object_steps([], 5))
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, 5, speed=0.0))
        with pytest.raises(ValueError):
            list(moving_object_steps(positions, 5, hotspot_fraction=1.5))
        assert list(moving_object_steps([], 0)) == []


class TestZipfRanks:
    def test_count_and_range(self):
        from repro.workloads.generators import zipf_ranks

        ranks = zipf_ranks(50, 400, seed=1)
        assert len(ranks) == 400
        assert all(0 <= r < 50 for r in ranks)

    def test_deterministic_in_seed(self):
        from repro.workloads.generators import zipf_ranks

        assert zipf_ranks(20, 100, seed=7) == zipf_ranks(20, 100, seed=7)
        assert zipf_ranks(20, 100, seed=7) != zipf_ranks(20, 100, seed=8)

    def test_skew_favours_low_ranks(self):
        """Rank 0 must absorb far more than its uniform share."""
        from collections import Counter

        from repro.workloads.generators import zipf_ranks

        counts = Counter(zipf_ranks(100, 5_000, alpha=1.1, seed=3))
        uniform_share = 5_000 / 100
        assert counts[0] > 5 * uniform_share
        # The head dominates the tail: top-10 ranks beat the other 90.
        head = sum(counts[r] for r in range(10))
        assert head > 5_000 / 2

    def test_alpha_zero_is_roughly_uniform(self):
        from collections import Counter

        from repro.workloads.generators import zipf_ranks

        counts = Counter(zipf_ranks(10, 10_000, alpha=0.0, seed=5))
        for rank in range(10):
            assert 700 < counts[rank] < 1300, (rank, counts[rank])

    def test_higher_alpha_is_more_skewed(self):
        from repro.workloads.generators import zipf_ranks

        mild = zipf_ranks(100, 3_000, alpha=0.8, seed=2)
        steep = zipf_ranks(100, 3_000, alpha=2.0, seed=2)
        assert steep.count(0) > mild.count(0)

    def test_validation(self):
        from repro.workloads.generators import zipf_ranks

        with pytest.raises(ValueError):
            zipf_ranks(0, 10)
        with pytest.raises(ValueError):
            zipf_ranks(10, -1)
        with pytest.raises(ValueError):
            zipf_ranks(10, 10, alpha=-0.1)
        assert zipf_ranks(10, 0) == []


class TestBurstyArrivals:
    def test_sorted_count_and_start(self):
        from repro.workloads.generators import bursty_arrivals

        times = bursty_arrivals(500, 100.0, seed=1, burst_probability=0.1)
        assert len(times) == 500
        assert times == sorted(times)
        assert times[0] >= 0.0

    def test_mean_rate_holds(self):
        """Offered load averages `rate` with and without bursts."""
        from repro.workloads.generators import bursty_arrivals

        for kwargs in ({}, {"burst_probability": 0.1, "burst_size": 8}):
            times = bursty_arrivals(4_000, 200.0, seed=9, **kwargs)
            measured = len(times) / times[-1]
            assert 140.0 < measured < 280.0, (kwargs, measured)

    def test_bursts_tighten_gaps(self):
        """Burst mode packs followers at the exact intra-burst spacing
        (`1 / (rate * burst_size)`), a spike a smooth Poisson stream's
        continuous gap distribution essentially never produces."""
        from repro.workloads.generators import bursty_arrivals

        smooth = bursty_arrivals(2_000, 100.0, seed=4)
        bursty = bursty_arrivals(
            2_000, 100.0, seed=4, burst_probability=0.2, burst_size=8
        )
        gap = lambda ts: [b - a for a, b in zip(ts, ts[1:])]  # noqa: E731
        spacing = 1.0 / (100.0 * 8)  # intra-burst spacing at this rate
        at_spacing = lambda ts: sum(  # noqa: E731
            1 for g in gap(ts) if abs(g - spacing) < 1e-12
        )
        assert at_spacing(smooth) == 0
        # ~0.2 of 2000 arrivals lead a burst of 8 -> hundreds of
        # followers, each one gap at exactly the packed spacing.
        assert at_spacing(bursty) > 200

    def test_diurnal_wave_modulates_local_rate(self):
        """With a diurnal period, arrivals cluster in the high half of
        each wave — the first half-period (rate swung up) holds more
        arrivals than the second (rate swung down)."""
        from repro.workloads.generators import bursty_arrivals

        period = 2.0
        times = bursty_arrivals(
            4_000,
            200.0,
            seed=6,
            diurnal_period_s=period,
            diurnal_amplitude=0.9,
        )
        up = sum(1 for t in times if (t % period) < period / 2)
        down = len(times) - up
        assert up > 1.3 * down, (up, down)

    def test_deterministic_in_seed(self):
        from repro.workloads.generators import bursty_arrivals

        a = bursty_arrivals(100, 50.0, seed=3, burst_probability=0.1)
        b = bursty_arrivals(100, 50.0, seed=3, burst_probability=0.1)
        assert a == b

    def test_validation(self):
        from repro.workloads.generators import bursty_arrivals

        with pytest.raises(ValueError):
            bursty_arrivals(-1, 10.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 10.0, burst_probability=1.5)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 10.0, burst_size=0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 10.0, diurnal_amplitude=1.0)
        assert bursty_arrivals(0, 10.0) == []
