"""Unit tests for the query-area workloads."""

import pytest

from repro.geometry.rectangle import Rect
from repro.workloads.queries import QueryWorkload, make_query_areas


class TestQueryWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(query_size=0.0)
        with pytest.raises(ValueError):
            QueryWorkload(query_size=1.5)
        with pytest.raises(ValueError):
            QueryWorkload(query_size=0.1, shape="blob")
        with pytest.raises(ValueError):
            QueryWorkload(query_size=0.1, n_vertices=2)

    def test_deterministic(self):
        w = QueryWorkload(query_size=0.05, seed=3)
        assert w.areas(5) == QueryWorkload(query_size=0.05, seed=3).areas(5)

    def test_seed_matters(self):
        a = QueryWorkload(query_size=0.05, seed=3).areas(3)
        b = QueryWorkload(query_size=0.05, seed=4).areas(3)
        assert a != b

    def test_irregular_shape_properties(self):
        areas = QueryWorkload(query_size=0.02, seed=5).areas(10)
        for area in areas:
            assert len(area) == 10
            assert area.is_simple()
            assert area.mbr.area == pytest.approx(0.02, rel=1e-6)

    def test_convex_shape(self):
        areas = QueryWorkload(query_size=0.02, shape="convex", seed=7).areas(10)
        for area in areas:
            assert area.is_convex()
            assert area.mbr.area == pytest.approx(0.02, rel=1e-6)

    def test_rectangle_shape(self):
        areas = QueryWorkload(
            query_size=0.02, shape="rectangle", seed=9
        ).areas(10)
        for area in areas:
            assert len(area) == 4
            # Rectangle: own area equals MBR area equals query size.
            assert area.area == pytest.approx(0.02, rel=1e-6)
            assert area.mbr.area == pytest.approx(0.02, rel=1e-6)

    def test_areas_fit_in_space(self):
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for shape in ("irregular", "convex", "rectangle"):
            for area in QueryWorkload(
                query_size=0.32, shape=shape, seed=11
            ).areas(10):
                assert space.expanded(1e-9).contains_rect(area.mbr)

    def test_irregular_covers_less_than_mbr(self):
        # The whole point of the paper: the irregular polygon's own area is
        # well below its MBR's.
        areas = QueryWorkload(query_size=0.1, seed=13).areas(20)
        mean_ratio = sum(a.area / a.mbr.area for a in areas) / len(areas)
        assert mean_ratio < 0.75


class TestMakeQueryAreas:
    def test_wrapper(self):
        areas = make_query_areas(0.01, 4, seed=15)
        assert len(areas) == 4
        assert all(a.mbr.area == pytest.approx(0.01, rel=1e-6) for a in areas)
