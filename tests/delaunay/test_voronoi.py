"""Unit tests for the Voronoi diagram dual."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.delaunay.voronoi import VoronoiDiagram
from repro.workloads.generators import uniform_points

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestCellGeometry:
    def test_single_generator_cell_is_clip_box(self):
        vd = VoronoiDiagram([Point(0.5, 0.5)], clip=UNIT)
        cell = vd.cell(0)
        assert cell.polygon is not None
        assert cell.area == pytest.approx(1.0)

    def test_two_generators_split_by_bisector(self):
        vd = VoronoiDiagram([Point(0.25, 0.5), Point(0.75, 0.5)], clip=UNIT)
        assert vd.cell(0).area == pytest.approx(0.5)
        assert vd.cell(1).area == pytest.approx(0.5)

    def test_generator_inside_its_cell(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        for i in range(0, 200, 10):
            assert vd.cell(i).contains(uniform_200[i])

    def test_cells_tile_clip_box(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        assert vd.total_cell_area() == pytest.approx(1.0, rel=1e-6)

    def test_cells_interiors_disjoint(self):
        points = uniform_points(40, seed=12)
        vd = VoronoiDiagram(points, clip=UNIT)
        rng = random.Random(3)
        for _ in range(200):
            q = Point(rng.random(), rng.random())
            # A random probe must lie in exactly the nearest generator's
            # cell (ties on shared edges are boundary-inclusive).
            nearest = min(
                range(40), key=lambda i: points[i].squared_distance_to(q)
            )
            assert vd.cell(nearest).contains(q)

    def test_default_clip_covers_generators(self, uniform_200):
        vd = VoronoiDiagram(uniform_200)
        for p in uniform_200:
            assert vd.clip.contains_point(p)

    def test_hull_cells_flagged_unbounded(self):
        points = [Point(0.2, 0.2), Point(0.8, 0.2), Point(0.5, 0.8),
                  Point(0.5, 0.4)]
        vd = VoronoiDiagram(points, clip=UNIT)
        # The three outer generators have unbounded (clipped) cells.
        assert vd.cell(0).is_unbounded
        assert vd.cell(1).is_unbounded
        assert vd.cell(2).is_unbounded

    def test_cells_list(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        cells = vd.cells()
        assert len(cells) == 200
        assert all(cell.generator_index == i for i, cell in enumerate(cells))


class TestNearestGenerator:
    def test_matches_brute_force(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        rng = random.Random(17)
        for _ in range(100):
            q = Point(rng.random(), rng.random())
            got = vd.nearest_generator(q)
            best = min(
                range(200),
                key=lambda i: uniform_200[i].squared_distance_to(q),
            )
            assert uniform_200[got].squared_distance_to(
                q
            ) == uniform_200[best].squared_distance_to(q)

    def test_generator_maps_to_itself(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        for i in range(0, 200, 25):
            got = vd.nearest_generator(uniform_200[i])
            assert uniform_200[got] == uniform_200[i]


class TestDuplicateGenerators:
    def test_alias_shares_cell(self):
        points = [Point(0.25, 0.5), Point(0.75, 0.5), Point(0.25, 0.5)]
        vd = VoronoiDiagram(points, clip=UNIT)
        assert vd.cell(2).polygon == vd.cell(0).polygon
        assert vd.cell(2).generator_index == 2

    def test_total_area_ignores_aliases(self):
        points = [Point(0.25, 0.5), Point(0.75, 0.5), Point(0.25, 0.5)]
        vd = VoronoiDiagram(points, clip=UNIT)
        assert vd.total_cell_area() == pytest.approx(1.0)


class TestValidation:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            VoronoiDiagram([])

    def test_neighbors_delegate_to_triangulation(self, uniform_200):
        vd = VoronoiDiagram(uniform_200, clip=UNIT)
        assert vd.neighbors(0) == vd.triangulation.neighbors(0)
