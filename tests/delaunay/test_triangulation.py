"""Unit tests for the Bowyer–Watson Delaunay triangulation."""

import random

import pytest

from repro.geometry.point import Point
from repro.delaunay.triangulation import DelaunayTriangulation
from repro.workloads.generators import grid_points, uniform_points


class TestSmallConfigurations:
    def test_single_point(self):
        dt = DelaunayTriangulation([Point(0.5, 0.5)])
        assert dt.neighbors(0) == ()
        assert list(dt.triangles()) == []

    def test_two_points(self):
        dt = DelaunayTriangulation([Point(0, 0), Point(1, 1)])
        assert dt.neighbors(0) == (1,)
        assert dt.neighbors(1) == (0,)

    def test_three_points(self):
        dt = DelaunayTriangulation([Point(0, 0), Point(1, 0), Point(0, 1)])
        assert set(dt.neighbors(0)) == {1, 2}
        triangles = list(dt.triangles())
        assert len(triangles) == 1
        assert sorted(triangles[0]) == [0, 1, 2]

    def test_square_two_triangles(self):
        dt = DelaunayTriangulation(
            [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        )
        assert len(list(dt.triangles())) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DelaunayTriangulation([])


class TestDelaunayInvariant:
    @pytest.mark.parametrize("n,seed", [(50, 0), (150, 1), (150, 2)])
    def test_empty_circumcircle_uniform(self, n, seed):
        points = uniform_points(n, seed=seed)
        dt = DelaunayTriangulation(points)
        dt.check_delaunay_property()

    def test_empty_circumcircle_grid(self):
        # Cocircular degeneracies everywhere: the exact predicate's ties
        # must keep a consistent (still Delaunay) triangulation.
        points = grid_points(49)
        dt = DelaunayTriangulation(points)
        dt.check_delaunay_property()

    def test_empty_circumcircle_clustered(self):
        rng = random.Random(5)
        points = [Point(0.5 + rng.gauss(0, 0.001), 0.5 + rng.gauss(0, 0.001))
                  for _ in range(80)]
        dt = DelaunayTriangulation(points)
        dt.check_delaunay_property()


class TestAdjacencyStructure:
    def test_symmetry(self, uniform_200):
        dt = DelaunayTriangulation(uniform_200)
        for i in range(len(uniform_200)):
            for j in dt.neighbors(i):
                assert i in dt.neighbors(j)

    def test_no_self_neighbors(self, uniform_200):
        dt = DelaunayTriangulation(uniform_200)
        for i in range(len(uniform_200)):
            assert i not in dt.neighbors(i)

    def test_edge_count_bound(self, uniform_200):
        # Planar graph: |E| <= 3n - 6.
        dt = DelaunayTriangulation(uniform_200)
        edges = list(dt.edges())
        n = len(uniform_200)
        assert len(edges) <= 3 * n - 6

    def test_euler_formula(self, uniform_200):
        # For a triangulation of a point set with h hull points:
        # triangles = 2n - h - 2, edges = 3n - h - 3.
        from repro.geometry.polygon import convex_hull

        dt = DelaunayTriangulation(uniform_200)
        n = len(uniform_200)
        h = len(convex_hull(uniform_200))
        assert len(list(dt.triangles())) == 2 * n - h - 2
        assert len(list(dt.edges())) == 3 * n - h - 3

    def test_triangles_ccw(self, uniform_200):
        from repro.geometry.predicates import orientation, Orientation

        dt = DelaunayTriangulation(uniform_200)
        for a, b, c in dt.triangles():
            assert (
                orientation(uniform_200[a], uniform_200[b], uniform_200[c])
                is Orientation.COUNTERCLOCKWISE
            )

    def test_circumcenters_are_voronoi_vertices(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)]
        dt = DelaunayTriangulation(points)
        centers = dt.triangle_circumcenters()
        # Both triangles of the square share circumcentre (0.5, 0.5).
        for center in centers.values():
            assert center.x == pytest.approx(0.5)
            assert center.y == pytest.approx(0.5)


class TestDegenerateInputs:
    def test_all_collinear(self):
        points = [Point(float(i), 2.0 * i) for i in range(8)]
        dt = DelaunayTriangulation(points)
        assert list(dt.triangles()) == []
        # Chain adjacency keeps the graph connected.
        assert dt.neighbors(0) == (1,)
        assert dt.neighbors(3) == (2, 4)
        assert dt.neighbors(7) == (6,)

    def test_two_identical_points(self):
        dt = DelaunayTriangulation([Point(0.5, 0.5), Point(0.5, 0.5)])
        assert dt.neighbors(0) == (1,)
        assert dt.neighbors(1) == (1,) or dt.neighbors(1) == (0,)

    def test_duplicates_alias_canonical(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 0)]
        dt = DelaunayTriangulation(points)
        assert dt.alias_of[3] == 1
        # Copies form a clique and share the spatial neighbourhood.
        assert set(dt.neighbors(3)) - {1} == set(dt.neighbors(1)) - {3}
        assert 1 in dt.neighbors(3)
        assert 3 in dt.neighbors(1)
        # Spatial neighbours see both copies.
        assert 3 in dt.neighbors(0) and 1 in dt.neighbors(0)

    def test_duplicate_of_duplicate(self):
        points = [Point(0, 0)] * 3 + [Point(1, 1)]
        dt = DelaunayTriangulation(points)
        assert dt.alias_of[1] == 0
        assert dt.alias_of[2] == 0
        assert dt.canonical_count == 2

    def test_vertical_line(self):
        points = [Point(0.5, float(i)) for i in range(6)]
        dt = DelaunayTriangulation(points)
        assert dt.neighbors(2) == (1, 3)

    def test_shuffle_false_still_correct(self):
        points = uniform_points(60, seed=9)
        dt = DelaunayTriangulation(points, shuffle=False)
        dt.check_delaunay_property()

    def test_seed_changes_are_topology_neutral(self):
        points = uniform_points(80, seed=10)
        dt1 = DelaunayTriangulation(points, seed=0)
        dt2 = DelaunayTriangulation(points, seed=12345)
        for i in range(len(points)):
            assert set(dt1.neighbors(i)) == set(dt2.neighbors(i))


class TestFromXY:
    def test_from_xy(self):
        dt = DelaunayTriangulation.from_xy([0, 1, 0], [0, 0, 1])
        assert set(dt.neighbors(0)) == {1, 2}
