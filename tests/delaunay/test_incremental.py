"""Tests for incremental point insertion into the triangulation."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.delaunay.backends import PureDelaunayBackend
from repro.delaunay.triangulation import DelaunayTriangulation, InsertionResult
from repro.workloads.generators import uniform_points


class TestAddPoint:
    def test_returns_new_index(self):
        dt = DelaunayTriangulation(uniform_points(20, seed=211))
        result = dt.add_point(Point(0.5, 0.5))
        assert isinstance(result, InsertionResult)
        assert result.index == 20
        assert 20 in result.affected

    def test_matches_batch_rebuild(self):
        base = uniform_points(100, seed=213)
        extra = uniform_points(50, seed=214)
        incremental = DelaunayTriangulation(base)
        for p in extra:
            incremental.add_point(p)
        batch = DelaunayTriangulation(base + extra)
        for i in range(150):
            assert set(incremental.neighbors(i)) == set(batch.neighbors(i)), i

    def test_delaunay_property_preserved(self):
        dt = DelaunayTriangulation(uniform_points(60, seed=215))
        for p in uniform_points(30, seed=216):
            dt.add_point(p)
        dt.check_delaunay_property()

    def test_affected_set_is_honest(self):
        """Indices outside ``affected`` must keep their exact neighbour set."""
        dt = DelaunayTriangulation(uniform_points(120, seed=217))
        snapshot = {i: dt.neighbors(i) for i in range(120)}
        result = dt.add_point(Point(0.31, 0.77))
        for i in range(120):
            if i not in result.affected:
                assert dt.neighbors(i) == snapshot[i], i

    def test_affected_set_is_local(self):
        """A single insert into uniform data touches O(1) neighbourhoods."""
        dt = DelaunayTriangulation(uniform_points(500, seed=219))
        result = dt.add_point(Point(0.5, 0.5))
        assert len(result.affected) < 30

    def test_duplicate_insert(self):
        base = uniform_points(40, seed=221)
        dt = DelaunayTriangulation(base)
        result = dt.add_point(base[7])
        assert dt.alias_of[result.index] == 7
        assert 7 in dt.neighbors(result.index)
        assert result.index in dt.neighbors(7)
        batch = DelaunayTriangulation(base + [base[7]])
        for i in range(41):
            assert set(dt.neighbors(i)) == set(batch.neighbors(i)), i

    def test_insert_escaping_collinear_chain(self):
        line = [Point(float(i), 0.0) for i in range(5)]
        dt = DelaunayTriangulation(line)
        dt.add_point(Point(2.0, 3.0))
        batch = DelaunayTriangulation(line + [Point(2.0, 3.0)])
        for i in range(6):
            assert set(dt.neighbors(i)) == set(batch.neighbors(i)), i

    def test_insert_extending_collinear_chain(self):
        line = [Point(float(i), 0.0) for i in range(5)]
        dt = DelaunayTriangulation(line)
        dt.add_point(Point(7.0, 0.0))  # still collinear
        assert set(dt.neighbors(4)) == {3, 5}
        assert dt.neighbors(5) == (4,)

    def test_far_outside_point_rejected(self):
        dt = DelaunayTriangulation(uniform_points(20, seed=223))
        with pytest.raises(ValueError, match="too far outside"):
            dt.add_point(Point(1e12, 0.0))

    def test_point_on_hull_outside(self):
        # Insert beyond the current hull (but within the safe extent).
        dt = DelaunayTriangulation(uniform_points(50, seed=225))
        result = dt.add_point(Point(3.0, 3.0))
        batch = DelaunayTriangulation(
            uniform_points(50, seed=225) + [Point(3.0, 3.0)]
        )
        for i in range(51):
            assert set(dt.neighbors(i)) == set(batch.neighbors(i)), i

    # width=32: adversarial coordinates (0.0, ~1e-45 tiny values) without
    # the denormal-product underflow that sits outside the predicates'
    # documented validity domain (see repro.geometry.predicates).
    @settings(max_examples=20, deadline=None)
    @given(
        base_seed=st.integers(0, 500),
        n=st.integers(3, 60),
        inserts=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0, max_value=1.0, allow_nan=False, width=32
                ),
                st.floats(
                    min_value=0.0, max_value=1.0, allow_nan=False, width=32
                ),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    def test_incremental_equals_batch_property(self, base_seed, n, inserts):
        base = uniform_points(n, seed=base_seed)
        extra = [Point(x, y) for x, y in inserts]
        incremental = DelaunayTriangulation(base)
        for p in extra:
            incremental.add_point(p)
        batch = DelaunayTriangulation(base + extra)
        for i in range(n + len(extra)):
            assert set(incremental.neighbors(i)) == set(batch.neighbors(i))


class TestBackendIncremental:
    def test_neighbor_table_patched(self):
        backend = PureDelaunayBackend(uniform_points(80, seed=227))
        table_before = list(backend.neighbor_table())
        new_index = backend.add_point(Point(0.4, 0.4))
        table_after = backend.neighbor_table()
        assert len(table_after) == 81
        assert backend.size == 81
        # Patched entries match fresh neighbour reads everywhere.
        for i in range(81):
            assert table_after[i] == backend.neighbors(i), i
        # And the new point really is wired in.
        assert table_after[new_index]

    def test_add_point_without_table(self):
        backend = PureDelaunayBackend(uniform_points(30, seed=229))
        backend.add_point(Point(0.2, 0.9))
        assert backend.size == 31
        assert len(backend.neighbor_table()) == 31
