"""Unit tests for graph utilities over the Delaunay adjacency."""

import pytest

from repro.geometry.point import Point
from repro.delaunay.backends import PureDelaunayBackend
from repro.delaunay.graph import (
    average_degree,
    bfs_order,
    check_symmetry,
    connected_components,
    degree_histogram,
    edge_list,
    is_connected,
    reachable_without,
    shortest_hop_path,
)
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def backend():
    return PureDelaunayBackend(uniform_points(120, seed=21))


class TestConnectivity:
    def test_is_connected(self, backend):
        """Property 5: the Delaunay graph is connected."""
        assert is_connected(backend)

    def test_single_component(self, backend):
        components = connected_components(backend)
        assert len(components) == 1
        assert components[0] == list(range(120))

    def test_bfs_reaches_all(self, backend):
        order = bfs_order(backend, 0)
        assert sorted(order) == list(range(120))

    def test_bfs_starts_at_seed(self, backend):
        assert bfs_order(backend, 42)[0] == 42

    def test_bfs_with_expand_filter(self, backend):
        # Never expanding means only the seed is reported.
        order = bfs_order(backend, 0, expand=lambda i: False)
        assert order == [0]


class TestPaths:
    def test_path_endpoints(self, backend):
        path = shortest_hop_path(backend, 0, 100)
        assert path is not None
        assert path[0] == 0
        assert path[-1] == 100

    def test_path_steps_are_edges(self, backend):
        path = shortest_hop_path(backend, 3, 77)
        for a, b in zip(path, path[1:]):
            assert b in backend.neighbors(a)

    def test_trivial_path(self, backend):
        assert shortest_hop_path(backend, 5, 5) == [5]

    def test_path_between_neighbors(self, backend):
        neighbor = backend.neighbors(0)[0]
        assert shortest_hop_path(backend, 0, neighbor) == [0, neighbor]

    def test_blocked_path_returns_none(self):
        # A path graph: blocking the middle disconnects the ends.
        line = [Point(float(i), 0.0) for i in range(5)]
        backend = PureDelaunayBackend(line)
        reachable = reachable_without(backend, 0, blocked={2})
        assert reachable == {0, 1}


class TestReachability:
    def test_reachable_without_empty_block(self, backend):
        assert reachable_without(backend, 0, set()) == set(range(120))

    def test_seed_in_blocked_is_empty(self, backend):
        assert reachable_without(backend, 0, {0}) == set()


class TestDegrees:
    def test_histogram_totals(self, backend):
        histogram = degree_histogram(backend)
        assert sum(histogram.values()) == 120

    def test_average_degree_near_six(self):
        # Classical fact: interior Voronoi cells average six neighbours;
        # hull effects pull the global mean a little below.
        big = PureDelaunayBackend(uniform_points(800, seed=23))
        assert 5.0 < average_degree(big) < 6.0

    def test_edge_list_symmetric_count(self, backend):
        edges = edge_list(backend)
        total_degree = sum(len(backend.neighbors(i)) for i in range(120))
        assert len(edges) == total_degree // 2

    def test_check_symmetry_passes(self, backend):
        check_symmetry(backend)

    def test_check_symmetry_detects_violation(self):
        class Broken:
            size = 2

            def neighbors(self, i):
                return (1,) if i == 0 else ()

        with pytest.raises(AssertionError):
            check_symmetry(Broken())
