"""Property-based tests for the Delaunay/Voronoi substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.delaunay.backends import PureDelaunayBackend, ScipyDelaunayBackend
from repro.delaunay.graph import is_connected
from repro.delaunay.triangulation import DelaunayTriangulation

# Coarse-grid coordinates provoke many exact collinear/cocircular
# configurations — the adversarial regime for a triangulator.
grid_coordinate = st.integers(min_value=0, max_value=8).map(lambda v: v / 8.0)
grid_points_strategy = st.lists(
    st.builds(Point, grid_coordinate, grid_coordinate),
    min_size=1,
    max_size=25,
)

# width=32 keeps coordinates inside the robust predicates' documented
# validity domain (no denormal-product underflow) while still generating
# adversarial values like exact zeros and ~1e-45 epsilons.
continuous_points = st.lists(
    st.builds(
        Point,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=40,
)


class TestTriangulationProperties:
    @settings(max_examples=50, deadline=None)
    @given(continuous_points)
    def test_empty_circumcircle(self, points):
        dt = DelaunayTriangulation(points)
        dt.check_delaunay_property()

    @settings(max_examples=50, deadline=None)
    @given(grid_points_strategy)
    def test_empty_circumcircle_degenerate_grid(self, points):
        dt = DelaunayTriangulation(points)
        dt.check_delaunay_property()

    @settings(max_examples=50, deadline=None)
    @given(continuous_points)
    def test_adjacency_symmetric(self, points):
        dt = DelaunayTriangulation(points)
        for i in range(len(points)):
            for j in dt.neighbors(i):
                assert i in dt.neighbors(j)

    @settings(max_examples=50, deadline=None)
    @given(grid_points_strategy)
    def test_connected(self, points):
        """Property 5 of the paper on adversarial inputs."""
        backend = PureDelaunayBackend(points)
        assert is_connected(backend)

    @settings(max_examples=30, deadline=None)
    @given(continuous_points)
    def test_nearest_neighbor_is_voronoi_neighbor(self, points):
        """Property 2: each point's nearest other point is a Voronoi
        neighbour (via Property 6: the NN-graph is a Delaunay subgraph)."""
        distinct = list(dict.fromkeys(points))
        if len(distinct) < 2:
            return
        dt = DelaunayTriangulation(distinct)
        for i, p in enumerate(distinct):
            nearest = min(
                (j for j in range(len(distinct)) if j != i),
                key=lambda j: distinct[j].squared_distance_to(p),
            )
            nearest_distance = distinct[nearest].squared_distance_to(p)
            neighbor_distances = [
                distinct[j].squared_distance_to(p) for j in dt.neighbors(i)
            ]
            assert min(neighbor_distances) == nearest_distance


class TestBackendEquivalenceProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.integers(3, 60))
    def test_pure_equals_scipy_general_position(self, seed, n):
        """For points in general position the Delaunay triangulation is
        unique (paper Property 1), so the backends must agree exactly.
        Uniform random points are in general position with probability 1;
        exact cocircular degeneracies (where both backends remain valid but
        may pick different diagonals) and Qhull's float-tolerance artifacts
        on astronomically thin triangles are covered by the validity test
        below instead.
        """
        from repro.workloads.generators import uniform_points

        points = uniform_points(n, seed=seed)
        pure = PureDelaunayBackend(points)
        scipy_backend = ScipyDelaunayBackend(points)
        for i in range(len(points)):
            assert set(pure.neighbors(i)) == set(scipy_backend.neighbors(i))

    @settings(max_examples=30, deadline=None)
    @given(grid_points_strategy)
    def test_both_backends_connected_on_degenerate_input(self, points):
        """On cocircular grids the triangulations may differ, but both must
        stay valid neighbour structures: symmetric and connected."""
        for backend in (
            PureDelaunayBackend(points),
            ScipyDelaunayBackend(points),
        ):
            assert is_connected(backend)
            for i in range(len(points)):
                for j in backend.neighbors(i):
                    assert i in backend.neighbors(j)
