"""Unit tests for the pure and scipy Delaunay backends."""

import pytest

from repro.geometry.point import Point
from repro.delaunay.backends import (
    PureDelaunayBackend,
    ScipyDelaunayBackend,
    make_backend,
)
from repro.workloads.generators import clustered_points, uniform_points


class TestPureBackend:
    def test_size_and_name(self, uniform_200):
        backend = PureDelaunayBackend(uniform_200)
        assert backend.size == 200
        assert backend.name == "pure"

    def test_neighbors_nonempty(self, uniform_200):
        backend = PureDelaunayBackend(uniform_200)
        for i in range(200):
            assert len(backend.neighbors(i)) > 0

    def test_neighbor_table_matches_neighbors(self, uniform_200):
        backend = PureDelaunayBackend(uniform_200)
        table = backend.neighbor_table()
        assert len(table) == 200
        for i in range(200):
            assert table[i] == backend.neighbors(i)

    def test_neighbor_table_cached(self, uniform_200):
        backend = PureDelaunayBackend(uniform_200)
        assert backend.neighbor_table() is backend.neighbor_table()


class TestScipyBackend:
    def test_size_and_name(self, uniform_200):
        backend = ScipyDelaunayBackend(uniform_200)
        assert backend.size == 200
        assert backend.name == "scipy"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ScipyDelaunayBackend([])

    def test_single_point(self):
        backend = ScipyDelaunayBackend([Point(0.5, 0.5)])
        assert backend.neighbors(0) == ()

    def test_two_points(self):
        backend = ScipyDelaunayBackend([Point(0, 0), Point(1, 1)])
        assert backend.neighbors(0) == (1,)
        assert backend.neighbors(1) == (0,)

    def test_collinear_chain(self):
        points = [Point(float(i), float(i)) for i in range(5)]
        backend = ScipyDelaunayBackend(points)
        assert backend.neighbors(0) == (1,)
        assert backend.neighbors(2) == (1, 3)

    def test_duplicates(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)]
        backend = ScipyDelaunayBackend(points)
        # Copies are mutually adjacent and share the spatial neighbourhood.
        assert 3 in backend.neighbors(0)
        assert 0 in backend.neighbors(3)
        assert set(backend.neighbors(3)) - {0} == set(
            backend.neighbors(0)
        ) - {3}


class TestBackendAgreement:
    """The core substitution guarantee: both backends give identical
    neighbour sets, so query traversals are identical regardless of which
    one built the diagram."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_uniform_agreement(self, seed):
        points = uniform_points(150, seed=seed)
        pure = PureDelaunayBackend(points)
        scipy_backend = ScipyDelaunayBackend(points)
        for i in range(len(points)):
            assert set(pure.neighbors(i)) == set(scipy_backend.neighbors(i)), i

    def test_clustered_agreement(self):
        points = clustered_points(150, seed=3, clusters=5)
        pure = PureDelaunayBackend(points)
        scipy_backend = ScipyDelaunayBackend(points)
        for i in range(len(points)):
            assert set(pure.neighbors(i)) == set(scipy_backend.neighbors(i)), i

    def test_with_duplicates_agreement(self):
        points = uniform_points(50, seed=4)
        points += points[:10]  # 10 duplicates
        pure = PureDelaunayBackend(points)
        scipy_backend = ScipyDelaunayBackend(points)
        for i in range(len(points)):
            assert set(pure.neighbors(i)) == set(scipy_backend.neighbors(i)), i


class TestRegistry:
    def test_make_backend(self, uniform_200):
        assert make_backend("pure", uniform_200).name == "pure"
        assert make_backend("scipy", uniform_200).name == "scipy"

    def test_unknown_backend(self, uniform_200):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cgal", uniform_200)
