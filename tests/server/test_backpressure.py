"""Backpressure and load shedding: bounded admission, overload errors.

Three layers under test: the coalescer's bounded queue and drain
scheduling (unit), the server's ``overloaded`` wire behaviour with a
retry-after hint plus the shed-oldest-stream policy (end-to-end over
real sockets), and the protocol additions that carry it all
(``overloaded`` code, ``retry_after_ms``, the ``latency`` stats
section).
"""

import asyncio
import json
import socket

import pytest

from repro.core.database import SpatialDatabase
from repro.query.spec import KnnQuery, WindowQuery
from repro.server import (
    QueryClient,
    RemoteError,
    ServerThread,
)
from repro.server.coalescer import BatchCoalescer, CoalescerOverloaded
from repro.server.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def db():
    """A small prepared database shared by the module's tests."""
    return SpatialDatabase.from_points(
        uniform_points(500, seed=87), backend_kind="scipy"
    ).prepare()


def window(i: int) -> WindowQuery:
    """A distinct small window per index."""
    offset = (i % 9) * 0.01
    return WindowQuery((0.1 + offset, 0.2, 0.4 + offset, 0.5))


class TestCoalescerBounds:
    def test_constructor_rejects_queue_smaller_than_batch(self, db):
        with pytest.raises(ValueError):
            BatchCoalescer(db, max_batch=8, max_queue=4)

    def test_default_queue_is_eight_batches(self, db):
        coalescer = BatchCoalescer(db, max_batch=16)
        assert coalescer.max_queue == 128

    def test_full_queue_sheds_with_a_retry_hint(self, db):
        coalescer = BatchCoalescer(
            db, window_ms=10_000.0, max_batch=2, max_queue=4
        )

        async def run():
            # Enqueue synchronously in one event-loop turn: nothing can
            # drain in between, so the queue genuinely fills.
            futures = []
            shed = []
            for i in range(6):
                try:
                    futures.append(
                        coalescer.enqueue(window(i), client="c")
                    )
                except CoalescerOverloaded as exc:
                    shed.append(exc)
            records = await asyncio.gather(*futures)
            return records, shed

        records, shed = asyncio.run(run())
        # Admissions 0..3 fill the queue to max_queue; 4 and 5 shed.
        assert len(records) == 4
        assert len(shed) == 2
        for exc in shed:
            assert exc.retry_after_ms >= 1
            assert exc.pending == 4
        stats = coalescer.stats
        assert stats.shed_requests == 2
        assert stats.queue_peak == 4
        # The backlog drained in max_batch-sized FIFO prefixes.
        assert stats.batch_sizes == {2: 2}
        assert [r.ids for r in records] == [
            db.query(window(i)).ids() for i in range(4)
        ]

    def test_admission_wait_is_recorded_per_admitted_request(self, db):
        coalescer = BatchCoalescer(db, window_ms=5.0, max_batch=8)

        async def run():
            return await asyncio.gather(
                *(coalescer.submit(window(i)) for i in range(3))
            )

        asyncio.run(run())
        wait = coalescer.admission_wait
        assert wait.count == 3
        assert wait.max_ms < 10_000.0  # sanity: a real measurement

    def test_write_flushes_an_oversized_backlog_in_chunks(self, db):
        coalescer = BatchCoalescer(
            db, window_ms=10_000.0, max_batch=2, max_queue=16
        )
        marker = []

        async def run():
            futures = [
                coalescer.enqueue(window(i), client="c")
                for i in range(5)
            ]
            coalescer.apply_write(lambda: marker.append("wrote"))
            return await asyncio.gather(*futures)

        records = asyncio.run(run())
        assert marker == ["wrote"]
        assert len(records) == 5
        # All five pre-write reads flushed before the mutation ran, in
        # max_batch-sized batches (2 + 2 + 1), not one oversized batch.
        assert coalescer.stats.write_flushes == 1
        assert coalescer.stats.max_batch_size <= 2
        assert sum(coalescer.stats.batch_sizes.values()) == 3


def _raw_connection(server):
    """A raw NDJSON socket past the hello frame: ``(sock, reader)``."""
    sock = socket.create_connection(
        (server.host, server.port), timeout=30
    )
    reader = sock.makefile("rb")
    hello = json.loads(reader.readline())
    assert hello["type"] == "hello"
    return sock, reader


def _send(sock, frame) -> None:
    sock.sendall((json.dumps(frame) + "\n").encode())


class TestWireOverload:
    def test_pipelined_burst_sheds_with_retry_hint(self, db):
        requests = 200
        with ServerThread(
            db, window_ms=10_000.0, max_batch=2, max_queue=4
        ) as server:
            sock, reader = _raw_connection(server)
            try:
                burst = b"".join(
                    encode_frame(
                        {
                            "type": "query",
                            "id": i,
                            "spec": {
                                "kind": "window",
                                "rect": [0.1, 0.2, 0.4, 0.5],
                            },
                        }
                    )
                    for i in range(requests)
                )
                sock.sendall(burst)
                results, errors = [], []
                while len(results) + len(errors) < requests:
                    frame = json.loads(reader.readline())
                    if frame["type"] == "result":
                        results.append(frame)
                    elif frame["type"] == "error":
                        errors.append(frame)
                # Conservation: every request was answered exactly once,
                # and the bounded queue genuinely shed under the burst.
                assert len(results) + len(errors) == requests
                assert errors, "the burst never overflowed max_queue"
                assert results, "no request was admitted at all"
                for error in errors:
                    assert error["code"] == "overloaded"
                    assert error["retry_after_ms"] >= 1
                _send(sock, {"type": "stats"})
                stats = json.loads(reader.readline())
            finally:
                sock.close()
        assert stats["type"] == "stats"
        assert stats["coalescer"]["shed_requests"] == len(errors)
        assert stats["server"]["queries_shed"] == len(errors)
        assert stats["coalescer"]["queue_peak"] >= 4
        # The latency section reflects the admitted requests only.
        latency = stats["latency"]
        assert latency["admission_wait"]["count"] == len(results)
        assert latency["kinds"]["window"]["count"] == len(results)
        assert (
            latency["kinds"]["window"]["p99_ms"]
            >= latency["kinds"]["window"]["p50_ms"]
        )

    def test_overload_sheds_the_oldest_open_stream(self, db):
        with ServerThread(
            db, window_ms=10_000.0, max_batch=2, max_queue=4
        ) as server:
            victim = QueryClient(server.host, server.port)
            try:
                stream = victim.stream(
                    KnnQuery((0.5, 0.5), None), chunk_size=8
                )
                first_row = next(stream)
                assert first_row is not None

                # A second connection bursts past the admission bound,
                # which triggers the shed policy against the stream.
                sock, reader = _raw_connection(server)
                try:
                    sock.sendall(
                        b"".join(
                            encode_frame(
                                {
                                    "type": "query",
                                    "id": i,
                                    "spec": {
                                        "kind": "knn",
                                        "point": [0.5, 0.5],
                                        "k": 3,
                                    },
                                }
                            )
                            for i in range(100)
                        )
                    )
                    answered = 0
                    shed_errors = 0
                    while answered < 100:
                        frame = json.loads(reader.readline())
                        if frame["type"] in ("result", "error"):
                            answered += 1
                            if frame["type"] == "error":
                                shed_errors += 1
                    assert shed_errors >= 1
                    _send(sock, {"type": "stats"})
                    stats = json.loads(reader.readline())
                finally:
                    sock.close()
                assert stats["server"]["streams_shed"] == 1
                assert stats["server"]["streams_open"] == 0

                # The victim's next fetch surfaces the shed as an
                # 'overloaded' RemoteError carrying the backoff hint.
                with pytest.raises(RemoteError) as excinfo:
                    for _ in range(64):
                        next(stream)
                assert excinfo.value.code == "overloaded"
                assert excinfo.value.retry_after_ms >= 1
            finally:
                victim.close()


class TestProtocolAdditions:
    def test_error_frame_round_trips_retry_after(self):
        frame = error_frame(
            7, "overloaded", "queue full", retry_after_ms=25
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded["retry_after_ms"] == 25
        assert decoded["code"] == "overloaded"

    def test_plain_error_frames_omit_the_hint(self):
        frame = error_frame(7, "bad-request", "nope")
        assert "retry_after_ms" not in frame
        decode_frame(encode_frame(frame))  # still valid

    def test_negative_retry_after_is_rejected(self):
        frame = error_frame(
            7, "overloaded", "queue full", retry_after_ms=-1
        )
        with pytest.raises(ProtocolError):
            encode_frame(frame)

    def test_latency_section_rides_a_full_stats_response(self):
        frame = {
            "type": "stats",
            "server": {},
            "coalescer": {},
            "engine": {},
            "latency": {"admission_wait": {}, "kinds": {}},
        }
        decode_frame(encode_frame(frame))
        with pytest.raises(ProtocolError):
            decode_frame(
                json.dumps({"type": "stats", "latency": {}})
            )
