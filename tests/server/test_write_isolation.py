"""Socket-level MVCC: write frames vs open streams and later reads.

The contract under test (docs/SERVER.md, "Write frames"): a chunked
stream answers from the database version at its *admission* — the moment
the server read its ``query`` frame — for every chunk, no matter how
many writes land between ``next`` continuations; while any query
admitted after a ``write`` acknowledgement observes the mutation.  All
over real sockets, with the writes arriving from a second connection.
"""

import json
import math
import socket

import pytest

from repro.core.database import SpatialDatabase
from repro.query.spec import KnnQuery, WindowQuery
from repro.server import QueryClient, RemoteError, ServerThread
from repro.workloads.generators import uniform_points

N_POINTS = 400
CENTER = (0.5, 0.5)


@pytest.fixture()
def db():
    """A fresh database per test — these tests mutate it."""
    return SpatialDatabase.from_points(
        uniform_points(N_POINTS, seed=61), backend_kind="pure"
    ).prepare()


@pytest.fixture()
def server(db):
    with ServerThread(db, window_ms=2.0) as thread:
        yield thread


def _ranked(db, q=CENTER):
    """Live row ids by distance from ``q`` (the model ranking)."""
    deleted = db.store.deleted_rows
    qx, qy = q
    return sorted(
        (r for r in range(len(db.store)) if r not in deleted),
        key=lambda r: (
            (db.point(r).x - qx) ** 2 + (db.point(r).y - qy) ** 2,
            r,
        ),
    )


class TestSnapshotStreams:
    def test_stream_pins_admission_version_across_writes(self, db, server):
        """The acceptance scenario: open stream, write from a second
        connection, every chunk stays admission-time, post-write queries
        see the mutation."""
        reader = QueryClient(server.host, server.port)
        writer = QueryClient(server.host, server.port)
        try:
            stream = reader.stream(KnnQuery(CENTER, None), chunk_size=20)
            emitted = [next(stream) for _ in range(10)]

            # A row the stream has NOT reached yet (rank ~30) dies, and
            # a brand-new point lands touching the query center (it
            # would rank first if the stream could see it).
            victim = _ranked(db)[30]
            assert victim not in emitted
            ack = writer.delete(victim)
            assert ack.rows == [victim]
            new_row = writer.insert(
                CENTER[0] + 1e-7, CENTER[1] + 1e-7
            ).rows[0]
            assert new_row == N_POINTS

            rest = list(stream)  # drain to exhaustion
            rows = emitted + rest
            # Admission-time results exactly: all N_POINTS original rows
            # (the tombstoned victim included), the new row absent.
            assert victim in rest
            assert new_row not in rows
            assert sorted(rows) == list(range(N_POINTS))

            # Post-write admission from either connection sees the
            # mutation: the new row is the 1-NN, the victim is gone.
            for c in (reader, writer):
                got = c.query(KnnQuery(CENTER, 5)).ids
                assert got[0] == new_row
                assert victim not in got
        finally:
            reader.close()
            writer.close()

    def test_chunk_results_match_pre_write_ranking(self, db, server):
        """Every chunk equals the admission-time ranking, element for
        element — not just set-wise."""
        before = _ranked(db)
        with QueryClient(server.host, server.port) as reader, QueryClient(
            server.host, server.port
        ) as writer:
            stream = reader.stream(KnnQuery(CENTER, None), chunk_size=16)
            got = [next(stream) for _ in range(8)]
            for i in range(3):
                writer.insert(0.5 + (i + 1) * 1e-6, 0.5)
                got.extend(next(stream) for _ in range(16))
            assert got == before[: len(got)]

    def test_two_streams_pin_two_different_versions(self, db, server):
        """Streams admitted on either side of a write disagree exactly
        by the write — concurrent snapshots at distinct versions."""
        with QueryClient(server.host, server.port) as a, QueryClient(
            server.host, server.port
        ) as b:
            old = a.stream(KnnQuery(CENTER, None), chunk_size=10)
            next(old)  # materialised at admission
            new_row = b.insert(*CENTER).rows[0]
            young = b.stream(KnnQuery(CENTER, None), chunk_size=10)
            young_rows = [next(young) for _ in range(10)]
            assert young_rows[0] == new_row
            old_rows = [next(old) for _ in range(20)]
            assert new_row not in old_rows
            old.abandon()
            young.abandon()

    def test_read_your_writes_same_connection(self, db, server):
        with QueryClient(server.host, server.port) as client:
            rect = (0.9991, 0.9991, 0.9999, 0.9999)
            assert client.query(WindowQuery(rect)).ids == []
            row = client.insert(0.9995, 0.9995).rows[0]
            assert client.query(WindowQuery(rect)).ids == [row]
            client.delete(row)
            assert client.query(WindowQuery(rect)).ids == []

    def test_ack_carries_version_and_live_count(self, db, server):
        with QueryClient(server.host, server.port) as client:
            v0 = db.version
            ack = client.extend([(0.31, 0.77), (0.77, 0.31)])
            assert ack.op == "extend"
            assert ack.rows == [N_POINTS, N_POINTS + 1]
            assert ack.version == db.version > v0
            assert ack.points == N_POINTS + 2
            ack = client.delete(N_POINTS)
            assert ack.op == "delete" and ack.points == N_POINTS + 1
            assert client.stats()["server"]["writes_total"] == 2


class TestWriteFaults:
    """Fault injection on the write path: stable codes, no state damage."""

    def _raw(self, server):
        sock = socket.create_connection(
            (server.host, server.port), timeout=5.0
        )
        reader = sock.makefile("rb")
        reader.readline()  # hello
        return sock, reader

    def _roundtrip(self, sock, reader, frame) -> dict:
        sock.sendall(json.dumps(frame).encode() + b"\n")
        return json.loads(reader.readline())

    def test_nan_insert_rejected_without_mutation(self, db, server):
        sock, reader = self._raw(server)
        v0, size0 = db.version, len(db.store)
        response = self._roundtrip(
            sock,
            reader,
            {"type": "insert", "id": 1, "x": float("nan"), "y": 0.5},
        )
        assert response["type"] == "error"
        assert response["code"] == "bad-frame"
        assert (db.version, len(db.store)) == (v0, size0)
        sock.close()

    def test_infinite_extend_rejected_without_mutation(self, db, server):
        sock, reader = self._raw(server)
        v0 = db.version
        response = self._roundtrip(
            sock,
            reader,
            {
                "type": "extend",
                "id": 2,
                "points": [[0.5, 0.5], [math.inf, 0.5]],
            },
        )
        assert response["code"] == "bad-frame"
        assert db.version == v0
        sock.close()

    def test_oversized_extend_rejected(self, db, server):
        from repro.server.protocol import MAX_WRITE_POINTS

        sock, reader = self._raw(server)
        v0 = db.version
        response = self._roundtrip(
            sock,
            reader,
            {
                "type": "extend",
                "id": 3,
                "points": [[0.5, 0.5]] * (MAX_WRITE_POINTS + 1),
            },
        )
        assert response["code"] == "bad-request"
        assert db.version == v0
        sock.close()

    def test_unknown_and_double_delete_are_bad_requests(self, db, server):
        with QueryClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.delete(10_000_000)
            assert excinfo.value.code == "bad-request"
            client.delete(3)
            with pytest.raises(RemoteError) as excinfo:
                client.delete(3)
            assert excinfo.value.code == "bad-request"
            assert db.store.is_deleted(3)
            assert db.store.deleted_count == 1

    def test_disconnect_mid_write_leaves_store_untouched(self, db, server):
        """A partial (unterminated) write frame followed by a vanishing
        client must not mutate anything."""
        sock = socket.create_connection(
            (server.host, server.port), timeout=5.0
        )
        reader = sock.makefile("rb")
        reader.readline()  # hello
        v0, size0 = db.version, len(db.store)
        partial = b'{"type": "insert", "id": 9, "x": 0.4, "y": 0.'
        sock.sendall(partial)  # no newline: the frame never completes
        sock.close()
        with QueryClient(server.host, server.port) as client:
            assert client.query(KnnQuery(CENTER, 1)).ids  # server alive
        assert (db.version, len(db.store)) == (v0, size0)

    def test_malformed_write_payloads(self, db, server):
        cases = [
            {"type": "insert", "id": 1, "x": "0.5", "y": 0.5},
            {"type": "insert", "id": 2, "y": 0.5},
            {"type": "extend", "id": 3, "points": []},
            {"type": "extend", "id": 4, "points": [[0.5]]},
            {"type": "delete", "id": 5, "row": -1},
            {"type": "delete", "id": 6, "row": "7"},
        ]
        sock, reader = self._raw(server)
        v0 = db.version
        for frame in cases:
            response = self._roundtrip(sock, reader, frame)
            assert response["type"] == "error", frame
            assert response["code"] == "bad-frame", frame
        assert db.version == v0
        sock.close()
