"""End-to-end tests of the NDJSON query server over real sockets."""

import json
import socket
import time

import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.polygon import Polygon
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)
from repro.server import (
    ProtocolError,
    QueryClient,
    RemoteError,
    ServerThread,
)
from repro.workloads.generators import uniform_points

N_POINTS = 1200


@pytest.fixture(scope="module")
def db():
    """One prepared database serving the whole module."""
    return SpatialDatabase.from_points(
        uniform_points(N_POINTS, seed=91), backend_kind="scipy"
    ).prepare()


@pytest.fixture(scope="module")
def server(db):
    """One ServerThread shared by the module's tests."""
    with ServerThread(db, window_ms=2.0) as thread:
        yield thread


@pytest.fixture()
def client(server):
    """A fresh blocking client per test."""
    with QueryClient(server.host, server.port) as c:
        yield c


def wait_until(predicate, timeout=5.0):
    """Poll ``predicate`` until true (or fail after ``timeout`` seconds)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


class TestQueries:
    def test_hello_and_every_query_kind(self, db, client):
        assert client.hello["points"] == N_POINTS
        specs = [
            AreaQuery(Polygon([(0.2, 0.2), (0.7, 0.3), (0.45, 0.8)])),
            WindowQuery((0.1, 0.1, 0.6, 0.5)),
            KnnQuery((0.5, 0.5), 7),
            NearestQuery((0.9, 0.9)),
            UnionQuery(
                (
                    WindowQuery((0.1, 0.1, 0.3, 0.3)),
                    WindowQuery((0.25, 0.25, 0.45, 0.45)),
                )
            ),
            DifferenceQuery(
                (
                    WindowQuery((0.0, 0.0, 0.5, 0.5)),
                    WindowQuery((0.2, 0.2, 0.4, 0.4)),
                )
            ),
        ]
        for spec in specs:
            remote = client.query(spec)
            assert remote.ids == db.query(spec).ids(), spec.describe()
            assert remote.stats["result_size"] == len(remote.ids)

    def test_explain_passthrough(self, client):
        spec = WindowQuery((0.2, 0.2, 0.5, 0.5))
        remote = client.query(spec, explain=True)
        assert remote.explain is not None
        assert "method" in remote.explain  # the rendered planner table
        assert client.query(spec).explain is None  # only on request

    def test_projections_cross_the_wire(self, db, client):
        points_spec = WindowQuery((0.3, 0.3, 0.6, 0.6), select="points")
        stream = client.stream(points_spec, chunk_size=16)
        rows = list(stream)
        assert rows == [
            [p.x, p.y] for p in db.query(points_spec).points()
        ]
        distance_spec = KnnQuery((0.5, 0.5), 5, select="distances")
        stream = client.stream(distance_spec, chunk_size=4)
        assert list(stream) == db.query(distance_spec).distances()

    def test_stats_frame_shape(self, client):
        client.query(WindowQuery((0.4, 0.4, 0.5, 0.5)))
        stats = client.stats()
        assert stats["server"]["requests_total"] >= 1
        assert stats["coalescer"]["batches"] >= 1
        assert stats["engine"]["batches"] >= 1
        assert stats["engine"]["total_queries"] >= 1


class TestStreaming:
    def test_unbounded_knn_chunks_with_continuation(self, db, client):
        spec = KnnQuery((0.4, 0.6), None)
        stream = client.stream(spec, chunk_size=10)
        rows = []
        for row in stream:
            rows.append(row)
            if len(rows) == 35:
                break
        assert rows == db.query(KnnQuery((0.4, 0.6), 35)).ids()
        assert stream.chunks_received == 4  # 10+10+10, then 5 of the 4th
        assert stream.examined == 40  # four chunks of 10 produced
        stream.close()
        assert stream.cancelled

    def test_exact_multiple_ends_with_empty_done_chunk(self, db, client):
        # k=20 over chunk_size=10: two full chunks, then an empty done
        spec = KnnQuery((0.3, 0.3), 20)
        stream = client.stream(spec, chunk_size=10)
        assert list(stream) == db.query(spec).ids()
        assert stream.done
        assert stream.chunks_received == 3

    def test_stream_of_bounded_spec_matches_eager(self, db, client):
        spec = WindowQuery((0.2, 0.2, 0.8, 0.8), limit=33)
        assert list(client.stream(spec, chunk_size=8)) == db.query(spec).ids()

    def test_cancel_frees_the_request_id(self, server, client):
        spec = KnnQuery((0.5, 0.5), None)
        stream = client.stream(spec, chunk_size=5)
        stream.close()
        assert server.server.active_streams == 0
        # the connection can immediately open another stream
        assert len(list(client.stream(KnnQuery((0.5, 0.5), 3)))) == 3

    def test_abandoned_stream_is_cancelled_by_the_finalizer(
        self, db, server, client
    ):
        """``break`` + garbage collection must free the server-side
        stream and the request id, not leak them until disconnect."""
        import gc

        for row in client.stream(KnnQuery((0.5, 0.5), None), chunk_size=4):
            break  # the documented abandon-by-break pattern
        gc.collect()
        wait_until(lambda: server.server.active_streams == 0)
        # the connection is still perfectly usable: the lazy cancel's
        # ack is reconciled in passing by the next response read
        spec = WindowQuery((0.35, 0.35, 0.65, 0.65))
        assert client.query(spec).ids == db.query(spec).ids()
        assert client._unacked_cancels == set()

    def test_disconnect_mid_stream_cancels_server_side(self, db, server):
        """Vanishing clients must not leak half-consumed iterators."""
        metrics = server.server.metrics
        cancelled_before = metrics["streams_cancelled"]
        client = QueryClient(server.host, server.port)
        stream = client.stream(KnnQuery((0.52, 0.48), None), chunk_size=8)
        assert stream.examined == 8
        assert server.server.active_streams == 1
        # drop the connection without cancel — like a crashed client
        client.close()
        wait_until(lambda: server.server.active_streams == 0)
        wait_until(
            lambda: metrics["streams_cancelled"] == cancelled_before + 1
        )
        # the underlying lazy iterator was torn down: the server is idle
        # and later queries are unaffected
        with QueryClient(server.host, server.port) as probe:
            assert probe.query(WindowQuery((0.4, 0.4, 0.6, 0.6))).ids == (
                db.query(WindowQuery((0.4, 0.4, 0.6, 0.6))).ids()
            )


class TestErrors:
    def test_bad_spec_is_per_request(self, db, client):
        degenerate = AreaQuery(
            Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)])
        )
        with pytest.raises(RemoteError) as excinfo:
            client.query(degenerate)
        assert excinfo.value.code == "bad-spec"
        # the connection survives and still answers
        spec = WindowQuery((0.1, 0.1, 0.2, 0.2))
        assert client.query(spec).ids == db.query(spec).ids()

    def test_unknown_stream_id_rejected(self, client):
        client._send_frame({"type": "next", "id": 4242})
        with pytest.raises(RemoteError) as excinfo:
            client._read_response(4242)
        assert excinfo.value.code == "bad-request"

    def test_malformed_line_answered_with_error_frame(self, server):
        raw = socket.create_connection(
            (server.host, server.port), timeout=5.0
        )
        reader = raw.makefile("rb")
        hello = json.loads(reader.readline())
        assert hello["type"] == "hello"
        raw.sendall(b"this is not json\n")
        error = json.loads(reader.readline())
        assert error["type"] == "error"
        assert error["code"] == "bad-frame"
        # connection stays open for well-formed frames afterwards
        raw.sendall(b'{"type": "stats"}\n')
        assert json.loads(reader.readline())["type"] == "stats"
        raw.close()

    def test_duplicate_inflight_id_rejected(self, server):
        raw = socket.create_connection(
            (server.host, server.port), timeout=5.0
        )
        reader = raw.makefile("rb")
        json.loads(reader.readline())  # hello
        open_stream = {
            "type": "query",
            "id": 7,
            "spec": {"kind": "knn", "point": [0.5, 0.5]},
            "stream": True,
            "chunk_size": 4,
        }
        raw.sendall(json.dumps(open_stream).encode() + b"\n")
        assert json.loads(reader.readline())["type"] == "chunk"
        duplicate = {
            "type": "query",
            "id": 7,
            "spec": {"kind": "nearest", "point": [0.1, 0.1]},
        }
        raw.sendall(json.dumps(duplicate).encode() + b"\n")
        error = json.loads(reader.readline())
        assert error["type"] == "error"
        assert error["code"] == "bad-request"
        raw.close()

    def test_inflight_limit_enforced(self, db):
        with ServerThread(db, max_inflight=2) as small:
            with QueryClient(small.host, small.port) as c:
                streams = [
                    c.stream(KnnQuery((0.5, 0.5), None), chunk_size=2)
                    for _ in range(2)
                ]
                with pytest.raises(RemoteError) as excinfo:
                    c.query(WindowQuery((0.1, 0.1, 0.2, 0.2)))
                assert excinfo.value.code == "too-many-requests"
                for stream in streams:
                    stream.close()
                # capacity is released by cancellation
                spec = WindowQuery((0.1, 0.1, 0.2, 0.2))
                assert c.query(spec).ids == db.query(spec).ids()

    def test_client_rejects_protocol_mismatch(self, db, monkeypatch):
        import repro.server.app as app_module

        monkeypatch.setattr(app_module, "PROTOCOL_VERSION", 2)
        with ServerThread(db) as future_server:
            with pytest.raises(ProtocolError, match="protocol"):
                QueryClient(future_server.host, future_server.port)


class TestSnapshotServing:
    def test_round_trip_snapshot_serves_identical_results(
        self, db, tmp_path
    ):
        """`save_database` -> `load_database` -> serve: the satellite
        round trip, including the extensionless-path fix."""
        from repro.io.persist import load_database, save_database

        written = save_database(tmp_path / "served_snapshot", db)
        assert written.endswith(".npz")
        restored = load_database(tmp_path / "served_snapshot", prepare=True)
        assert len(restored) == len(db)
        specs = [
            WindowQuery((0.15, 0.2, 0.55, 0.6)),
            KnnQuery((0.42, 0.58), 9),
            AreaQuery(Polygon([(0.3, 0.3), (0.8, 0.35), (0.5, 0.9)])),
        ]
        with ServerThread(restored) as snap_server:
            with QueryClient(snap_server.host, snap_server.port) as c:
                for spec in specs:
                    assert c.query(spec).ids == db.query(spec).ids()
