"""End-to-end live queries over real sockets.

The acceptance scenario of the subscription subsystem: subscriber
connections register standing region and kNN queries, a separate writer
connection applies inserts, deletes, and moves, and every pushed
``notify`` delta must compose to exactly the brute-force re-execution
of the spec on the post-write database — in version order, per
subscription — while disconnects and unsubscribes free all server-side
state.
"""

import time

import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.polygon import Polygon
from repro.query.spec import AreaQuery, KnnQuery, UnionQuery, WindowQuery
from repro.server import QueryClient, RemoteError, ServerThread
from repro.workloads.generators import moving_object_steps, uniform_points

N_POINTS = 300


@pytest.fixture()
def db():
    """A fresh mutable database per test (pure backend: incremental)."""
    return SpatialDatabase.from_points(
        uniform_points(N_POINTS, seed=71), backend_kind="pure"
    ).prepare()


@pytest.fixture()
def server(db):
    with ServerThread(db, window_ms=2.0) as thread:
        yield thread


def wait_until(predicate, timeout=5.0):
    """Poll ``predicate`` until true (or fail after ``timeout`` seconds)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


class _Mirror:
    """A client-side replica maintained purely from pushed deltas."""

    def __init__(self, subscription, spec):
        self.subscription = subscription
        self.spec = spec
        self.rows = set(subscription.ids)
        self.version = subscription.version
        self.notified = 0

    def apply(self, note):
        """Fold one notification in, checking order and disjointness."""
        assert note.version > self.version, "stale or reordered delta"
        assert not set(note.added) & self.rows
        assert set(note.removed) <= self.rows
        self.rows -= set(note.removed)
        self.rows |= set(note.added)
        self.version = note.version
        self.notified += 1


class TestAcceptance:
    def test_region_and_knn_subscribers_track_a_writer_exactly(
        self, db, server
    ):
        """Two subscribers (region + kNN) and one writer: every write's
        deltas, applied in arrival order, equal brute-force
        re-execution on the post-write database."""
        region_client = QueryClient(server.host, server.port)
        knn_client = QueryClient(server.host, server.port)
        writer = QueryClient(server.host, server.port)
        try:
            region_specs = [
                WindowQuery((0.25, 0.25, 0.6, 0.6)),
                AreaQuery(
                    Polygon([(0.1, 0.1), (0.85, 0.2), (0.5, 0.9)])
                ),
            ]
            knn_specs = [KnnQuery((0.5, 0.5), 6), KnnQuery((0.3, 0.7), 4)]
            mirrors = {}
            for client, specs in (
                (region_client, region_specs),
                (knn_client, knn_specs),
            ):
                for spec in specs:
                    subscription = client.subscribe(spec)
                    assert subscription.ids == writer.query(spec).ids
                    mirrors[(client, subscription.id)] = _Mirror(
                        subscription, spec
                    )

            objects = uniform_points(6, seed=73)
            rows = list(writer.extend([(p.x, p.y) for p in objects]).rows)
            writer.delete(rows[0])
            rows[0] = writer.insert(0.5001, 0.4999).rows[0]
            for index, _, new in moving_object_steps(
                objects, 20, seed=79, speed=0.15
            ):
                writer.delete(rows[index])
                rows[index] = writer.insert(*new).rows[0]
            # Targeted writes so every subscription sees >= 1 delta.
            for x, y in [(0.5, 0.5), (0.3, 0.7), (0.4, 0.4)]:
                landed = writer.insert(x, y).rows[0]
                writer.delete(landed)

            for client in (region_client, knn_client):
                for note in client.notifications(timeout=2.0):
                    mirrors[(client, note.subscription_id)].apply(note)

            for (client, _), mirror in mirrors.items():
                expected = writer.query(mirror.spec).ids
                assert mirror.rows == set(expected), (
                    f"{mirror.spec.describe()} drifted from brute force"
                )
                assert mirror.notified > 0
                assert mirror.version <= db.version
        finally:
            region_client.close()
            knn_client.close()
            writer.close()

    def test_notifications_arrive_in_version_order_per_subscription(
        self, db, server
    ):
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                subscription = subscriber.subscribe(
                    WindowQuery((0.4, 0.4, 0.6, 0.6))
                )
                expected_versions = []
                for i in range(5):
                    ack = writer.insert(0.45 + i * 0.02, 0.5)
                    expected_versions.append(ack.version)
                notes = subscriber.notifications(timeout=2.0)
                got = [n.version for n in notes]
                assert got == expected_versions
                assert all(
                    n.subscription_id == subscription.id for n in notes
                )

    def test_initial_ids_atomic_with_concurrent_writes(self, db, server):
        """Every row is either in the initial ids or arrives as a delta
        — never both, never neither."""
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                writer.insert(0.5, 0.5)
                subscription = subscriber.subscribe(
                    WindowQuery((0.0, 0.0, 1.0, 1.0))
                )
                writer.insert(0.51, 0.51)
                notes = subscriber.notifications(timeout=2.0)
                seen = set(subscription.ids)
                for note in notes:
                    assert not set(note.added) & seen
                    seen |= set(note.added)
                assert seen == set(
                    writer.query(WindowQuery((0.0, 0.0, 1.0, 1.0))).ids
                )


class TestLifecycle:
    def test_disconnect_frees_registry_and_routes(self, db, server):
        client = QueryClient(server.host, server.port)
        client.subscribe(WindowQuery((0.1, 0.1, 0.9, 0.9)))
        client.subscribe(KnnQuery((0.5, 0.5), 5))
        assert server.server.active_subscriptions == 2
        client.close()
        wait_until(lambda: server.server.active_subscriptions == 0)
        assert server.server.registry.active == 0
        assert server.server._routes == {}
        assert server.server.metrics["subscriptions_closed"] == 2

    def test_unsubscribe_mid_notification_orders_ack_last(self, db, server):
        """Notifies already produced are delivered before the
        ``unsubscribed`` ack, and the ack's count matches them."""
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                subscription = subscriber.subscribe(
                    WindowQuery((0.4, 0.4, 0.6, 0.6))
                )
                writer.insert(0.5, 0.45)
                writer.insert(0.5, 0.55)
                # Unsubscribe without draining: the pushed notifies are
                # buffered by the client while awaiting the ack.
                count = subscriber.unsubscribe(subscription)
                assert count == 2
                buffered = subscriber.notifications()
                assert len(buffered) == 2
                # After the ack, further writes push nothing.
                writer.insert(0.5, 0.5)
                assert subscriber.notifications(timeout=0.3) == []
        assert server.server.registry.active == 0

    def test_reinsert_on_tombstone_is_single_added_delta(self, db, server):
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                spec = WindowQuery((0.2, 0.2, 0.8, 0.8))
                subscription = subscriber.subscribe(spec)
                victim = subscription.ids[0]
                x, y = db.store.coords(victim)
                writer.delete(victim)
                reborn = writer.insert(x, y).rows[0]
                notes = subscriber.notifications(timeout=2.0)
                assert [(n.added, n.removed) for n in notes] == [
                    ([], [victim]),
                    ([reborn], []),
                ]

    def test_unsubscribing_one_keeps_the_other_live(self, db, server):
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                dropped = subscriber.subscribe(
                    WindowQuery((0.4, 0.4, 0.6, 0.6))
                )
                kept = subscriber.subscribe(
                    WindowQuery((0.45, 0.45, 0.55, 0.55))
                )
                dropped.unsubscribe()
                writer.insert(0.5, 0.5)
                notes = subscriber.notifications(timeout=2.0)
                assert [n.subscription_id for n in notes] == [kept.id]


class TestErrors:
    def test_duplicate_subscription_id_rejected(self, db, server):
        with QueryClient(server.host, server.port) as client:
            subscription = client.subscribe(WindowQuery((0, 0, 0.5, 0.5)))
            from repro.query.serialize import spec_to_dict

            client._send_frame(
                {
                    "type": "subscribe",
                    "id": subscription.id,
                    "spec": spec_to_dict(WindowQuery((0, 0, 1, 1))),
                }
            )
            with pytest.raises(RemoteError) as excinfo:
                client._read_response(subscription.id)
            assert excinfo.value.code == "bad-request"

    def test_unsubscribe_unknown_id_rejected(self, db, server):
        with QueryClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.unsubscribe(99)
            assert excinfo.value.code == "bad-request"

    def test_non_subscribable_specs_rejected_as_bad_spec(self, db, server):
        with QueryClient(server.host, server.port) as client:
            for spec in [
                KnnQuery((0.5, 0.5), None),
                UnionQuery(
                    (
                        WindowQuery((0, 0, 0.5, 0.5)),
                        WindowQuery((0.5, 0.5, 1, 1)),
                    )
                ),
            ]:
                with pytest.raises(RemoteError) as excinfo:
                    client.subscribe(spec)
                assert excinfo.value.code == "bad-spec"
            # The connection survives rejections and can still subscribe.
            assert client.subscribe(WindowQuery((0, 0, 1, 1))).ids


class TestStats:
    def test_stats_frame_reports_subscription_counters(self, db, server):
        with QueryClient(server.host, server.port) as subscriber:
            with QueryClient(server.host, server.port) as writer:
                subscriber.subscribe(WindowQuery((0.4, 0.4, 0.6, 0.6)))
                subscriber.subscribe(KnnQuery((0.5, 0.5), 4))
                writer.insert(0.5, 0.5)
                subscriber.notifications(timeout=2.0)
                stats = subscriber.stats()
                live = stats["subscriptions"]
                assert live["active"] == 2
                assert live["registered_total"] == 2
                assert live["writes"] == 1
                assert 1 <= live["evaluations"] <= 2
                assert live["notifications"] >= 1
                coalescer = stats["coalescer"]
                assert coalescer["subscriptions"] == 2
                assert (
                    coalescer["notifications"] == live["notifications"]
                )
                assert (
                    coalescer["subscription_fanout"] == live["fanout"]
                )
                assert stats["server"]["subscriptions_opened"] == 2
