"""Admission-queue semantics of the cross-client batch coalescer."""

import asyncio

import pytest

from repro.core.database import SpatialDatabase
from repro.core.exceptions import InvalidQueryAreaError
from repro.geometry.polygon import Polygon
from repro.query.spec import KnnQuery, WindowQuery
from repro.server.coalescer import BatchCoalescer
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def db():
    """A small prepared database shared by the module's tests."""
    return SpatialDatabase.from_points(
        uniform_points(400, seed=31), backend_kind="scipy"
    ).prepare()


def window(i: int) -> WindowQuery:
    """A distinct small window per index."""
    offset = (i % 7) * 0.01
    return WindowQuery((0.2 + offset, 0.2, 0.5 + offset, 0.5))


class TestFlushTriggers:
    def test_window_timer_coalesces_concurrent_submits(self, db):
        coalescer = BatchCoalescer(db, window_ms=20.0, max_batch=100)

        async def run():
            return await asyncio.gather(
                coalescer.submit(window(0), client="a"),
                coalescer.submit(window(1), client="b"),
                coalescer.submit(window(2), client="c"),
            )

        records = asyncio.run(run())
        assert [r.ids for r in records] == [
            db.query(window(i)).ids() for i in range(3)
        ]
        stats = coalescer.stats
        assert stats.batches == 1
        assert stats.batch_sizes == {3: 1}
        assert stats.coalesced_batches == 1
        assert stats.multi_client_batches == 1
        assert stats.window_flushes == 1
        assert stats.mean_batch_size == 3.0

    def test_full_queue_flushes_without_waiting(self, db):
        coalescer = BatchCoalescer(db, window_ms=10_000.0, max_batch=2)

        async def run():
            return await asyncio.wait_for(
                asyncio.gather(
                    coalescer.submit(window(0), client="a"),
                    coalescer.submit(window(1), client="a"),
                ),
                timeout=5.0,  # must not wait out the 10-second window
            )

        records = asyncio.run(run())
        assert len(records) == 2
        assert coalescer.stats.full_flushes == 1
        assert coalescer.stats.window_flushes == 0

    def test_group_commit_skips_the_window(self, db):
        # one hinted client: every submit completes the group instantly
        coalescer = BatchCoalescer(
            db, window_ms=10_000.0, ready_hint=lambda: 1
        )

        async def run():
            return await asyncio.wait_for(
                coalescer.submit(window(0), client="a"), timeout=5.0
            )

        record = asyncio.run(run())
        assert record.ids == db.query(window(0)).ids()
        assert coalescer.stats.complete_flushes == 1
        assert coalescer.stats.batches == 1

    def test_group_commit_waits_for_every_hinted_client(self, db):
        coalescer = BatchCoalescer(
            db, window_ms=10_000.0, ready_hint=lambda: 2
        )

        async def run():
            first = asyncio.ensure_future(
                coalescer.submit(window(0), client="a")
            )
            await asyncio.sleep(0)  # first submit alone: group incomplete
            assert coalescer.pending == 1
            assert coalescer.stats.batches == 0
            second = asyncio.ensure_future(
                coalescer.submit(window(1), client="b")
            )
            return await asyncio.wait_for(
                asyncio.gather(first, second), timeout=5.0
            )

        records = asyncio.run(run())
        assert len(records) == 2
        stats = coalescer.stats
        assert stats.complete_flushes == 1
        assert stats.multi_client_batches == 1
        assert stats.batch_sizes == {2: 1}

    def test_zero_window_means_per_turn_batches(self, db):
        coalescer = BatchCoalescer(
            db, window_ms=0.0, ready_hint=lambda: 5
        )

        async def run():
            return await coalescer.submit(window(0), client="a")

        record = asyncio.run(run())
        assert record.ids == db.query(window(0)).ids()
        # the hint is ignored at window 0 — the timer (at delay 0) flushed
        assert coalescer.stats.window_flushes == 1


class TestSharingAndErrors:
    def test_identical_specs_across_clients_execute_once(self, db):
        coalescer = BatchCoalescer(db, window_ms=20.0)
        db.engine.cache.clear()  # isolate dedup from earlier tests' cache
        spec = window(0)

        async def run():
            return await asyncio.gather(
                coalescer.submit(spec, client="a"),
                coalescer.submit(spec, client="b"),
            )

        records = asyncio.run(run())
        assert records[0].ids == records[1].ids
        assert db.engine.last_batch_stats.duplicate_hits == 1
        assert db.engine.last_batch_stats.executed == 1

    def test_invalid_spec_rejected_at_admission(self, db):
        from repro.query.spec import AreaQuery

        coalescer = BatchCoalescer(db, window_ms=5.0)
        degenerate = AreaQuery(
            Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)])
        )

        async def run():
            # the bad spec fails fast; the good one still gets answered
            with pytest.raises(InvalidQueryAreaError):
                await coalescer.submit(degenerate, client="a")
            return await coalescer.submit(window(0), client="b")

        record = asyncio.run(run())
        assert record.ids == db.query(window(0)).ids()
        assert coalescer.stats.requests == 1  # the rejected spec never queued

    def test_execution_failure_poisons_only_its_batch(self, db):
        coalescer = BatchCoalescer(db, window_ms=5.0)
        original = db.engine.run_specs

        def explode(*args, **kwargs):
            raise RuntimeError("engine down")

        async def run():
            db.engine.run_specs = explode
            try:
                with pytest.raises(RuntimeError, match="engine down"):
                    await coalescer.submit(window(0), client="a")
            finally:
                db.engine.run_specs = original
            return await coalescer.submit(window(1), client="a")

        record = asyncio.run(run())
        assert record.ids == db.query(window(1)).ids()

    def test_non_spec_submissions_rejected(self, db):
        coalescer = BatchCoalescer(db)

        async def run():
            await coalescer.submit("not a spec")  # type: ignore[arg-type]

        with pytest.raises(TypeError, match="not a query spec"):
            asyncio.run(run())

    def test_constructor_validation(self, db):
        with pytest.raises(ValueError, match="window_ms"):
            BatchCoalescer(db, window_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            BatchCoalescer(db, max_batch=0)

    def test_knn_and_windows_mix_in_one_batch(self, db):
        coalescer = BatchCoalescer(db, window_ms=20.0)
        knn = KnnQuery((0.5, 0.5), 5)

        async def run():
            return await asyncio.gather(
                coalescer.submit(window(0), client="a"),
                coalescer.submit(knn, client="b"),
            )

        window_record, knn_record = asyncio.run(run())
        assert window_record.ids == db.query(window(0)).ids()
        assert knn_record.ids == db.query(knn).ids()
        assert coalescer.stats.batch_sizes == {2: 1}
