"""Unit tests of the log2 latency histogram and the per-kind panel."""

import pytest

from repro.server.metrics import (
    BUCKET_COUNT,
    LatencyHistogram,
    LatencyPanel,
)


class TestBucketing:
    def test_empty_histogram_reports_zeroes(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean_ms == 0.0
        assert hist.max_ms == 0.0
        assert hist.p50_ms == 0.0
        assert hist.p95_ms == 0.0
        assert hist.p99_ms == 0.0

    def test_bucket_index_is_log2_of_microseconds(self):
        # 1 us has bit_length 1; each doubling moves one bucket up.
        assert LatencyHistogram.bucket_index(0.0) == 0
        assert LatencyHistogram.bucket_index(0.001) == 1  # 1 us
        assert LatencyHistogram.bucket_index(0.002) == 2  # 2 us
        assert LatencyHistogram.bucket_index(1.0) == 10  # 1000 us
        assert LatencyHistogram.bucket_index(-5.0) == 0

    def test_huge_observations_clamp_to_the_last_bucket(self):
        hist = LatencyHistogram()
        hist.record_ms(1e15)
        assert hist.count == 1
        assert hist.nonzero_buckets()[0][1] == 1
        assert (
            LatencyHistogram.bucket_index(1e15) == BUCKET_COUNT - 1
        )

    def test_upper_edges_double_per_bucket(self):
        edges = [
            LatencyHistogram.bucket_upper_ms(i) for i in range(5)
        ]
        for narrow, wide in zip(edges, edges[1:]):
            assert wide == 2 * narrow


class TestQuantiles:
    def test_percentile_is_an_upper_bound_within_2x(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.record_ms(3.0)
        # Every observation is 3 ms, so any quantile must land in
        # [3 ms, 6 ms): the true value, over-reported by < 2x.
        for q in (0.5, 0.95, 0.99, 1.0):
            assert 3.0 <= hist.percentile_ms(q) < 6.0

    def test_tail_separates_from_the_body(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record_ms(1.0)
        hist.record_ms(1000.0)
        assert hist.p50_ms < 3.0
        assert hist.p99_ms < 3.0  # rank 99 still sits in the body
        assert hist.percentile_ms(1.0) == pytest.approx(1000.0)

    def test_percentile_never_exceeds_the_true_max(self):
        hist = LatencyHistogram()
        hist.record_ms(5.0)  # bucket upper edge is 8.192 ms
        assert hist.percentile_ms(1.0) == 5.0
        assert hist.max_ms == 5.0

    def test_mean_and_max_are_exact(self):
        hist = LatencyHistogram()
        for value in (1.0, 2.0, 9.0):
            hist.record_ms(value)
        assert hist.mean_ms == pytest.approx(4.0)
        assert hist.max_ms == 9.0

    def test_quantile_argument_is_validated(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile_ms(1.5)


class TestWireForm:
    def test_as_dict_schema_and_conservation(self):
        hist = LatencyHistogram()
        for value in (0.5, 0.7, 3.0, 40.0):
            hist.record_ms(value)
        data = hist.as_dict()
        assert set(data) == {
            "count",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
            "buckets",
        }
        assert data["count"] == 4
        # every observation is in exactly one bucket
        assert sum(data["buckets"].values()) == 4
        # bucket keys are the upper edges in ms, parseable as floats
        assert all(float(key) > 0 for key in data["buckets"])

    def test_panel_creates_kinds_lazily_and_sorts(self):
        panel = LatencyPanel()
        assert panel.kinds == ()
        panel.record_ms("window", 1.0)
        panel.record_ms("knn", 2.0)
        panel.record_ms("window", 3.0)
        assert panel.kinds == ("knn", "window")
        data = panel.as_dict()
        assert list(data) == ["knn", "window"]
        assert data["window"]["count"] == 2
        assert data["knn"]["count"] == 1
        assert panel.histogram("window").max_ms == 3.0
