"""Wire-protocol property tests: round trips and malformed rejection.

Every frame type round-trips ``decode_frame(encode_frame(f)) == f``
exactly (floats survive because ``json`` is repr-faithful), query frames
additionally round-trip their embedded specs — including nested
composites and unbounded kNN — through
:func:`repro.server.protocol.parse_query_spec`, and structurally broken
input of every flavour is rejected with a ``bad-frame``
:class:`~repro.server.protocol.ProtocolError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.serialize import spec_to_dict
from repro.server.protocol import (
    ERROR_CODES,
    MAX_CHUNK_SIZE,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    parse_query_spec,
    rows_to_wire,
    validate_frame,
)
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)

# -- spec strategies ----------------------------------------------------------

coordinates = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    """Non-degenerate axis-aligned rectangles."""
    x1, x2 = sorted(
        draw(st.tuples(coordinates, coordinates).filter(lambda t: t[0] != t[1]))
    )
    y1, y2 = sorted(
        draw(st.tuples(coordinates, coordinates).filter(lambda t: t[0] != t[1]))
    )
    return Rect(x1, y1, x2, y2)


@st.composite
def region_specs(draw):
    """Area (polygon or circle) and window leaf specs, with options."""
    kind = draw(st.integers(0, 2))
    limit = draw(st.none() | st.integers(0, 50))
    if kind == 0:
        region = Polygon.from_rect(draw(rects()))
        return AreaQuery(region, limit=limit)
    if kind == 1:
        center = Point(draw(coordinates), draw(coordinates))
        radius = draw(
            st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
        )
        return AreaQuery(Circle(center, radius), method="voronoi")
    return WindowQuery(draw(rects()), limit=limit)


@st.composite
def point_specs(draw):
    """kNN (bounded and unbounded/streaming) and nearest specs."""
    point = Point(draw(coordinates), draw(coordinates))
    if draw(st.booleans()):
        k = draw(st.none() | st.integers(0, 100))
        select = draw(st.sampled_from(["ids", "points", "distances"]))
        return KnnQuery(point, k, select=select)
    return NearestQuery(point)


composite_specs = st.recursive(
    region_specs(),
    lambda children: st.tuples(
        st.sampled_from([UnionQuery, IntersectionQuery, DifferenceQuery]),
        st.lists(children, min_size=2, max_size=3),
    ).map(lambda pair: pair[0](tuple(pair[1]))),
    max_leaves=6,
)

any_specs = st.one_of(region_specs(), point_specs(), composite_specs)

# -- frame strategies ---------------------------------------------------------

request_ids = st.integers(min_value=0, max_value=2**31)
json_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=10),
    st.booleans(),
)
stats_payloads = st.dictionaries(
    st.text(min_size=1, max_size=10), json_scalars, max_size=4
)


@st.composite
def query_frames(draw):
    """``query`` frames: leaf or composite spec plus the option flags."""
    frame = {
        "type": "query",
        "id": draw(request_ids),
        "spec": spec_to_dict(draw(any_specs)),
    }
    if draw(st.booleans()):
        frame["explain"] = draw(st.booleans())
    if draw(st.booleans()):
        frame["stream"] = True
        if draw(st.booleans()):
            frame["chunk_size"] = draw(st.integers(1, MAX_CHUNK_SIZE))
    return frame


next_frames = st.fixed_dictionaries({"type": st.just("next"), "id": request_ids})
cancel_frames = st.fixed_dictionaries(
    {"type": st.just("cancel"), "id": request_ids}
)
stats_requests = st.just({"type": "stats"})
stats_responses = st.fixed_dictionaries(
    {
        "type": st.just("stats"),
        "server": stats_payloads,
        "coalescer": stats_payloads,
        "engine": stats_payloads,
    }
)
hello_frames = st.fixed_dictionaries(
    {
        "type": st.just("hello"),
        "protocol": st.integers(1, 99),
        "server": st.text(max_size=20),
        "points": st.integers(0, 10**9),
    }
)


@st.composite
def result_frames(draw):
    """``result`` frames with integer id lists and a stats object."""
    frame = {
        "type": "result",
        "id": draw(request_ids),
        "ids": draw(st.lists(st.integers(0, 10**6), max_size=30)),
        "stats": draw(stats_payloads),
    }
    if draw(st.booleans()):
        frame["explain"] = draw(st.text(max_size=40))
    return frame


@st.composite
def chunk_frames(draw):
    """``chunk`` frames over every row projection (ids/points/distances)."""
    rows = draw(
        st.one_of(
            st.lists(st.integers(0, 10**6), max_size=20),
            st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=20),
            st.lists(
                st.tuples(coordinates, coordinates).map(list), max_size=20
            ),
        )
    )
    frame = {
        "type": "chunk",
        "id": draw(request_ids),
        "seq": draw(st.integers(0, 10**6)),
        "rows": rows,
        "done": draw(st.booleans()),
    }
    if draw(st.booleans()):
        frame["examined"] = draw(st.integers(0, 10**9))
    if draw(st.booleans()):
        frame["cancelled"] = draw(st.booleans())
    return frame


error_frames = st.builds(
    error_frame,
    st.none() | request_ids,
    st.sampled_from(ERROR_CODES),
    st.text(max_size=60),
)

all_frames = st.one_of(
    query_frames(),
    next_frames,
    cancel_frames,
    stats_requests,
    stats_responses,
    hello_frames,
    result_frames(),
    chunk_frames(),
    error_frames,
)


class TestRoundTrips:
    @settings(max_examples=200)
    @given(all_frames)
    def test_every_frame_type_round_trips(self, frame):
        line = encode_frame(frame)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_frame(line) == frame
        assert decode_frame(line.decode("utf-8")) == frame

    @settings(max_examples=150)
    @given(any_specs, request_ids)
    def test_specs_survive_the_query_frame(self, spec, request_id):
        frame = {"type": "query", "id": request_id, "spec": spec_to_dict(spec)}
        decoded = decode_frame(encode_frame(frame))
        assert parse_query_spec(decoded) == spec

    @given(st.lists(st.tuples(coordinates, coordinates), max_size=10))
    def test_point_rows_become_pairs(self, pairs):
        points = [Point(x, y) for x, y in pairs]
        wire = rows_to_wire(points)
        assert wire == [[p.x, p.y] for p in points]
        # scalar rows (ids, distances) pass through untouched
        assert rows_to_wire([1, 2.5]) == [1, 2.5]


class TestMalformedRejection:
    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2, 3]\n",
            b'"a string"\n',
            b"{}\n",
            b'{"type": "warp"}\n',
            b"\xff\xfe\n",
        ],
        ids=["not-json", "array", "string", "no-type", "unknown-type", "bad-utf8"],
    )
    def test_structurally_broken_lines(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(line)
        assert excinfo.value.code == "bad-frame"

    @pytest.mark.parametrize(
        "frame",
        [
            {"type": "query", "spec": {}},  # missing id
            {"type": "query", "id": -1, "spec": {}},
            {"type": "query", "id": True, "spec": {}},
            {"type": "query", "id": 1, "spec": "area"},
            {"type": "query", "id": 1, "spec": {}, "stream": "yes"},
            {"type": "query", "id": 1, "spec": {}, "chunk_size": 8},
            {"type": "query", "id": 1, "spec": {}, "stream": True,
             "chunk_size": 0},
            {"type": "next", "id": "7"},
            {"type": "cancel"},
            {"type": "hello", "protocol": 0, "server": "x", "points": 1},
            {"type": "hello", "protocol": 1, "server": "x", "points": -2},
            {"type": "result", "id": 1, "ids": [1, "2"], "stats": {}},
            {"type": "result", "id": 1, "ids": [True], "stats": {}},
            {"type": "result", "id": 1, "ids": 3, "stats": {}},
            {"type": "result", "id": 1, "ids": [], "stats": []},
            {"type": "chunk", "id": 1, "seq": -1, "rows": [], "done": False},
            {"type": "chunk", "id": 1, "seq": 0, "rows": [], "done": 1},
            {"type": "chunk", "id": 1, "seq": 0, "rows": [], "done": True,
             "examined": -1},
            {"type": "error", "code": "nope", "message": "x"},
            {"type": "error", "code": "bad-spec", "message": 5},
            {"type": "stats", "server": {}},  # partial stats response
        ],
        ids=repr,
    )
    def test_schema_violations(self, frame):
        with pytest.raises(ProtocolError) as excinfo:
            validate_frame(frame)
        assert excinfo.value.code == "bad-frame"

    def test_error_frames_round_trip_with_and_without_id(self):
        for request_id in (None, 9):
            frame = error_frame(request_id, "bad-spec", "boom")
            assert decode_frame(encode_frame(frame)) == frame
            assert ("id" in frame) == (request_id is not None)

    def test_bad_specs_raise_bad_spec(self):
        frame = {"type": "query", "id": 0, "spec": {"kind": "tessellate"}}
        validate_frame(frame)  # structurally fine
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_spec(frame)
        assert excinfo.value.code == "bad-spec"
        # a structurally valid spec body that fails geometric coercion
        frame["spec"] = {"kind": "window", "rect": [0.0, 0.0]}
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_spec(frame)
        assert excinfo.value.code == "bad-spec"

    def test_oversized_lines_rejected_both_ways(self):
        frame = {
            "type": "result",
            "id": 0,
            "ids": list(range(MAX_LINE_BYTES // 4)),
            "stats": {},
        }
        with pytest.raises(ProtocolError, match="line limit"):
            encode_frame(frame)
        with pytest.raises(ProtocolError, match="limit"):
            decode_frame(b"x" * (MAX_LINE_BYTES + 1))

    def test_non_finite_numbers_have_no_wire_form(self):
        with pytest.raises(ProtocolError):
            encode_frame(
                {
                    "type": "hello",
                    "protocol": 1,
                    "server": "x",
                    "points": 1,
                    "load": float("nan"),
                }
            )


class TestPackedIdTransport:
    """The columnar id transport: pack/unpack + frame validation."""

    def test_pack_unpack_round_trip(self):
        from hypothesis import given
        from hypothesis import strategies as st

        from repro.server.protocol import pack_ids, unpack_ids

        @given(
            st.lists(
                st.integers(min_value=0, max_value=2**62), max_size=200
            )
        )
        def round_trip(ids):
            assert unpack_ids(pack_ids(ids)) == ids

        round_trip()

    def test_packed_result_frame_round_trips(self):
        from repro.server.protocol import pack_ids, result_ids

        ids = list(range(0, 5000, 7))
        frame = {
            "type": "result",
            "id": 3,
            "ids_packed": pack_ids(ids),
            "stats": {"method": "index"},
        }
        decoded = decode_frame(encode_frame(frame))
        assert result_ids(decoded) == ids

    def test_result_ids_accepts_both_transports(self):
        from repro.server.protocol import result_ids

        assert result_ids({"ids": [1, 2, 3]}) == [1, 2, 3]

    def test_both_fields_rejected(self):
        from repro.server.protocol import pack_ids

        frame = {
            "type": "result",
            "id": 1,
            "ids": [1],
            "ids_packed": pack_ids([1]),
            "stats": {},
        }
        with pytest.raises(ProtocolError, match="not both"):
            encode_frame(frame)

    def test_garbage_packed_payload_rejected(self):
        from repro.server.protocol import unpack_ids

        with pytest.raises(ProtocolError, match="base64"):
            unpack_ids("not//valid@@base64!!")
        # valid base64 but not a whole number of int64s
        import base64

        with pytest.raises(ProtocolError, match="int64"):
            unpack_ids(base64.b64encode(b"abc").decode())

    def test_non_string_packed_field_rejected(self):
        import json

        frame = {"type": "result", "id": 1, "ids_packed": 42, "stats": {}}
        with pytest.raises(ProtocolError, match="base64"):
            decode_frame(json.dumps(frame).encode() + b"\n")

    def test_server_honours_the_packed_flag_end_to_end(self):
        import socket as socket_module

        from repro.core.database import SpatialDatabase
        from repro.geometry.rectangle import Rect
        from repro.query.serialize import spec_to_dict
        from repro.query.spec import WindowQuery
        from repro.server.app import ServerThread
        from repro.server.protocol import result_ids
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(uniform_points(300, seed=17))
        spec = WindowQuery(Rect(0.2, 0.2, 0.8, 0.8))
        expected = db.query(spec).ids()
        with ServerThread(db) as server:
            with socket_module.create_connection(
                (server.host, server.port)
            ) as sock:
                reader = sock.makefile("rb")
                decode_frame(reader.readline())  # hello
                for packed in (False, True):
                    frame = {
                        "type": "query",
                        "id": 1,
                        "spec": spec_to_dict(spec),
                    }
                    if packed:
                        frame["packed"] = True
                    sock.sendall(encode_frame(frame))
                    response = decode_frame(reader.readline())
                    assert response["type"] == "result"
                    assert ("ids_packed" in response) is packed
                    assert ("ids" in response) is not packed
                    assert result_ids(response) == expected


class TestSubscriptionFrames:
    """Round trips and schema rejection for the live-query frames."""

    @pytest.mark.parametrize(
        "frame",
        [
            {
                "type": "subscribe",
                "id": 3,
                "spec": spec_to_dict(WindowQuery((0, 0, 1, 1))),
            },
            {
                "type": "subscribe",
                "id": 4,
                "spec": spec_to_dict(KnnQuery((0.5, 0.5), 7)),
                "packed": True,
            },
            {"type": "unsubscribe", "id": 3},
            {"type": "subscribed", "id": 3, "version": 9, "ids": [1, 2]},
            {
                "type": "notify",
                "id": 3,
                "version": 10,
                "added": [5],
                "removed": [],
            },
            {"type": "unsubscribed", "id": 3, "notifications": 12},
        ],
        ids=[
            "subscribe",
            "subscribe-packed",
            "unsubscribe",
            "subscribed",
            "notify",
            "unsubscribed",
        ],
    )
    def test_round_trips(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_packed_subscription_frames_round_trip(self):
        from repro.server.protocol import delta_ids, pack_ids

        notify = {
            "type": "notify",
            "id": 1,
            "version": 2,
            "added_packed": pack_ids([7, 9]),
            "removed_packed": pack_ids([]),
        }
        decoded = decode_frame(encode_frame(notify))
        assert delta_ids(decoded, "added") == [7, 9]
        assert delta_ids(decoded, "removed") == []
        subscribed = {
            "type": "subscribed",
            "id": 1,
            "version": 1,
            "ids_packed": pack_ids([3, 1, 4]),
        }
        decoded = decode_frame(encode_frame(subscribed))
        assert delta_ids(decoded, "ids") == [3, 1, 4]

    @pytest.mark.parametrize(
        "frame",
        [
            {"type": "subscribe", "id": 1},
            {"type": "subscribe", "spec": {"kind": "window"}},
            {"type": "subscribe", "id": 1, "spec": [], "packed": True},
            {"type": "subscribe", "id": 1, "spec": {}, "packed": "yes"},
            {"type": "unsubscribe"},
            {"type": "subscribed", "id": 1, "ids": [1]},
            {"type": "subscribed", "id": 1, "version": 1},
            {
                "type": "subscribed",
                "id": 1,
                "version": 1,
                "ids": [1],
                "ids_packed": "AA==",
            },
            {"type": "notify", "id": 1, "version": 2, "added": [1]},
            {
                "type": "notify",
                "id": 1,
                "version": 2,
                "added": [1],
                "removed": "nope",
            },
            {"type": "notify", "id": 1, "added": [1], "removed": []},
            {"type": "unsubscribed", "id": 1},
            {"type": "unsubscribed", "id": 1, "notifications": -3},
        ],
        ids=[
            "subscribe-no-spec",
            "subscribe-no-id",
            "subscribe-spec-not-dict",
            "subscribe-packed-not-bool",
            "unsubscribe-no-id",
            "subscribed-no-version",
            "subscribed-no-ids",
            "subscribed-both-transports",
            "notify-no-removed",
            "notify-removed-not-list",
            "notify-no-version",
            "unsubscribed-no-count",
            "unsubscribed-negative-count",
        ],
    )
    def test_schema_violations_rejected(self, frame):
        import json

        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(json.dumps(frame).encode() + b"\n")
        assert excinfo.value.code == "bad-frame"
