"""Smoke tests for the ``python -m repro`` command line."""

import xml.etree.ElementTree as ET

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "Table I" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--points", "2000", "--query-size", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "candidates saved" in out

    def test_experiments_forwarding(self, capsys):
        exit_code = main(
            [
                "experiments",
                "table2",
                "--repetitions",
                "2",
                "--data-size",
                "600",
            ]
        )
        assert exit_code == 0
        assert "Table II" in capsys.readouterr().out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--output", str(tmp_path)]) == 0
        for name in ("fig2.svg", "fig3.svg"):
            document = (tmp_path / name).read_text()
            ET.fromstring(document)  # well-formed

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
