"""Smoke tests for the ``python -m repro`` command line."""

import xml.etree.ElementTree as ET

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "Table I" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--points", "2000", "--query-size", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "candidates saved" in out

    def test_experiments_forwarding(self, capsys):
        exit_code = main(
            [
                "experiments",
                "table2",
                "--repetitions",
                "2",
                "--data-size",
                "600",
            ]
        )
        assert exit_code == 0
        assert "Table II" in capsys.readouterr().out

    def test_figures(self, tmp_path, capsys):
        assert main(["figures", "--output", str(tmp_path)]) == 0
        for name in ("fig2.svg", "fig3.svg"):
            document = (tmp_path / name).read_text()
            ET.fromstring(document)  # well-formed

    def test_query_spec_file(self, tmp_path, capsys):
        from repro import AreaQuery, KnnQuery, NearestQuery, WindowQuery
        from repro import dump_specs
        from repro.geometry.polygon import Polygon
        from repro.geometry.rectangle import Rect

        specs = [
            AreaQuery(Polygon([(0.2, 0.2), (0.6, 0.25), (0.4, 0.7)])),
            WindowQuery(Rect(0.1, 0.1, 0.4, 0.5)),
            KnnQuery((0.5, 0.5), 5, method="voronoi"),
            NearestQuery((0.9, 0.9)),
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(dump_specs(specs), encoding="utf-8")
        exit_code = main(
            [
                "query",
                "--spec-file",
                str(spec_file),
                "--points",
                "800",
                "--explain",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        for kind in ("area(", "window(", "knn(", "nearest("):
            assert kind in out
        assert "4 specs" in out
        assert "est. cost" in out  # --explain tables

    def test_query_spec_file_composites_and_streaming(self, tmp_path, capsys):
        from repro import KnnQuery, UnionQuery, WindowQuery, dump_specs
        from repro.geometry.rectangle import Rect

        w1 = WindowQuery(Rect(0.1, 0.1, 0.5, 0.5))
        w2 = WindowQuery(Rect(0.3, 0.3, 0.7, 0.7))
        specs = [UnionQuery((w1, w2)), KnnQuery((0.5, 0.5), None)]
        spec_file = tmp_path / "composite.json"
        spec_file.write_text(dump_specs(specs), encoding="utf-8")
        exit_code = main(
            ["query", "--spec-file", str(spec_file), "--points", "800"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "union(" in out
        assert "composite" in out  # the decomposed method column
        assert "k=unbounded" in out

    def test_query_first_streams_prefixes(self, tmp_path, capsys):
        from repro import KnnQuery, UnionQuery, WindowQuery, dump_specs
        from repro.geometry.rectangle import Rect

        specs = [
            UnionQuery(
                (
                    WindowQuery(Rect(0.1, 0.1, 0.5, 0.5)),
                    WindowQuery(Rect(0.3, 0.3, 0.7, 0.7)),
                )
            ),
            KnnQuery((0.5, 0.5), None),
        ]
        spec_file = tmp_path / "stream.json"
        spec_file.write_text(dump_specs(specs), encoding="utf-8")
        exit_code = main(
            [
                "query",
                "--spec-file",
                str(spec_file),
                "--points",
                "800",
                "--first",
                "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "first 5" in out

    def test_query_empty_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "empty.json"
        spec_file.write_text("[]", encoding="utf-8")
        assert main(["query", "--spec-file", str(spec_file)]) == 1

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServerCLI:
    def test_snapshot_writes_loadable_database(self, tmp_path, capsys):
        from repro.io.persist import load_database

        out_path = tmp_path / "snap"  # extensionless on purpose
        exit_code = main(
            [
                "snapshot",
                "--points",
                "300",
                "--out",
                str(out_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "snap.npz" in out
        assert len(load_database(out_path)) == 300

    def test_serve_load_plumbing(self, tmp_path, capsys):
        """`--load` restores the exact snapshot (the serve entry point
        itself blocks, so the database plumbing is tested directly)."""
        import argparse

        from repro.__main__ import _build_or_load_database
        from repro.core.database import SpatialDatabase
        from repro.io.persist import save_database
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(250, seed=3), backend_kind="scipy"
        )
        written = save_database(tmp_path / "served", db)
        args = argparse.Namespace(load=written, points=999, seed=0)
        restored = _build_or_load_database(args)
        assert len(restored) == 250  # the snapshot, not --points
        assert restored.points == db.points
        assert "restored" in capsys.readouterr().out

    def test_query_remote_round_trip(self, tmp_path, capsys):
        from repro import dump_specs
        from repro.core.database import SpatialDatabase
        from repro.geometry.rectangle import Rect
        from repro.query.spec import KnnQuery, WindowQuery
        from repro.server import ServerThread
        from repro.workloads.generators import uniform_points

        specs = [
            WindowQuery(Rect(0.2, 0.2, 0.6, 0.6)),
            KnnQuery((0.5, 0.5), 4),
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(dump_specs(specs), encoding="utf-8")
        db = SpatialDatabase.from_points(
            uniform_points(600, seed=9), backend_kind="scipy"
        ).prepare()
        with ServerThread(db) as server:
            exit_code = main(
                [
                    "query",
                    "--spec-file",
                    str(spec_file),
                    "--remote",
                    f"{server.host}:{server.port}",
                ]
            )
            assert exit_code == 0
            out = capsys.readouterr().out
            assert "Connected to" in out
            assert "coalesced batches" in out

            exit_code = main(
                [
                    "query",
                    "--spec-file",
                    str(spec_file),
                    "--remote",
                    f"{server.host}:{server.port}",
                    "--first",
                    "3",
                ]
            )
            assert exit_code == 0
            out = capsys.readouterr().out
            assert "first 3" in out
            expected = db.query(specs[1]).first(3)
            assert str(expected) in out

    def test_query_remote_bad_address(self, tmp_path):
        from repro import dump_specs
        from repro.query.spec import NearestQuery

        spec_file = tmp_path / "specs.json"
        spec_file.write_text(
            dump_specs([NearestQuery((0.5, 0.5))]), encoding="utf-8"
        )
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(
                [
                    "query",
                    "--spec-file",
                    str(spec_file),
                    "--remote",
                    "not-an-address",
                ]
            )


class TestLiveCLI:
    def test_mutate_from_file_applies_ops_in_order(self, tmp_path, capsys):
        import json

        from repro.core.database import SpatialDatabase
        from repro.server import ServerThread
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(120, seed=3), backend_kind="pure"
        ).prepare()
        ops = tmp_path / "ops.ndjson"
        ops.write_text(
            "\n".join(
                [
                    json.dumps({"op": "insert", "x": 0.31, "y": 0.62}),
                    json.dumps(
                        {"op": "extend", "points": [[0.1, 0.1], [0.9, 0.9]]}
                    ),
                    json.dumps({"op": "delete", "row": 0}),
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        with ServerThread(db) as server:
            code = main(
                [
                    "mutate",
                    "--remote",
                    f"{server.host}:{server.port}",
                    "--from-file",
                    str(ops),
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "row 120" in out  # insert got the next row id
        assert "extend 2 points" in out
        assert "delete row 0" in out
        assert "122 live points" in out
        assert len(db.store) == 123 and db.store.deleted_count == 1

    def test_mutate_from_file_rejects_bad_lines(self, tmp_path):
        ops = tmp_path / "ops.ndjson"
        ops.write_text('{"op": "warp"}\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="ops.ndjson:1"):
            main(["mutate", "--remote", "127.0.0.1:1", "--from-file", str(ops)])

    def test_subscribe_streams_notifications(self, capsys):
        import threading
        import time

        from repro.core.database import SpatialDatabase
        from repro.server import QueryClient, ServerThread
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(150, seed=5), backend_kind="pure"
        ).prepare()
        with ServerThread(db) as server:

            def write_soon():
                time.sleep(0.3)
                with QueryClient(server.host, server.port) as writer:
                    writer.insert(0.5, 0.5)

            thread = threading.Thread(target=write_soon)
            thread.start()
            code = main(
                [
                    "subscribe",
                    "--remote",
                    f"{server.host}:{server.port}",
                    "--window",
                    "0.4,0.4,0.6,0.6",
                    "--knn",
                    "0.5,0.5,3",
                    "--count",
                    "2",
                    "--duration",
                    "10",
                ]
            )
            thread.join()
        assert code == 0
        out = capsys.readouterr().out
        assert "rows at version" in out
        assert "2 notifications received" in out

    def test_subscribe_without_specs_is_an_error(self, capsys):
        assert main(["subscribe", "--remote", "127.0.0.1:1"]) == 1
        assert "nothing to do" in capsys.readouterr().out

    def test_subscribe_bad_window_rejected(self):
        with pytest.raises(SystemExit, match="X1,Y1,X2,Y2"):
            main(
                [
                    "subscribe",
                    "--remote",
                    "127.0.0.1:1",
                    "--window",
                    "0.1,0.2",
                ]
            )
