"""Cluster-vs-oracle equivalence: the coordinator over local shards.

Every test compares :class:`ClusterCoordinator` results bit-for-bit
against a single-process :class:`SpatialDatabase` oracle running the
identical trace — same specs, same write order, same row ids.  The
coordinator runs over in-process :class:`LocalShard` backends so the
routing/merge logic is exercised without socket noise; the wire path
gets its own suite in ``test_router.py``.
"""

import random

import pytest

from repro.cluster import ClusterCoordinator, ClusterWriteError, LocalShard
from repro.core.database import SpatialDatabase
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)
from repro.workloads import make_query_areas, uniform_points

N_POINTS = 600


def build_pair(points, workers=4, **options):
    """A (coordinator, oracle) pair loaded with the same rows."""
    oracle = SpatialDatabase.from_points([Point(x, y) for x, y in points])
    coordinator = ClusterCoordinator(
        [LocalShard(SpatialDatabase()) for _ in range(workers)], **options
    )
    gids = coordinator.bulk_load(points)
    assert gids == list(range(len(points)))
    return coordinator, oracle


@pytest.fixture(scope="module")
def pair():
    points = [(p.x, p.y) for p in uniform_points(N_POINTS, seed=11)]
    return build_pair(points)


def assert_same(coordinator, oracle, spec):
    assert coordinator.query(spec) == oracle.query(spec).ids()


class TestReadEquivalence:
    def test_region_kinds(self, pair):
        coordinator, oracle = pair
        rng = random.Random(5)
        for index in range(25):
            area = make_query_areas(0.02, 1, seed=100 + index)[0]
            assert_same(coordinator, oracle, AreaQuery(area))
            x0, y0 = rng.random() * 0.8, rng.random() * 0.8
            rect = (x0, y0, x0 + rng.random() * 0.2, y0 + rng.random() * 0.2)
            assert_same(coordinator, oracle, WindowQuery(rect))

    def test_point_kinds(self, pair):
        coordinator, oracle = pair
        rng = random.Random(6)
        for _ in range(25):
            seed = Point(rng.random(), rng.random())
            assert_same(coordinator, oracle, KnnQuery(seed, rng.randrange(20)))
            assert_same(coordinator, oracle, NearestQuery(seed))

    def test_knn_edge_shapes(self, pair):
        coordinator, oracle = pair
        center = Point(0.5, 0.5)
        assert_same(coordinator, oracle, KnnQuery(center, None))
        assert_same(coordinator, oracle, KnnQuery(center, None, limit=17))
        assert_same(coordinator, oracle, KnnQuery(center, 10 * N_POINTS))
        assert_same(coordinator, oracle, KnnQuery(center, 0))

    def test_composites_and_options(self, pair):
        coordinator, oracle = pair
        window = WindowQuery((0.1, 0.1, 0.6, 0.6))
        disc = AreaQuery(Circle(Point(0.5, 0.5), 0.3))
        capped = WindowQuery((0.4, 0.4, 0.9, 0.9), limit=40)
        inside = lambda p: p.x + p.y < 1.0  # noqa: E731
        for spec in (
            UnionQuery((window, disc)),
            IntersectionQuery((window, disc)),
            DifferenceQuery((window, disc, capped)),
            UnionQuery((IntersectionQuery((window, disc)), capped), limit=25),
            WindowQuery((0, 0, 1, 1), predicate=inside, limit=30),
            KnnQuery(Point(0.7, 0.7), 12, predicate=inside),
            NearestQuery(Point(0.9, 0.9), predicate=inside),
            UnionQuery((window, disc), predicate=inside),
        ):
            assert_same(coordinator, oracle, spec)

    def test_streaming_first_n(self, pair):
        coordinator, oracle = pair
        spec = KnnQuery(Point(0.33, 0.44), None)
        stream = coordinator.stream(spec)
        try:
            got = [next(stream) for _ in range(15)]
        finally:
            stream.close()
        assert got == oracle.query(spec).first(15)

        union = UnionQuery(
            (
                WindowQuery((0.1, 0.1, 0.5, 0.5)),
                AreaQuery(Circle(Point(0.5, 0.5), 0.25)),
            )
        )
        stream = coordinator.stream(union)
        try:
            got = [next(stream) for _ in range(10)]
        finally:
            stream.close()
        assert got == oracle.query(union).first(10)


class TestValidationParity:
    def test_area_on_empty_cluster(self):
        coordinator = ClusterCoordinator(
            [LocalShard(SpatialDatabase()) for _ in range(2)]
        )
        area = make_query_areas(0.02, 1, seed=3)[0]
        with pytest.raises(EmptyDatabaseError):
            coordinator.query(AreaQuery(area))

    def test_zero_area_region(self, pair):
        coordinator, _ = pair
        with pytest.raises(InvalidQueryAreaError):
            coordinator.query(
                AreaQuery(Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)]))
            )

    def test_write_errors(self, pair):
        coordinator, _ = pair
        with pytest.raises(ClusterWriteError):
            coordinator.delete(10**9)


class TestWritesAndRebalance:
    def test_interleaved_trace_with_mid_trace_rebalance(self):
        points = [(p.x, p.y) for p in uniform_points(400, seed=21)]
        coordinator, oracle = build_pair(points, min_split=32)
        rng = random.Random(9)
        live = set(range(len(points)))
        for step in range(260):
            if step % 7 == 3 and len(live) > 10:
                victim = rng.choice(sorted(live))
                coordinator.delete(victim)
                oracle.delete(victim)
                live.discard(victim)
            else:
                # skewed inserts pile onto one corner to force imbalance
                x, y = rng.random() * 0.15, rng.random() * 0.15
                assert coordinator.insert(x, y) == oracle.insert(Point(x, y))
            if step == 130:
                # an explicit mid-trace split, whatever the natural
                # trigger has done so far
                assert coordinator.rebalance_once(force=True)
        batch = [(rng.random(), rng.random()) for _ in range(60)]
        assert coordinator.extend(batch) == oracle.extend(
            [Point(x, y) for x, y in batch]
        )
        assert coordinator.rebalances >= 1
        assert coordinator.total_live == len(oracle)

        inside = lambda p: p.x < 0.5  # noqa: E731
        for index in range(15):
            area = make_query_areas(0.03, 1, seed=500 + index)[0]
            assert_same(coordinator, oracle, AreaQuery(area))
            seed = Point(rng.random() * 0.3, rng.random() * 0.3)
            assert_same(coordinator, oracle, KnnQuery(seed, 15))
            assert_same(coordinator, oracle, NearestQuery(seed))
        assert_same(coordinator, oracle, WindowQuery((0, 0, 0.2, 0.2)))
        assert_same(
            coordinator, oracle, KnnQuery(Point(0.1, 0.1), None, limit=50)
        )
        assert_same(
            coordinator,
            oracle,
            UnionQuery(
                (
                    WindowQuery((0, 0, 0.3, 0.3)),
                    AreaQuery(Circle(Point(0.5, 0.5), 0.25)),
                ),
                predicate=inside,
            ),
        )

    def test_natural_rebalance_triggers_on_skew(self):
        coordinator = ClusterCoordinator(
            [LocalShard(SpatialDatabase()) for _ in range(2)],
            min_split=16,
            imbalance_ratio=1.5,
        )
        rng = random.Random(4)
        # every insert lands in worker 0's corner of the curve
        for _ in range(200):
            coordinator.insert(rng.random() * 0.1, rng.random() * 0.1)
        assert coordinator.rebalances >= 1
        counts = coordinator.live_counts
        assert max(counts) < 200  # the hot shard actually shed rows

    def test_delete_then_stream_keeps_snapshot_predicates(self, pair):
        coordinator, oracle = pair
        # a predicate evaluated mid-stream must address rows deleted
        # after stream admission (tombstone addressability)
        gid = coordinator.insert(0.999, 0.001)
        assert gid == oracle.insert(Point(0.999, 0.001))
        spec = KnnQuery(Point(0.999, 0.001), None, predicate=lambda p: True)
        stream = coordinator.stream(spec)
        try:
            first = next(stream)
            coordinator.delete(gid)
            oracle.delete(gid)
            rest = [next(stream) for _ in range(5)]
        finally:
            stream.close()
        assert first == gid
        assert len(rest) == 5


class TestRestore:
    def test_export_restore_round_trip_continues_ids(self):
        points = [(p.x, p.y) for p in uniform_points(300, seed=31)]
        coordinator, _ = build_pair(points, min_split=32)
        rng = random.Random(2)
        for _ in range(40):
            coordinator.insert(rng.random() * 0.1, rng.random() * 0.1)
        coordinator.delete(5)
        state = coordinator.export_state()

        restored = ClusterCoordinator.restore(
            [LocalShard(SpatialDatabase()) for _ in range(4)], state
        )
        assert restored.total_live == coordinator.total_live
        for index in range(10):
            area = make_query_areas(0.03, 1, seed=900 + index)[0]
            assert restored.query(AreaQuery(area)) == coordinator.query(
                AreaQuery(area)
            )
        # id sequence continues past the snapshot (holes stay holes)
        assert restored.insert(0.77, 0.88) == coordinator.insert(0.77, 0.88)
