"""Unit tests for cluster-wide stats frame and histogram merging."""

import pytest

from repro.cluster.stats import (
    merge_histogram_dicts,
    merge_latency_sections,
    merge_stats_frames,
)
from repro.server.metrics import LatencyHistogram
from repro.server.protocol import validate_frame


def histogram_of(values):
    histogram = LatencyHistogram()
    for value in values:
        histogram.record_ms(value)
    return histogram


class TestHistogramMerge:
    def test_merge_equals_single_histogram_over_union(self):
        left, right = [0.1, 0.5, 2.0, 8.0], [0.2, 4.0, 16.0, 40.0]
        merged = merge_histogram_dicts(
            [histogram_of(left).as_dict(), histogram_of(right).as_dict()]
        )
        combined = histogram_of(left + right).as_dict()
        assert merged["count"] == combined["count"]
        assert merged["max_ms"] == combined["max_ms"]
        assert merged["buckets"] == combined["buckets"]
        for quantile in ("p50_ms", "p95_ms", "p99_ms"):
            assert merged[quantile] == combined[quantile]

    def test_quantiles_never_exceed_the_exact_max(self):
        merged = merge_histogram_dicts(
            [histogram_of([3.0]).as_dict(), histogram_of([3.5]).as_dict()]
        )
        assert merged["p99_ms"] <= merged["max_ms"] == 3.5

    def test_empty_inputs_merge_to_zeros(self):
        merged = merge_histogram_dicts([LatencyHistogram().as_dict()])
        assert merged["count"] == 0
        assert merged["p99_ms"] == 0.0


class TestLatencySectionMerge:
    def test_kind_union_across_workers(self):
        section_a = {
            "admission_wait": histogram_of([1.0]).as_dict(),
            "kinds": {"area": histogram_of([2.0]).as_dict()},
        }
        section_b = {
            "admission_wait": histogram_of([3.0]).as_dict(),
            "kinds": {"knn": histogram_of([4.0]).as_dict()},
        }
        merged = merge_latency_sections([section_a, section_b])
        assert merged["admission_wait"]["count"] == 2
        assert set(merged["kinds"]) == {"area", "knn"}


class TestFrameMerge:
    def frame(self, requests, with_latency=True):
        frame = {
            "type": "stats",
            "server": {"requests_total": requests, "connections": 1},
            "coalescer": {"batches": 2},
            "engine": {"executed": 5, "time_ms": 1.5},
        }
        if with_latency:
            frame["subscriptions"] = {"active": 0}
            frame["latency"] = {
                "admission_wait": histogram_of([1.0]).as_dict(),
                "kinds": {},
            }
        return frame

    def test_counters_sum_and_frame_validates(self):
        merged = merge_stats_frames(
            [self.frame(3), self.frame(4)],
            cluster={"workers": 2},
        )
        assert merged["server"]["requests_total"] == 7
        assert merged["engine"]["time_ms"] == pytest.approx(3.0)
        assert merged["cluster"] == {"workers": 2}
        # the merged frame must stay inside the protocol's stats schema
        validate_frame(merged)

    def test_additive_sections_require_every_worker(self):
        merged = merge_stats_frames(
            [self.frame(1), self.frame(1, with_latency=False)]
        )
        assert "latency" not in merged
        assert "subscriptions" not in merged

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_stats_frames([])
