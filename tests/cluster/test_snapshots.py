"""Shard-aware snapshot round trips: directory format + restore."""

import json
import os

import pytest

from repro.cluster import ClusterCoordinator, LocalShard
from repro.cluster.persist import (
    load_cluster_state,
    restore_cluster,
    save_cluster,
)
from repro.core.database import SpatialDatabase
from repro.query.spec import AreaQuery, KnnQuery
from repro.geometry.point import Point
from repro.workloads import make_query_areas, uniform_points


def fresh_backends(workers=3):
    return [LocalShard(SpatialDatabase()) for _ in range(workers)]


@pytest.fixture
def coordinator():
    points = [(p.x, p.y) for p in uniform_points(250, seed=13)]
    coordinator = ClusterCoordinator(fresh_backends(), min_split=32)
    coordinator.bulk_load(points)
    # leave holes and a forced split so the snapshot is non-trivial
    coordinator.delete(7)
    coordinator.delete(100)
    assert coordinator.rebalance_once(force=True)
    return coordinator


class TestRoundTrip:
    def test_save_then_restore_preserves_results_and_ids(
        self, tmp_path, coordinator
    ):
        directory = save_cluster(tmp_path / "snap", coordinator)
        restored = restore_cluster(directory, fresh_backends())

        assert restored.total_live == coordinator.total_live
        assert restored.live_counts == coordinator.live_counts
        assert restored.rebalances == coordinator.rebalances
        assert restored.shard_map.ranges == coordinator.shard_map.ranges
        for index in range(8):
            area = make_query_areas(0.04, 1, seed=40 + index)[0]
            assert restored.query(AreaQuery(area)) == coordinator.query(
                AreaQuery(area)
            )
        spec = KnnQuery(Point(0.3, 0.3), 12)
        assert restored.query(spec) == coordinator.query(spec)
        # deleted ids stay holes: the next insert continues the sequence
        assert restored.insert(0.5, 0.25) == coordinator.insert(0.5, 0.25)

    def test_manifest_lists_every_worker_even_empty(self, tmp_path):
        coordinator = ClusterCoordinator(fresh_backends(4))
        coordinator.extend([(0.01, 0.01), (0.02, 0.02)])  # one shard only
        directory = save_cluster(tmp_path / "snap", coordinator)
        with open(os.path.join(directory, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert [shard["worker"] for shard in manifest["shards"]] == [
            0,
            1,
            2,
            3,
        ]
        restored = restore_cluster(directory, fresh_backends(4))
        assert restored.total_live == 2


class TestCorruption:
    def test_unsupported_format_rejected(self, tmp_path, coordinator):
        directory = save_cluster(tmp_path / "snap", coordinator)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="unsupported"):
            load_cluster_state(directory)

    def test_count_mismatch_rejected(self, tmp_path, coordinator):
        directory = save_cluster(tmp_path / "snap", coordinator)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["shards"][0]["count"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="corrupt"):
            load_cluster_state(directory)
