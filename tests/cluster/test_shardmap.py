"""Property tests for Hilbert shard maps and region key covers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.shardmap import (
    CELL_COVER_CAP,
    ShardMap,
    ShardRange,
    cell_cover,
)
from repro.engine.order import hilbert_index

UNIT = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestShardRangeAndConstruction:
    def test_even_tiles_the_key_space(self):
        for workers in (1, 2, 3, 4, 7, 16):
            shard_map = ShardMap.even(workers)
            assert shard_map.ranges[0].lo == 0
            assert shard_map.ranges[-1].hi == 4**shard_map.order
            for left, right in zip(shard_map.ranges, shard_map.ranges[1:]):
                assert left.hi == right.lo

    def test_gaps_and_overlaps_rejected(self):
        top = 4**8
        with pytest.raises(ValueError):
            ShardMap([ShardRange(0, 10, 0), ShardRange(11, top, 1)])
        with pytest.raises(ValueError):
            ShardMap([ShardRange(0, 10, 0), ShardRange(9, top, 1)])
        with pytest.raises(ValueError):
            ShardMap([ShardRange(5, top, 0)])

    def test_round_trip_through_dicts(self):
        shard_map = ShardMap.even(5)
        clone = ShardMap.from_dicts(shard_map.as_dicts(), order=8)
        assert clone.ranges == shard_map.ranges

    def test_split_moves_the_upper_half(self):
        shard_map = ShardMap.even(2)
        lo, hi = shard_map.ranges[0].lo, shard_map.ranges[0].hi
        middle = (lo + hi) // 2
        split = shard_map.split(lo, middle, new_worker=2)
        assert split.range_at(lo) == ShardRange(lo, middle, 0)
        assert split.range_at(middle) == ShardRange(middle, hi, 2)
        with pytest.raises(ValueError):
            shard_map.split(lo, lo, new_worker=2)  # not strictly inside


class TestOwnership:
    @settings(max_examples=200)
    @given(UNIT, UNIT)
    def test_owner_matches_hilbert_key(self, x, y):
        shard_map = ShardMap.even(4)
        key = hilbert_index(x, y, order=shard_map.order)
        assert shard_map.owner_of(x, y) == shard_map.owner_of_key(key)

    def test_out_of_range_points_clamp_like_the_index(self):
        shard_map = ShardMap.even(3)
        for x, y in [(-0.5, 0.2), (1.7, 0.2), (0.3, -2.0), (2.0, 2.0)]:
            key = hilbert_index(x, y, order=shard_map.order)
            assert shard_map.owner_of(x, y) == shard_map.owner_of_key(key)


class TestRegionCovers:
    @settings(max_examples=60)
    @given(UNIT, UNIT, UNIT, UNIT, st.integers(2, 6))
    def test_bounds_cover_contains_every_interior_owner(
        self, x0, y0, x1, y1, workers
    ):
        if x1 < x0:
            x0, x1 = x1, x0
        if y1 < y0:
            y0, y1 = y1, y0
        shard_map = ShardMap.even(workers)
        owners = shard_map.workers_for_bounds((x0, y0, x1, y1))
        rng = random.Random(17)
        for _ in range(25):
            px = x0 + rng.random() * (x1 - x0)
            py = y0 + rng.random() * (y1 - y0)
            assert shard_map.owner_of(px, py) in owners

    @settings(max_examples=60)
    @given(UNIT, UNIT, st.floats(0.0, 0.4, allow_nan=False))
    def test_circle_cover_contains_every_interior_owner(self, cx, cy, r):
        shard_map = ShardMap.even(4)
        owners = shard_map.workers_for_circle(cx, cy, r)
        rng = random.Random(23)
        for _ in range(30):
            angle = rng.random() * 2.0 * math.pi
            distance = r * math.sqrt(rng.random())
            px = cx + distance * math.cos(angle)
            py = cy + distance * math.sin(angle)
            if 0.0 <= px <= 1.0 and 0.0 <= py <= 1.0:
                assert shard_map.owner_of(px, py) in owners

    def test_circle_cover_is_a_strict_subset_for_small_discs(self):
        shard_map = ShardMap.even(8)
        owners = shard_map.workers_for_circle(0.1, 0.1, 0.01)
        assert len(owners) < len(shard_map.all_workers())

    def test_cell_cover_caps_out_as_fan_out_signal(self):
        # the whole unit square touches every cell — far over the cap
        assert cell_cover((0.0, 0.0, 1.0, 1.0), order=8) == []
        small = cell_cover((0.4, 0.4, 0.401, 0.401), order=8)
        assert small and len(small) <= CELL_COVER_CAP
