"""Chaos suite: fault injection, replication, failover, recovery.

Two layers of proof:

* **Deterministic** — :class:`FaultyBackend` proxies over in-process
  :class:`LocalShard` backends, every fault decided by a seeded RNG
  (``REPRO_CHAOS_SEED`` overrides the seed; a failing run replays
  bit-identically).  Covers retry policy, health transitions, replica
  failover, degraded results, mirror-dirty semantics, and rebuilds.

* **Real processes** — ``start_cluster`` subprocess workers killed with
  ``SIGKILL`` mid-trace; the cluster must keep answering, post-failover
  reads must match a single-process oracle, and no acked write may be
  lost.  Run standalone via ``make test-chaos``.

Also home to the teardown-path tests the robustness issue calls out:
double-close, close-while-streaming, and snapshot version-skew /
corruption handling.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterDegradedError,
    FaultSpec,
    FaultyBackend,
    HealthTracker,
    LocalShard,
    RemoteShard,
    RetryPolicy,
    ShardUnavailableError,
)
from repro.cluster.launcher import start_cluster
from repro.cluster.persist import (
    load_cluster_state,
    restore_cluster,
    save_cluster,
)
from repro.cluster.router import RouterThread
from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.query.spec import KnnQuery, NearestQuery, WindowQuery
from repro.server import ConnectionLost, QueryClient, RemoteError
from repro.server.protocol import PROTOCOL_VERSION, encode_frame
from repro.workloads import uniform_points

#: Every probabilistic decision in this suite derives from this seed,
#: so `REPRO_CHAOS_SEED=<n> make test-chaos` replays a failure exactly.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1307"))

N_POINTS = 240


def chaos_points(n=N_POINTS, seed_offset=0):
    return [
        (p.x, p.y) for p in uniform_points(n, seed=CHAOS_SEED + seed_offset)
    ]


def build_oracle(points):
    return SpatialDatabase.from_points([Point(x, y) for x, y in points])


def fresh_shards(count):
    return [LocalShard(SpatialDatabase()) for _ in range(count)]


PROBE_SPECS = [
    WindowQuery((0.05, 0.05, 0.95, 0.95)),
    WindowQuery((0.2, 0.6, 0.7, 0.9)),
    KnnQuery(Point(0.5, 0.5), 17),
    KnnQuery(Point(0.1, 0.85), 9),
    NearestQuery(Point(0.42, 0.13)),
]


# ---------------------------------------------------------------------------
# fault primitives: deterministic on their own
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_under_a_seed(self):
        a = RetryPolicy(jitter_seed=CHAOS_SEED)
        b = RetryPolicy(jitter_seed=CHAOS_SEED)
        assert [a.backoff_s(i) for i in range(5)] == [
            b.backoff_s(i) for i in range(5)
        ]

    def test_backoff_grows_exponentially_within_jitter_bounds(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, max_backoff_s=10.0, jitter_seed=CHAOS_SEED
        )
        for index in range(4):
            raw = 0.1 * 2**index
            backoff = policy.backoff_s(index)
            assert 0.5 * raw <= backoff <= raw

    def test_backoff_clamps_at_max(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, max_backoff_s=1.5, jitter_seed=CHAOS_SEED
        )
        assert policy.backoff_s(10) <= 1.5

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestHealthTracker:
    def test_up_suspect_down_and_revival(self):
        tracker = HealthTracker(down_after=2)
        assert tracker.state == "up" and not tracker.is_down
        assert tracker.mark_failure() == "suspect"
        assert tracker.mark_failure() == "down"
        assert tracker.is_down
        tracker.mark_success()
        assert tracker.state == "up"

    def test_reset_clears_history(self):
        tracker = HealthTracker(down_after=1)
        tracker.mark_failure()
        assert tracker.is_down
        tracker.reset()
        assert tracker.state == "up"


class TestFaultyBackend:
    def test_crash_on_call_is_permanent_and_logged(self):
        backend = FaultyBackend(
            LocalShard(SpatialDatabase()),
            FaultSpec(seed=CHAOS_SEED, crash_on_call=2),
        )
        assert backend.insert(0.1, 0.2) == 0
        for _ in range(3):
            with pytest.raises(ConnectionRefusedError):
                backend.query_ids(WindowQuery((0, 0, 1, 1)))
        assert backend.injected == 3
        assert all(kind == "crash" for _, kind in backend.log)

    def test_drop_rate_replays_identically(self):
        def run():
            backend = FaultyBackend(
                LocalShard(SpatialDatabase()),
                FaultSpec(seed=CHAOS_SEED, drop_rate=0.5),
            )
            outcomes = []
            for index in range(40):
                try:
                    backend.insert(index / 100.0, index / 100.0)
                    outcomes.append("ok")
                except ConnectionError:
                    outcomes.append("drop")
            return outcomes

        first, second = run(), run()
        assert first == second
        assert "drop" in first and "ok" in first

    def test_reset_fires_after_the_apply(self):
        db = SpatialDatabase()
        backend = FaultyBackend(
            LocalShard(db), FaultSpec(seed=CHAOS_SEED, reset_rate=1.0)
        )
        with pytest.raises(ConnectionResetError):
            backend.insert(0.3, 0.4)
        # the ambiguous failure: the row landed even though the caller
        # saw a connection reset
        assert len(db) == 1

    def test_ping_reports_crash(self):
        backend = FaultyBackend(
            LocalShard(SpatialDatabase()),
            FaultSpec(seed=CHAOS_SEED, crash_on_call=1),
        )
        assert backend.ping() is False


# ---------------------------------------------------------------------------
# coordinator failover over injected faults (LocalShard, deterministic)
# ---------------------------------------------------------------------------

# One call per backend happens at bulk load (a single extend), so a
# crash_on_call of 2 means "healthy through load, dead forever after".
CRASH_AFTER_LOAD = FaultSpec(seed=CHAOS_SEED, crash_on_call=2)


def build_replicated(points, workers=3, crash_primary=None, crash_replica=None):
    """Coordinator over LocalShards with replicas; optionally one
    primary / replica wrapped to crash after the bulk load."""
    backends = []
    for worker in range(workers):
        shard = LocalShard(SpatialDatabase())
        if worker == crash_primary:
            shard = FaultyBackend(shard, CRASH_AFTER_LOAD)
        backends.append(shard)
    replicas = []
    for slot in range(workers):
        shard = LocalShard(SpatialDatabase())
        if slot == crash_replica:
            shard = FaultyBackend(shard, CRASH_AFTER_LOAD)
        replicas.append(shard)
    coordinator = ClusterCoordinator(backends, replicas=replicas)
    coordinator.bulk_load(points)
    return coordinator


class TestReplicaFailover:
    def test_reads_fail_over_and_match_oracle(self):
        points = chaos_points()
        oracle = build_oracle(points)
        coordinator = build_replicated(points, crash_primary=1)
        try:
            for spec in PROBE_SPECS:
                assert coordinator.query(spec) == oracle.query(spec).ids()
            section = coordinator.cluster_section()
            assert section["failovers"] > 0
            assert section["degraded_results"] == 0
            assert coordinator.health_snapshot()["primaries"][1] != "up"
        finally:
            coordinator.close()

    def test_streams_fail_over_mid_iteration(self):
        points = chaos_points()
        oracle = build_oracle(points)
        coordinator = build_replicated(points, crash_primary=0)
        try:
            spec = KnnQuery(Point(0.5, 0.5), None, limit=60)
            stream = coordinator.stream(spec)
            got = list(stream)
            assert got == oracle.query(spec).ids()
            assert not stream.degraded
        finally:
            coordinator.close()

    def test_write_to_dead_primary_is_not_acked(self):
        points = chaos_points()
        coordinator = build_replicated(points, crash_primary=0)
        try:
            assert coordinator.shard_map.owner_of(0.001, 0.001) == 0
            live_before = coordinator.total_live
            with pytest.raises(OSError):
                coordinator.insert(0.001, 0.001)
            assert coordinator.total_live == live_before
            # the catalog did not grow: the next acked id (on a live
            # worker) is contiguous
            survivor = next(
                (x, y)
                for x, y in chaos_points(400, seed_offset=5)
                if coordinator.shard_map.owner_of(x, y) != 0
            )
            assert coordinator.insert(*survivor) == len(points)
        finally:
            coordinator.close()

    def test_mirror_failure_marks_dirty_then_rebuild_recovers(self):
        points = chaos_points()
        coordinator = build_replicated(points, crash_replica=2)
        try:
            # find a point owned by worker 2 so its mirror write fails
            target = next(
                (x, y)
                for x, y in chaos_points(400, seed_offset=7)
                if coordinator.shard_map.owner_of(x, y) == 2
            )
            gid = coordinator.insert(*target)  # acked: primary applied
            section = coordinator.cluster_section()
            assert section["mirror_failures"] >= 1
            assert section["replica_dirty"][2] is True
            assert gid in coordinator.query(
                WindowQuery((0.0, 0.0, 1.0, 1.0))
            )
            # a dirty replica must not serve failover reads; rebuilding
            # onto a fresh backend clears the dirty bit
            restored = coordinator.rebuild_replica(
                2, LocalShard(SpatialDatabase())
            )
            assert restored == coordinator.live_counts[2]
            section = coordinator.cluster_section()
            assert section["replica_dirty"][2] is False
            assert section["recoveries"] >= 1
        finally:
            coordinator.close()

    def test_rebuild_worker_restores_from_catalog(self):
        points = chaos_points()
        oracle = build_oracle(points)
        coordinator = build_replicated(points, crash_primary=1)
        try:
            spec = PROBE_SPECS[0]
            assert coordinator.query(spec) == oracle.query(spec).ids()
            rows = coordinator.rebuild_worker(
                1, LocalShard(SpatialDatabase())
            )
            assert rows == coordinator.live_counts[1] > 0
            assert coordinator.health_snapshot()["primaries"][1] == "up"
            for probe in PROBE_SPECS:
                assert coordinator.query(probe) == oracle.query(probe).ids()
        finally:
            coordinator.close()


class TestDegradedResults:
    def test_unreplicated_loss_raises_with_partial_ids(self):
        points = chaos_points()
        oracle = build_oracle(points)
        backends = fresh_shards(3)
        backends[1] = FaultyBackend(backends[1], CRASH_AFTER_LOAD)
        coordinator = ClusterCoordinator(backends)
        coordinator.bulk_load(points)
        spec = WindowQuery((0.0, 0.0, 1.0, 1.0))
        with pytest.raises(ClusterDegradedError) as excinfo:
            coordinator.query(spec)
        error = excinfo.value
        assert error.shards_failed == [1]
        full = oracle.query(spec).ids()
        assert error.ids and set(error.ids) < set(full)

    def test_unreplicated_stream_flags_degraded(self):
        points = chaos_points()
        backends = fresh_shards(3)
        backends[2] = FaultyBackend(backends[2], CRASH_AFTER_LOAD)
        coordinator = ClusterCoordinator(backends)
        coordinator.bulk_load(points)
        stream = coordinator.stream(KnnQuery(Point(0.5, 0.5), None))
        got = list(stream)
        assert stream.degraded and 2 in stream.shards_failed
        assert got  # the surviving shards still answered

    def test_scrambled_shard_order_never_leaks(self):
        points = chaos_points()
        oracle = build_oracle(points)
        backends = [
            FaultyBackend(
                LocalShard(SpatialDatabase()),
                FaultSpec(seed=CHAOS_SEED + worker, scramble_order=True),
            )
            for worker in range(3)
        ]
        coordinator = ClusterCoordinator(backends)
        coordinator.bulk_load(points)
        scrambles = 0
        for spec in PROBE_SPECS:
            assert coordinator.query(spec) == oracle.query(spec).ids()
        scrambles = sum(
            1
            for backend in backends
            for _, kind in backend.log
            if kind == "scramble"
        )
        assert scrambles > 0  # the harness actually reordered results


# ---------------------------------------------------------------------------
# the wire path: degraded frames, unavailable writes, dead-peer detection
# ---------------------------------------------------------------------------


class TestDegradedWireFrames:
    @pytest.fixture()
    def degraded_router(self):
        points = chaos_points()
        backends = fresh_shards(2)
        backends[0] = FaultyBackend(backends[0], CRASH_AFTER_LOAD)
        coordinator = ClusterCoordinator(backends)
        coordinator.bulk_load(points)
        with RouterThread(coordinator) as router:
            yield router, build_oracle(points)

    def test_query_result_carries_degraded_fields(self, degraded_router):
        router, oracle = degraded_router
        with QueryClient(router.host, router.port) as client:
            result = client.query(WindowQuery((0.0, 0.0, 1.0, 1.0)))
            assert result.degraded is True
            assert result.shards_failed == [0]
            full = oracle.query(WindowQuery((0.0, 0.0, 1.0, 1.0))).ids()
            assert set(result.ids) < set(full)

    def test_stream_done_chunk_carries_degraded_fields(
        self, degraded_router
    ):
        router, _ = degraded_router
        with QueryClient(router.host, router.port) as client:
            with client.stream(KnnQuery(Point(0.5, 0.5), None)) as stream:
                rows = list(stream)
            assert rows
            assert stream.degraded is True
            assert stream.shards_failed == [0]

    def test_write_to_lost_shard_returns_unavailable(self, degraded_router):
        router, _ = degraded_router
        with QueryClient(router.host, router.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.insert(0.001, 0.001)  # worker 0's corner
            assert excinfo.value.code == "unavailable"
            # the connection survives an unavailable write
            assert client.query(NearestQuery(Point(0.9, 0.9))).ids


class TestDeadPeerDetection:
    def test_router_shutdown_surfaces_connection_lost(self):
        coordinator = ClusterCoordinator(fresh_shards(2))
        coordinator.bulk_load(chaos_points(40))
        router = RouterThread(coordinator)
        client = QueryClient(router.host, router.port, timeout=5.0)
        assert client.query(NearestQuery(Point(0.5, 0.5))).ids
        router.close()
        # a read-only poll proves the peer is *gone*, not merely idle
        with pytest.raises(ConnectionLost):
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                client.notifications(timeout=0.05)
        client.close()

    def test_idle_poll_distinguishes_eof_from_timeout(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        hello = encode_frame(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "server": "fake",
                "points": 0,
            }
        )
        holder = {}

        def serve_one():
            conn, _ = listener.accept()
            conn.sendall(hello)
            holder["conn"] = conn

        thread = threading.Thread(target=serve_one, daemon=True)
        thread.start()
        try:
            client = QueryClient("127.0.0.1", port, timeout=5.0)
            thread.join(timeout=5.0)
            # idle peer: a finite poll returns no notifications
            assert client.notifications(timeout=0.05) == []
            holder["conn"].close()
            # dead peer: the same poll now surfaces ConnectionLost, even
            # with a zero time budget (the EOF poll runs regardless)
            with pytest.raises(ConnectionLost):
                for _ in range(50):
                    client.notifications(timeout=0.0)
                    time.sleep(0.01)
            client.close()
        finally:
            listener.close()


# ---------------------------------------------------------------------------
# teardown paths (double-close, close-while-streaming, OSError-on-close)
# ---------------------------------------------------------------------------


class _ExplodingClient:
    """Stand-in for a pooled QueryClient whose socket already died."""

    def close(self):
        raise OSError("already gone")


class TestTeardownPaths:
    def test_remote_shard_close_is_idempotent_and_swallows_oserror(self):
        shard = RemoteShard("127.0.0.1", 1)  # never dialed: lazy connect
        shard._pool.append(_ExplodingClient())
        shard.close()
        shard.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            shard.query_ids(WindowQuery((0, 0, 1, 1)))

    def test_unreachable_worker_exhausts_retries_quickly(self):
        shard = RemoteShard(
            "127.0.0.1",
            1,  # nothing listens on port 1
            retry=RetryPolicy(
                attempts=3,
                base_backoff_s=0.001,
                deadline_s=2.0,
                jitter_seed=CHAOS_SEED,
            ),
        )
        with pytest.raises(ShardUnavailableError):
            shard.query_ids(WindowQuery((0, 0, 1, 1)))
        shard.close()

    def test_router_double_close(self):
        coordinator = ClusterCoordinator(fresh_shards(2))
        coordinator.bulk_load(chaos_points(40))
        router = RouterThread(coordinator)
        router.close()
        router.close()

    def test_router_close_while_client_streams(self):
        coordinator = ClusterCoordinator(fresh_shards(2))
        coordinator.bulk_load(chaos_points(80))
        router = RouterThread(coordinator)
        client = QueryClient(router.host, router.port, timeout=5.0)
        stream = client.stream(
            KnnQuery(Point(0.5, 0.5), None), chunk_size=4
        )
        assert next(iter(stream)) is not None
        router.close()
        with pytest.raises((OSError, RemoteError, StopIteration)):
            for _ in range(1000):
                next(stream)
        client.close()

    def test_cluster_stream_close_is_idempotent(self):
        coordinator = ClusterCoordinator(fresh_shards(2))
        coordinator.bulk_load(chaos_points(40))
        stream = coordinator.stream(KnnQuery(Point(0.5, 0.5), None))
        next(stream)
        stream.close()
        stream.close()
        with pytest.raises(StopIteration):
            next(stream)


class TestSnapshotSkewAndCorruption:
    def make_snapshot(self, tmp_path):
        coordinator = ClusterCoordinator(fresh_shards(2))
        coordinator.bulk_load(chaos_points(60))
        directory = save_cluster(tmp_path / "snap", coordinator)
        return directory, coordinator

    def test_round_trip_with_replicas_restores_mirrors(self, tmp_path):
        points = chaos_points(60)
        coordinator = build_replicated(points, workers=2)
        directory = save_cluster(tmp_path / "snap", coordinator)
        restored = restore_cluster(
            directory,
            fresh_shards(2),
            replicas=fresh_shards(2),
        )
        try:
            assert restored.replicated
            # kill nothing: a healthy restore answers like the original
            spec = PROBE_SPECS[0]
            assert restored.query(spec) == coordinator.query(spec)
            assert restored.cluster_section()["replica_dirty"] == [
                False,
                False,
            ]
        finally:
            restored.close()
            coordinator.close()

    def test_manifest_version_skew_is_rejected(self, tmp_path):
        directory, _ = self.make_snapshot(tmp_path)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="unsupported"):
            load_cluster_state(directory)

    def test_shard_count_mismatch_is_rejected(self, tmp_path):
        directory, _ = self.make_snapshot(tmp_path)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["shards"][0]["count"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="corrupt"):
            load_cluster_state(directory)

    def test_truncated_shard_file_is_rejected(self, tmp_path):
        directory, _ = self.make_snapshot(tmp_path)
        shard_path = os.path.join(directory, "shard-0.npz")
        with open(shard_path, "r+b") as handle:
            handle.truncate(16)
        with pytest.raises(ValueError, match="corrupt"):
            load_cluster_state(directory)


# ---------------------------------------------------------------------------
# real processes: SIGKILL a primary mid-trace
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestKillNineChaos:
    def test_replicated_cluster_survives_primary_kill(self):
        points = chaos_points(120)
        oracle = build_oracle(points)
        with start_cluster(
            2, points=points, replicas=1, supervise=True
        ) as handle:
            with QueryClient(handle.host, handle.port, timeout=30.0) as client:
                # pre-kill trace: reads match, writes ack and mirror
                spec = WindowQuery((0.1, 0.1, 0.9, 0.9))
                assert client.query(spec).ids == oracle.query(spec).ids()
                acked = []
                for x, y in chaos_points(6, seed_offset=3):
                    ack = client.insert(x, y)
                    acked.append((ack.rows[0], x, y))
                    assert oracle.insert(Point(x, y)) == ack.rows[0]

                # kill -9 one primary mid-trace
                victim = handle.workers[0]
                os.kill(victim.pid, signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while victim.alive and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert not victim.alive

                # the cluster keeps answering through the replica, and
                # post-failover reads are identical to the oracle —
                # including every acked write (nothing lost)
                for probe in PROBE_SPECS:
                    result = client.query(probe)
                    assert result.ids == oracle.query(probe).ids()
                    assert not result.degraded
                everything = client.query(WindowQuery((0.0, 0.0, 1.0, 1.0)))
                for gid, _, _ in acked:
                    assert gid in everything.ids

                # supervision respawns the dead worker and reloads its
                # rows from the catalog; serving returns to normal
                supervisor = handle.supervisor
                deadline = time.monotonic() + 60.0
                while (
                    supervisor.restarts < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.2)
                assert supervisor.restarts >= 1, supervisor.events
                assert handle.workers[0].alive
                health = handle.coordinator.health_snapshot()
                assert health["primaries"][0] == "up"
                for probe in PROBE_SPECS:
                    assert client.query(probe).ids == oracle.query(
                        probe
                    ).ids()
                # writes to the rebuilt shard ack again
                ack = client.insert(0.001, 0.001)
                assert oracle.insert(Point(0.001, 0.001)) == ack.rows[0]
                assert client.query(
                    NearestQuery(Point(0.001, 0.001))
                ).ids == [ack.rows[0]]

    def test_unreplicated_cluster_degrades_loudly(self):
        points = chaos_points(120)
        oracle = build_oracle(points)
        with start_cluster(2, points=points) as handle:
            with QueryClient(handle.host, handle.port, timeout=30.0) as client:
                victim = handle.workers[1]
                os.kill(victim.pid, signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while victim.alive and time.monotonic() < deadline:
                    time.sleep(0.05)

                spec = WindowQuery((0.0, 0.0, 1.0, 1.0))
                result = client.query(spec)
                assert result.degraded is True
                assert result.shards_failed == [1]
                full = oracle.query(spec).ids()
                assert set(result.ids) < set(full)

                # a write owned by the dead shard is refused un-acked
                target = next(
                    (x, y)
                    for x, y in chaos_points(400, seed_offset=9)
                    if handle.coordinator.shard_map.owner_of(x, y) == 1
                )
                with pytest.raises(RemoteError) as excinfo:
                    client.insert(*target)
                assert excinfo.value.code == "unavailable"
