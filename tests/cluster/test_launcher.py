"""Process tests: spawned worker replicas behind the cluster router.

One real topology — ``spawn_worker`` subprocesses on ephemeral ports,
``RemoteShard`` backends, the router thread — exercised once per
module (process spawning is the expensive part), then probed through
the unmodified client.
"""

import pytest

from repro.cluster.launcher import start_cluster
from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.query.spec import KnnQuery, NearestQuery, WindowQuery
from repro.server import QueryClient
from repro.workloads import uniform_points

N_POINTS = 150


@pytest.fixture(scope="module")
def points():
    return [(p.x, p.y) for p in uniform_points(N_POINTS, seed=41)]


@pytest.fixture(scope="module")
def cluster(points):
    with start_cluster(2, points=points) as handle:
        yield handle


def test_workers_run_on_distinct_ephemeral_ports(cluster):
    ports = [worker.port for worker in cluster.workers]
    assert len(set(ports)) == 2 and all(port > 0 for port in ports)
    assert all(worker.alive for worker in cluster.workers)


def test_queries_through_real_processes_match_oracle(cluster, points):
    oracle = SpatialDatabase.from_points([Point(x, y) for x, y in points])
    with QueryClient(cluster.host, cluster.port) as client:
        assert client.hello["points"] == N_POINTS
        for spec in (
            WindowQuery((0.1, 0.1, 0.8, 0.8)),
            KnnQuery(Point(0.5, 0.5), 11),
            NearestQuery(Point(0.9, 0.1)),
        ):
            assert client.query(spec).ids == oracle.query(spec).ids()
        with client.stream(KnnQuery(Point(0.3, 0.3), None)) as stream:
            got = []
            for row in stream:
                got.append(row)
                if len(got) == 12:
                    break
        assert got == oracle.query(KnnQuery(Point(0.3, 0.3), None)).first(12)


def test_writes_and_merged_stats_through_real_processes(cluster):
    with QueryClient(cluster.host, cluster.port) as client:
        before = client.stats()["cluster"]["points"]
        ack = client.insert(0.123, 0.456)
        assert ack.points == before + 1
        frame = client.stats()
        assert frame["cluster"]["workers"] == 2
        assert "latency" in frame  # real workers serve latency sections
        assert frame["server"]["writes_total"] >= 1


def test_start_cluster_rejects_bad_arguments():
    with pytest.raises(ValueError):
        start_cluster(0)
    with pytest.raises(ValueError):
        start_cluster(1, points=[(0.1, 0.2)], snapshot_state={"x": 1})
