"""Wire tests: the cluster router speaks protocol v1 to real clients.

The router runs over in-process :class:`LocalShard` backends (fast, no
subprocesses — the spawned-worker path is covered by
``test_launcher.py``) and is exercised through the unmodified
:class:`QueryClient`, plus raw sockets for the frame-level edges the
client never produces.
"""

import json
import socket

import pytest

from repro.cluster import ClusterCoordinator, LocalShard
from repro.cluster.router import RouterThread
from repro.core.database import SpatialDatabase
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.query.spec import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)
from repro.server import QueryClient, RemoteError, ServerThread
from repro.workloads import make_query_areas, uniform_points

N_POINTS = 500


@pytest.fixture(scope="module")
def points():
    return [(p.x, p.y) for p in uniform_points(N_POINTS, seed=29)]


@pytest.fixture(scope="module")
def oracle(points):
    return SpatialDatabase.from_points([Point(x, y) for x, y in points])


@pytest.fixture(scope="module")
def router(points):
    coordinator = ClusterCoordinator(
        [LocalShard(SpatialDatabase()) for _ in range(3)]
    )
    coordinator.bulk_load(points)
    with RouterThread(coordinator) as thread:
        yield thread


@pytest.fixture()
def client(router):
    with QueryClient(router.host, router.port) as client:
        yield client


class TestEagerQueries:
    def test_hello_reports_cluster_totals(self, client):
        assert client.hello["protocol"] == 1
        assert client.hello["points"] == N_POINTS
        assert "cluster" in client.hello["server"]

    def test_all_kinds_match_oracle(self, client, oracle):
        specs = [
            AreaQuery(make_query_areas(0.03, 1, seed=61)[0]),
            WindowQuery((0.2, 0.2, 0.7, 0.7)),
            KnnQuery(Point(0.4, 0.6), 9),
            NearestQuery(Point(0.1, 0.8)),
            UnionQuery(
                (
                    WindowQuery((0.1, 0.1, 0.5, 0.5)),
                    AreaQuery(Circle(Point(0.5, 0.5), 0.25)),
                ),
                limit=40,
            ),
        ]
        for spec in specs:
            result = client.query(spec)
            assert result.ids == oracle.query(spec).ids()
            assert result.stats["method"] == "cluster"
            assert result.stats["result_size"] == len(result.ids)

    def test_explain_renders_the_routing_decision(self, client):
        result = client.query(
            WindowQuery((0.2, 0.2, 0.7, 0.7)), explain=True
        )
        assert result.explain is not None
        assert "shard" in result.explain.lower()

    def test_bad_spec_maps_to_bad_spec(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.query(
                AreaQuery(Polygon([(0, 0), (1, 1), (0.5, 0.5), (0.2, 0.2)]))
            )
        assert excinfo.value.code == "bad-spec"


class TestStreams:
    def test_full_drain_has_exact_done_semantics(self, client, oracle):
        spec = UnionQuery(
            (
                WindowQuery((0.1, 0.1, 0.5, 0.5)),
                AreaQuery(Circle(Point(0.5, 0.5), 0.25)),
            )
        )
        with client.stream(spec, chunk_size=7) as stream:
            assert list(stream) == oracle.query(spec).ids()

    def test_chunk_size_divides_result_exactly(self, client, oracle):
        # a result that is an exact multiple of chunk_size exercises the
        # trailing empty done-chunk (done is never guessed from a short
        # chunk)
        spec = KnnQuery(Point(0.5, 0.5), 24)
        with client.stream(spec, chunk_size=8) as stream:
            assert list(stream) == oracle.query(spec).ids()

    def test_unbounded_knn_breaks_and_cancels(self, client, oracle):
        spec = KnnQuery(Point(0.4, 0.6), None)
        want = oracle.query(spec).first(30)
        stream = client.stream(spec, chunk_size=16)
        got = []
        for row in stream:
            got.append(row)
            if len(got) == 30:
                break
        stream.close()
        assert got == want
        # the connection survives the cancel: a follow-up query works
        assert client.query(NearestQuery(Point(0.4, 0.6))).ids


class TestWritesAndStats:
    def test_writes_route_to_owning_shards(self, router, oracle):
        with QueryClient(router.host, router.port) as client:
            ack = client.insert(0.91, 0.13)
            expected = oracle.insert(Point(0.91, 0.13))
            assert list(ack.rows) == [expected]
            batch = [(0.33 + 0.001 * i, 0.77 - 0.001 * i) for i in range(20)]
            ack = client.extend(batch)
            expected_rows = oracle.extend([Point(x, y) for x, y in batch])
            assert list(ack.rows) == expected_rows
            client.delete(expected_rows[3])
            oracle.delete(expected_rows[3])
            everything = WindowQuery((0.0, 0.0, 1.0, 1.0))
            assert (
                client.query(everything).ids
                == oracle.query(everything).ids()
            )
            with pytest.raises(RemoteError) as excinfo:
                client.delete(expected_rows[3])
            assert excinfo.value.code == "bad-request"

    def test_stats_frame_merges_and_adds_cluster_section(self, client):
        client.query(NearestQuery(Point(0.2, 0.2)))
        frame = client.stats()
        for section in ("server", "coalescer", "engine", "cluster"):
            assert section in frame
        assert frame["cluster"]["workers"] == 3
        assert frame["cluster"]["points"] >= N_POINTS
        assert frame["cluster"]["router"]["requests_total"] >= 1
        assert len(frame["cluster"]["ranges"]) >= 3

    def test_subscribe_rejected_with_bad_request(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.subscribe(WindowQuery((0.0, 0.0, 0.5, 0.5)))
        assert excinfo.value.code == "bad-request"


class TestFrameEdges:
    def read_frames(self, sock, count):
        buffer = b""
        frames = []
        while len(frames) < count:
            chunk = sock.recv(65536)
            assert chunk, "router closed unexpectedly"
            buffer += chunk
            while b"\n" in buffer and len(frames) < count:
                line, buffer = buffer.split(b"\n", 1)
                frames.append(json.loads(line))
        return frames

    def test_duplicate_inflight_id_is_bad_request(self, router):
        with socket.create_connection(
            (router.host, router.port), timeout=10
        ) as sock:
            self.read_frames(sock, 1)  # hello
            frame = {
                "type": "query",
                "id": 1,
                "spec": {"kind": "knn", "point": [0.5, 0.5], "k": None},
                "stream": True,
                "chunk_size": 4,
            }
            sock.sendall((json.dumps(frame) + "\n").encode())
            first = self.read_frames(sock, 1)[0]
            assert first["type"] == "chunk" and not first["done"]
            sock.sendall((json.dumps(frame) + "\n").encode())
            error = self.read_frames(sock, 1)[0]
            assert error["type"] == "error"
            assert error["code"] == "bad-request"

    def test_malformed_json_is_bad_frame_and_survivable(self, router):
        with socket.create_connection(
            (router.host, router.port), timeout=10
        ) as sock:
            self.read_frames(sock, 1)  # hello
            sock.sendall(b"{not json\n")
            error = self.read_frames(sock, 1)[0]
            assert error["type"] == "error"
            assert error["code"] == "bad-frame"
            sock.sendall(b'{"type": "stats"}\n')
            stats = self.read_frames(sock, 1)[0]
            assert stats["type"] == "stats"


class TestEphemeralPorts:
    def test_concurrent_server_threads_bind_distinct_ports(self):
        db = SpatialDatabase.from_points(
            [Point(p.x, p.y) for p in uniform_points(50, seed=3)]
        )
        with ServerThread(db) as first, ServerThread(db) as second:
            assert first.port != 0 and second.port != 0
            assert first.port != second.port
            with QueryClient(first.host, first.port) as probe:
                assert probe.hello["points"] == 50
