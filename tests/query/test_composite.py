"""Composite specs: construction, set-semantics equivalence, round-trip.

The load-bearing property: for any leaves, the composite's id list
equals the corresponding Python set operation over brute-force leaf
results — on every execution surface (eager single query, batch, and
the streaming path), since all three must never drift.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import SpatialDatabase
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.serialize import dump_specs, load_specs, spec_to_dict
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)

POLY = Polygon([(0.1, 0.1), (0.6, 0.15), (0.55, 0.6), (0.15, 0.5)])
RECT = Rect(0.2, 0.2, 0.7, 0.8)
W1 = WindowQuery(Rect(0.0, 0.0, 0.5, 0.5))
W2 = WindowQuery(Rect(0.25, 0.25, 0.75, 0.75))


@pytest.fixture(scope="module")
def db(uniform_1000):
    """A 300-point database shared by the equivalence tests."""
    return SpatialDatabase.from_points(uniform_1000[:300]).prepare()


class TestConstruction:
    def test_composite_base_is_abstract(self):
        with pytest.raises(TypeError):
            CompositeQuery((W1, W2))

    def test_needs_at_least_two_parts(self):
        for cls in (UnionQuery, IntersectionQuery, DifferenceQuery):
            with pytest.raises(ValueError):
                cls((W1,))
            with pytest.raises(ValueError):
                cls(())

    def test_leaves_must_be_region_kinds(self):
        with pytest.raises(TypeError):
            UnionQuery((W1, KnnQuery((0.5, 0.5), 3)))
        with pytest.raises(TypeError):
            IntersectionQuery((NearestQuery((0.1, 0.1)), W1))
        with pytest.raises(TypeError):
            DifferenceQuery((W1, "not a spec"))

    def test_distances_projection_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery((W1, W2), select="distances")

    def test_only_auto_method(self):
        with pytest.raises(ValueError):
            UnionQuery((W1, W2), method="voronoi")

    def test_nesting_and_leaf_iteration(self):
        nested = DifferenceQuery(
            (UnionQuery((W1, W2)), AreaQuery(POLY))
        )
        assert list(nested.iter_leaves()) == [W1, W2, AreaQuery(POLY)]
        assert nested.streams()

    def test_anchor_covers_parts(self):
        union = UnionQuery((W1, W2))
        anchor = union.anchor()
        assert anchor.min_x <= 0.0 and anchor.max_x >= 0.75
        # difference anchors at its base: the result is a subset of it
        assert DifferenceQuery((W1, W2)).anchor() == W1.rect

    def test_cache_key_normalises_recursively(self):
        a = UnionQuery(
            (
                WindowQuery(W1.rect, method="voronoi", select="points"),
                W2,
            ),
            select="points",
        )
        b = UnionQuery((W1, W2))
        assert a.cache_key() == b.cache_key()
        # any predicate anywhere makes the composite uncacheable
        assert UnionQuery((W1, W2), predicate=lambda p: True).cache_key() is None
        filtered = WindowQuery(W1.rect, predicate=lambda p: True)
        assert UnionQuery((filtered, W2)).cache_key() is None

    def test_describe_mentions_parts(self):
        text = UnionQuery((W1, W2)).describe()
        assert text.startswith("union(")
        assert "window" in text


def brute_window(points, rect):
    return {i for i, p in enumerate(points) if rect.contains_point(p)}


def brute_region(points, region):
    return {i for i, p in enumerate(points) if region.contains_point(p)}


rect_strategy = st.builds(
    lambda x0, y0, w, h: Rect(x0, y0, x0 + w, y0 + h),
    st.floats(0.0, 0.7),
    st.floats(0.0, 0.7),
    st.floats(0.05, 0.3),
    st.floats(0.05, 0.3),
)


class TestSetSemantics:
    @settings(max_examples=25, deadline=None)
    @given(rects=st.lists(rect_strategy, min_size=2, max_size=5))
    def test_union_matches_brute_force_sets(self, db, rects):
        parts = tuple(WindowQuery(r) for r in rects)
        expected = sorted(
            set().union(*(brute_window(db.points, r) for r in rects))
        )
        assert db.query(UnionQuery(parts)).ids() == expected

    @settings(max_examples=25, deadline=None)
    @given(rects=st.lists(rect_strategy, min_size=2, max_size=5))
    def test_intersection_matches_brute_force_sets(self, db, rects):
        parts = tuple(WindowQuery(r) for r in rects)
        sets = [brute_window(db.points, r) for r in rects]
        expected = sorted(sets[0].intersection(*sets[1:]))
        assert db.query(IntersectionQuery(parts)).ids() == expected

    @settings(max_examples=25, deadline=None)
    @given(rects=st.lists(rect_strategy, min_size=2, max_size=5))
    def test_difference_matches_brute_force_sets(self, db, rects):
        parts = tuple(WindowQuery(r) for r in rects)
        sets = [brute_window(db.points, r) for r in rects]
        expected = sorted(sets[0].difference(*sets[1:]))
        assert db.query(DifferenceQuery(parts)).ids() == expected

    @settings(max_examples=15, deadline=None)
    @given(rects=st.lists(rect_strategy, min_size=2, max_size=4))
    def test_streaming_equals_eager_equals_batch(self, db, rects):
        for cls in (UnionQuery, IntersectionQuery, DifferenceQuery):
            spec = cls(tuple(WindowQuery(r) for r in rects))
            eager = db.query(spec).ids()
            streamed = list(db.query(spec).stream())
            batched = db.query_batch([spec], use_cache=False)[0].ids()
            assert streamed == eager == batched

    def test_mixed_leaf_kinds_and_nesting(self, db):
        area = AreaQuery(POLY)
        circle = AreaQuery(Circle(Point(0.4, 0.4), 0.25))
        spec = DifferenceQuery(
            (UnionQuery((W1, area)), IntersectionQuery((W2, circle)))
        )
        base = brute_window(db.points, W1.rect) | brute_region(
            db.points, POLY
        )
        minus = brute_window(db.points, W2.rect) & brute_region(
            db.points, Circle(Point(0.4, 0.4), 0.25)
        )
        assert db.query(spec).ids() == sorted(base - minus)

    def test_composite_options_apply_to_merged_rows(self, db):
        predicate = lambda p: p.x < 0.4  # noqa: E731
        spec = UnionQuery((W1, W2), predicate=predicate, limit=5)
        merged = sorted(
            brute_window(db.points, W1.rect)
            | brute_window(db.points, W2.rect)
        )
        expected = [i for i in merged if predicate(db.point(i))][:5]
        assert db.query(spec).ids() == expected
        assert list(db.query(spec).stream()) == expected

    def test_leaf_options_apply_before_merge(self, db):
        capped = WindowQuery(W1.rect, limit=3)
        expected = sorted(
            set(sorted(brute_window(db.points, W1.rect))[:3])
            | brute_window(db.points, W2.rect)
        )
        assert db.query(UnionQuery((capped, W2))).ids() == expected


class TestSerializeRoundTrip:
    def test_every_new_kind_round_trips(self):
        specs = [
            UnionQuery((W1, W2)),
            IntersectionQuery((W1, AreaQuery(POLY))),
            DifferenceQuery(
                (AreaQuery(Circle(Point(0.3, 0.3), 0.2)), W2), limit=9
            ),
            DifferenceQuery(
                (UnionQuery((W1, W2)), IntersectionQuery((W1, W2))),
                select="points",
            ),
            KnnQuery((0.25, 0.75), None),
            KnnQuery((0.25, 0.75), None, limit=12, method="voronoi"),
        ]
        assert load_specs(dump_specs(specs)) == specs

    def test_unbounded_knn_omits_k_on_the_wire(self):
        data = spec_to_dict(KnnQuery((0.1, 0.2), None))
        assert "k" not in data
        assert load_specs('{"kind": "knn", "point": [0.1, 0.2]}') == [
            KnnQuery((0.1, 0.2), None)
        ]
        assert load_specs(
            '{"kind": "knn", "point": [0.1, 0.2], "k": null}'
        ) == [KnnQuery((0.1, 0.2), None)]

    def test_composite_wire_format_nests_parts(self):
        data = spec_to_dict(UnionQuery((W1, W2)))
        assert data["kind"] == "union"
        assert [part["kind"] for part in data["parts"]] == [
            "window",
            "window",
        ]

    def test_predicate_anywhere_rejects_serialisation(self):
        filtered = WindowQuery(W1.rect, predicate=lambda p: True)
        with pytest.raises(ValueError):
            dump_specs([UnionQuery((filtered, W2))])
