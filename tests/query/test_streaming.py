"""Streaming consumption: unbounded kNN, lazy composites, shim silence.

The laziness proofs use the predicate contract (one invocation per
examined candidate): counting predicate calls counts exactly how much of
the database a streaming consumption touched.
"""

import itertools
import warnings

import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    AreaQuery,
    KnnQuery,
    UnionQuery,
    WindowQuery,
)

W1 = WindowQuery(Rect(0.1, 0.1, 0.5, 0.5))
W2 = WindowQuery(Rect(0.4, 0.4, 0.8, 0.8))


@pytest.fixture(scope="module")
def db(uniform_1000):
    """A 1000-point database shared by the streaming tests."""
    return SpatialDatabase.from_points(uniform_1000).prepare()


class TestUnboundedKnn:
    def test_spec_validation(self):
        spec = KnnQuery((0.5, 0.5), None)
        assert spec.k is None
        assert spec.streams()
        assert not KnnQuery((0.5, 0.5), 3).streams()
        with pytest.raises(ValueError):
            KnnQuery((0.5, 0.5), -1)
        with pytest.raises(ValueError):
            KnnQuery((0.5, 0.5), 2.5)

    def test_first_examines_only_n_candidates(self, db):
        examined = []
        spec = KnnQuery(
            (0.5, 0.5), None, predicate=lambda p: examined.append(p) or True
        )
        result = db.query(spec)
        first = result.first(10)
        assert len(first) == 10
        assert len(examined) == 10
        assert not result.executed

    def test_iteration_streams_and_takewhile_stops_early(self, db):
        examined = []
        spec = KnnQuery(
            (0.5, 0.5),
            None,
            select="distances",
            predicate=lambda p: examined.append(p) or True,
        )
        anchor = db.query(KnnQuery((0.5, 0.5), 1)).distances()[0]
        result = db.query(spec)
        close = list(
            itertools.takewhile(lambda d: d <= anchor, iter(result))
        )
        assert close and not result.executed
        assert len(examined) < len(db)

    def test_stream_prefix_matches_bounded_knn(self, db):
        streamed = db.query(KnnQuery((0.3, 0.7), None)).first(25)
        assert streamed == db.query(KnnQuery((0.3, 0.7), 25)).ids()

    def test_eager_unbounded_knn_ranks_everything(self, db):
        result = db.query(KnnQuery((0.2, 0.2), None))
        ids = result.ids()
        assert result.executed
        assert sorted(ids) == list(range(len(db)))
        # limit still caps the eager form
        capped = db.query(KnnQuery((0.2, 0.2), None, limit=7)).ids()
        assert capped == ids[:7]

    def test_limit_caps_the_stream(self, db):
        spec = KnnQuery((0.6, 0.4), None, limit=4)
        assert db.query(spec).first(10) == db.query(
            KnnQuery((0.6, 0.4), 4)
        ).ids()

    def test_unbounded_knn_in_a_batch(self, db):
        batch = db.query_batch(
            [KnnQuery((0.5, 0.5), None), KnnQuery((0.1, 0.9), 5)]
        )
        assert len(batch[0].ids()) == len(db)
        assert batch[1].ids() == db.query(KnnQuery((0.1, 0.9), 5)).ids()

    def test_distances_projection_streams_sorted(self, db):
        distances = db.query(
            KnnQuery((0.5, 0.5), None, select="distances")
        ).first(20)
        assert distances == sorted(distances)


class TestStreamingComposites:
    def test_first_does_not_memoise(self, db):
        result = db.query(UnionQuery((W1, W2)))
        prefix = result.first(3)
        assert len(prefix) == 3
        assert not result.executed
        assert prefix == db.query(UnionQuery((W1, W2))).ids()[:3]

    def test_iteration_is_lazy_and_matches_eager(self, db):
        spec = UnionQuery((W1, W2))
        result = db.query(spec)
        streamed = list(iter(result))
        assert not result.executed
        assert streamed == db.query(spec).ids()

    def test_projection_applies_to_stream(self, db):
        points = db.query(UnionQuery((W1, W2), select="points")).first(5)
        ids = db.query(UnionQuery((W1, W2))).first(5)
        assert points == [db.point(i) for i in ids]

    def test_len_and_stats_still_memoise(self, db):
        result = db.query(UnionQuery((W1, W2)))
        assert len(result) == len(result.ids())
        assert result.executed
        assert result.stats.method == "composite"

    def test_streaming_leaves_run_through_the_batch_engine(self, db):
        """Streaming keeps cross-sibling sharing: the leaves of a
        streamed composite execute as one engine batch (with seed walks
        etc.), only the merge itself is lazy."""
        from repro.geometry.polygon import Polygon

        parts = tuple(
            AreaQuery(
                Polygon(
                    [
                        (0.2 + d, 0.2 + d),
                        (0.5 + d, 0.25 + d),
                        (0.4 + d, 0.55 + d),
                    ]
                ),
                method="voronoi",
            )
            for d in (0.0, 0.02, 0.04, 0.06)
        )
        db.query(UnionQuery(parts)).first(3)
        stats = db.engine.last_batch_stats
        assert stats.total_queries == 4  # the leaves, batched together
        assert stats.seed_walk_reuses >= 3  # sibling seeds were walked


class TestNoShimNoise:
    def test_streaming_paths_emit_no_deprecation_warnings(self, db):
        """The new paths never route through the legacy shims.

        Equivalent to a ``-W error::DeprecationWarning`` run over the
        streaming and composite surfaces — the pytest ``filterwarnings``
        entries only excuse tests that *intentionally* call the shims.
        """
        from repro.geometry.polygon import Polygon

        area = AreaQuery(
            Polygon([(0.2, 0.2), (0.6, 0.25), (0.5, 0.7)])
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db.query(KnnQuery((0.5, 0.5), None)).first(10)
            db.query(UnionQuery((W1, W2))).first(5)
            db.query(UnionQuery((W1, area))).ids()
            db.query_batch(
                [UnionQuery((W1, W2)), KnnQuery((0.4, 0.4), None)]
            )
            db.explain(UnionQuery((W1, W2)), execute=True)
