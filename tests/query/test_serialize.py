"""Spec JSON serialisation: exact round trips and error handling."""

import json

import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.serialize import (
    dump_specs,
    load_specs,
    region_from_dict,
    region_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.query.spec import AreaQuery, KnnQuery, NearestQuery, WindowQuery

POLY = Polygon([(0.123456789012345, 0.1), (0.5, 0.1), (0.4, 0.62)])

ALL_SPECS = [
    AreaQuery(POLY),
    AreaQuery(POLY, method="traditional", limit=10),
    AreaQuery(Circle(Point(0.25, 0.75), 0.125)),
    WindowQuery(Rect(0.1, 0.2, 0.3, 0.4), select="points"),
    KnnQuery(Point(1 / 3, 2 / 3), 8, method="voronoi"),
    NearestQuery(Point(0.9, 0.1), limit=1),
]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.describe())
def test_round_trip_exact(spec):
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_dump_load_array():
    text = dump_specs(ALL_SPECS)
    assert load_specs(text) == ALL_SPECS
    # valid JSON with one object per spec
    assert len(json.loads(text)) == len(ALL_SPECS)


def test_floats_survive_exactly():
    spec = KnnQuery(Point(0.1 + 0.2, 1e-17), 3)  # awkward doubles
    back = load_specs(dump_specs([spec]))[0]
    assert back.point.x == spec.point.x
    assert back.point.y == spec.point.y


def test_single_object_accepted():
    spec = ALL_SPECS[0]
    assert load_specs(json.dumps(spec_to_dict(spec))) == [spec]


def test_defaults_omitted_from_wire_form():
    data = spec_to_dict(AreaQuery(POLY))
    assert set(data) == {"kind", "region"}
    data = spec_to_dict(KnnQuery((0.5, 0.5), 2, limit=1))
    assert data["limit"] == 1 and "select" not in data


def test_predicates_refuse_to_serialise():
    with pytest.raises(ValueError, match="predicate"):
        spec_to_dict(AreaQuery(POLY, predicate=lambda p: True))


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown query kind"):
        spec_from_dict({"kind": "tessellate"})
    with pytest.raises(ValueError):
        spec_from_dict("not a dict")


def test_unknown_region_type_rejected():
    with pytest.raises(ValueError, match="unknown region type"):
        region_from_dict({"type": "blob"})

    class Opaque:
        pass

    with pytest.raises(ValueError, match="cannot serialise region"):
        region_to_dict(Opaque())


def test_non_array_text_rejected():
    with pytest.raises(ValueError, match="JSON array"):
        load_specs('"just a string"')


def test_wire_method_validation_applies():
    data = spec_to_dict(AreaQuery(POLY))
    data["method"] = "warp"
    with pytest.raises(ValueError, match="unknown method"):
        spec_from_dict(data)
