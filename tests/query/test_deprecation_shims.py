"""Legacy SpatialDatabase methods: DeprecationWarning + identical results.

Every pre-spec query method must (a) emit a DeprecationWarning naming its
replacement and (b) return byte-identical results to its spec
equivalent, parametrized over all query kinds.
"""

import warnings

import pytest

from repro import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    SpatialDatabase,
    WindowQuery,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.workloads.generators import uniform_points

POLY = Polygon([(0.2, 0.2), (0.6, 0.25), (0.55, 0.7), (0.25, 0.6)])
RECT = Rect(0.3, 0.3, 0.6, 0.7)
Q = Point(0.4, 0.5)


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase.from_points(uniform_points(500, seed=3)).prepare()


def _call_warns(db, invoke):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return invoke(db)


#: (legacy call, spec-equivalent extractor, label) per query kind/method.
SHIM_CASES = [
    (
        lambda db: db.area_query(POLY, method="voronoi"),
        lambda db: db.query(AreaQuery(POLY, method="voronoi")).record,
        "area/voronoi",
    ),
    (
        lambda db: db.area_query(POLY, method="traditional"),
        lambda db: db.query(AreaQuery(POLY, method="traditional")).record,
        "area/traditional",
    ),
    (
        lambda db: db.area_query(POLY, method="auto"),
        lambda db: db.query(AreaQuery(POLY)).record,
        "area/auto",
    ),
    (
        lambda db: db.window_query(RECT),
        lambda db: db.query(WindowQuery(RECT, method="index")).ids(),
        "window",
    ),
    (
        lambda db: db.k_nearest_neighbors(Q, 9, method="index"),
        lambda db: db.query(KnnQuery(Q, 9, method="index")).ids(),
        "knn/index",
    ),
    (
        lambda db: db.k_nearest_neighbors(Q, 9, method="voronoi"),
        lambda db: db.query(KnnQuery(Q, 9, method="voronoi")).ids(),
        "knn/voronoi",
    ),
    (
        lambda db: db.nearest_neighbor(Q),
        lambda db: db.query(NearestQuery(Q)).ids()[0],
        "nearest",
    ),
]


@pytest.mark.parametrize(
    "legacy, spec_equivalent, label",
    SHIM_CASES,
    ids=[case[2] for case in SHIM_CASES],
)
def test_shim_warns_and_matches_spec_path(db, legacy, spec_equivalent, label):
    legacy_result = _call_warns(db, legacy)
    spec_result = spec_equivalent(db)
    if hasattr(legacy_result, "ids"):  # eager records: compare the rows
        assert legacy_result.ids == spec_result.ids
        assert legacy_result.stats.method == spec_result.stats.method
    else:
        assert legacy_result == spec_result


def test_batch_shim_warns_and_matches(db):
    regions = [POLY, POLY.translated(0.05, 0.02), POLY]
    with pytest.warns(DeprecationWarning, match="query_batch"):
        legacy = db.batch_area_query(regions, method="voronoi", use_cache=False)
    spec_batch = db.query_batch(
        [AreaQuery(region, method="voronoi") for region in regions],
        use_cache=False,
    )
    assert [r.ids for r in legacy] == [r.ids() for r in spec_batch]


def test_shim_warning_names_replacement(db):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        db.window_query(RECT)
    messages = [str(w.message) for w in caught]
    assert any("WindowQuery" in message for message in messages)
    assert any("QUERY_API.md" in message for message in messages)


def test_shim_error_messages_preserved(db):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="choose from"):
            db.area_query(POLY, method="fastest")
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="'index' or 'voronoi'"):
            db.k_nearest_neighbors(Q, 3, method="warp")


def test_legacy_exceptions_preserved():
    from repro import EmptyDatabaseError, InvalidQueryAreaError

    empty = SpatialDatabase()
    with pytest.warns(DeprecationWarning):
        with pytest.raises(EmptyDatabaseError):
            empty.area_query(POLY)
    db = SpatialDatabase.from_points(uniform_points(50, seed=1))
    degenerate = Polygon([(0, 0), (1, 0), (2, 0), (1, 0.0)])
    with pytest.warns(DeprecationWarning):
        with pytest.raises(InvalidQueryAreaError):
            db.area_query(degenerate)


def test_legacy_window_on_empty_database_returns_empty():
    empty = SpatialDatabase()
    with pytest.warns(DeprecationWarning):
        assert empty.window_query(RECT) == []
    with pytest.warns(DeprecationWarning):
        assert empty.nearest_neighbor(Q) is None
    with pytest.warns(DeprecationWarning):
        assert empty.k_nearest_neighbors(Q, 3) == []
