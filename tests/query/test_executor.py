"""Spec execution: per-kind method equivalence and edge cases."""

import pytest

from repro import (
    AreaQuery,
    EmptyDatabaseError,
    InvalidQueryAreaError,
    KnnQuery,
    NearestQuery,
    SpatialDatabase,
    WindowQuery,
)
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.executor import execute_spec, resolve_method
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload

Q = Point(0.37, 0.58)


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase.from_points(uniform_points(800, seed=11)).prepare()


class TestMethodEquivalence:
    """Every kind's execution methods return identical rows."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_area_methods_agree(self, db, seed):
        area = QueryWorkload(query_size=0.03, seed=seed).areas(1)[0]
        ids = {
            method: execute_spec(
                db, AreaQuery(area), method=method
            ).ids
            for method in ("traditional", "voronoi")
        }
        assert ids["traditional"] == ids["voronoi"]

    @pytest.mark.parametrize(
        "rect",
        [
            Rect(0.1, 0.1, 0.4, 0.5),
            Rect(0.45, 0.45, 0.55, 0.55),
            Rect(0.0, 0.0, 1.0, 1.0),
        ],
    )
    def test_window_methods_agree(self, db, rect):
        index = execute_spec(db, WindowQuery(rect), method="index")
        voronoi = execute_spec(db, WindowQuery(rect), method="voronoi")
        assert index.ids == voronoi.ids
        brute = sorted(
            i for i, p in enumerate(db.points) if rect.contains_point(p)
        )
        assert index.ids == brute

    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_knn_methods_agree(self, db, k):
        index = execute_spec(db, KnnQuery(Q, k), method="index")
        voronoi = execute_spec(db, KnnQuery(Q, k), method="voronoi")
        assert index.ids == voronoi.ids
        assert len(index.ids) == k

    def test_nearest_matches_knn_head(self, db):
        nearest = execute_spec(db, NearestQuery(Q))
        knn = execute_spec(db, KnnQuery(Q, 1), method="index")
        assert nearest.ids == knn.ids

    def test_circle_area_queries(self, db):
        disc = Circle(Point(0.5, 0.5), 0.2)
        traditional = execute_spec(
            db, AreaQuery(disc), method="traditional"
        )
        voronoi = execute_spec(db, AreaQuery(disc), method="voronoi")
        assert traditional.ids == voronoi.ids


class TestResolution:
    def test_explicit_method_honoured(self, db):
        spec = AreaQuery(
            QueryWorkload(query_size=0.02, seed=5).areas(1)[0],
            method="traditional",
        )
        assert resolve_method(db, spec) == "traditional"

    def test_auto_consults_planner(self, db):
        spec = KnnQuery(Q, 3)
        assert resolve_method(db, spec) == db.engine.planner.plan(spec)

    def test_executed_method_recorded_in_stats(self, db):
        record = execute_spec(db, WindowQuery(Rect(0.2, 0.2, 0.4, 0.4)))
        assert record.stats.method in ("index", "voronoi")

    def test_degenerate_window_routes_to_index(self, db):
        line = Rect(0.3, 0.0, 0.3, 1.0)  # zero area
        assert db.engine.planner.plan(WindowQuery(line)) == "index"
        record = execute_spec(db, WindowQuery(line))
        assert record.stats.method == "index"

    def test_degenerate_window_voronoi_rejected(self, db):
        line = Rect(0.3, 0.0, 0.3, 1.0)
        with pytest.raises(InvalidQueryAreaError):
            execute_spec(db, WindowQuery(line, method="voronoi"))


class TestEdgeCases:
    def test_empty_database_semantics(self):
        empty = SpatialDatabase()
        with pytest.raises(EmptyDatabaseError):
            execute_spec(
                empty, AreaQuery(Polygon([(0, 0), (1, 0), (0, 1)]))
            )
        assert execute_spec(empty, WindowQuery(Rect(0, 0, 1, 1))).ids == []
        assert execute_spec(empty, KnnQuery(Q, 3)).ids == []
        assert execute_spec(empty, NearestQuery(Q)).ids == []

    def test_k_zero_returns_empty(self, db):
        for method in ("index", "voronoi"):
            assert execute_spec(db, KnnQuery(Q, 0), method=method).ids == []

    def test_k_exceeding_database_returns_all(self, db):
        record = execute_spec(db, KnnQuery(Q, len(db) + 10), method="index")
        assert len(record.ids) == len(db)

    def test_unknown_spec_type_rejected(self, db):
        with pytest.raises(TypeError):
            execute_spec(db, object())

    def test_window_boundary_is_closed(self, db):
        row = 17
        p = db.point(row)
        rect = Rect(p.x, p.y, p.x + 0.05, p.y + 0.05)
        assert row in execute_spec(db, WindowQuery(rect)).ids


class TestPredicateInvocationContract:
    """A spec's predicate runs exactly once per examined candidate."""

    def test_area_predicate_called_once_per_refined_row(self, db):
        area = QueryWorkload(query_size=0.04, seed=2).areas(1)[0]
        raw = len(execute_spec(db, AreaQuery(area), method="traditional").ids)
        calls = []
        spec = AreaQuery(
            area,
            method="traditional",
            predicate=lambda p: calls.append(1) or True,
        )
        db.query(spec).ids()
        assert len(calls) == raw

    def test_batch_does_not_refilter(self, db):
        area = QueryWorkload(query_size=0.04, seed=2).areas(1)[0]
        raw = len(execute_spec(db, AreaQuery(area), method="traditional").ids)
        calls = []
        spec = AreaQuery(
            area,
            method="traditional",
            predicate=lambda p: calls.append(1) or True,
        )
        db.query_batch([spec], use_cache=False)
        assert len(calls) == raw

    def test_budgeted_knn_predicate_sees_each_candidate_once(self, db):
        # A stateful predicate accepting its first 5 calls: with single
        # invocation per candidate the 5 nearest rows all pass.
        for method in ("index", "voronoi"):
            budget = iter(range(100))
            spec = KnnQuery(
                Q, 5, method=method, predicate=lambda p: next(budget) < 5
            )
            ids = db.query(spec).ids()
            expected = db.query(KnnQuery(Q, 5, method=method)).ids()
            assert ids == expected, method

    def test_nearest_zero_limit(self, db):
        assert db.query(NearestQuery(Q, limit=0)).ids() == []


class TestExplainExecuteGuards:
    def test_degenerate_window_explain_execute(self, db):
        from repro.geometry.rectangle import Rect as R

        line = WindowQuery(R(0.3, 0.0, 0.3, 1.0))
        explanation = db.explain(line, execute=True)
        # voronoi cannot execute on a zero-area window: skipped, not raised
        assert list(explanation.actual_costs) == ["index"]
        assert "-" in explanation.render()

    def test_empty_database_area_explain_execute(self):
        empty = SpatialDatabase()
        area = Polygon([(0, 0), (1, 0), (0, 1)])
        explanation = empty.explain(AreaQuery(area), execute=True)
        assert explanation.actual_costs == {}
