"""Query specs: construction, validation, hashing, builders, cache keys."""

import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    AreaQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    QUERY_KINDS,
    UnionQuery,
    WindowQuery,
    spec_fields,
)

POLY = Polygon([(0.1, 0.1), (0.5, 0.1), (0.5, 0.6), (0.1, 0.6)])
RECT = Rect(0.2, 0.2, 0.7, 0.8)


class TestConstruction:
    def test_kinds_registry(self):
        assert set(QUERY_KINDS) == {
            "area",
            "window",
            "knn",
            "nearest",
            "union",
            "intersection",
            "difference",
        }
        assert QUERY_KINDS["area"] is AreaQuery
        assert QUERY_KINDS["union"] is UnionQuery
        assert QUERY_KINDS["intersection"] is IntersectionQuery
        assert QUERY_KINDS["difference"] is DifferenceQuery

    def test_base_is_abstract(self):
        with pytest.raises(TypeError):
            Query()

    def test_defaults(self):
        spec = AreaQuery(POLY)
        assert spec.method == "auto"
        assert spec.limit is None
        assert spec.predicate is None
        assert spec.select == "ids"

    def test_window_accepts_bounds_sequence(self):
        spec = WindowQuery((0.2, 0.2, 0.7, 0.8))
        assert spec.rect == RECT

    def test_point_accepts_pair(self):
        spec = KnnQuery((0.25, 0.75), 3)
        assert spec.point == Point(0.25, 0.75)
        assert NearestQuery((0.0, 1.0)).point == Point(0.0, 1.0)

    def test_missing_geometry_rejected(self):
        with pytest.raises(ValueError):
            AreaQuery(None)
        with pytest.raises(ValueError):
            WindowQuery(None)
        with pytest.raises(ValueError):
            KnnQuery(None, 3)

    def test_method_validated_per_kind(self):
        with pytest.raises(ValueError):
            AreaQuery(POLY, method="index")
        with pytest.raises(ValueError):
            WindowQuery(RECT, method="traditional")
        with pytest.raises(ValueError):
            NearestQuery((0, 0), method="voronoi")
        # valid combinations construct fine
        AreaQuery(POLY, method="traditional")
        WindowQuery(RECT, method="index")
        KnnQuery((0, 0), 2, method="voronoi")

    def test_k_validated(self):
        with pytest.raises(ValueError):
            KnnQuery((0, 0), -1)
        assert KnnQuery((0, 0), 0).k == 0  # legal: empty result

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            AreaQuery(POLY, limit=-1)
        with pytest.raises(ValueError):
            AreaQuery(POLY, limit=2.5)

    def test_select_validated(self):
        with pytest.raises(ValueError):
            AreaQuery(POLY, select="rows")
        # distances only make sense with a query position
        with pytest.raises(ValueError):
            AreaQuery(POLY, select="distances")
        with pytest.raises(ValueError):
            WindowQuery(RECT, select="distances")
        KnnQuery((0, 0), 2, select="distances")
        NearestQuery((0, 0), select="distances")


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = AreaQuery(Polygon(list(POLY.vertices)))
        b = AreaQuery(Polygon(list(POLY.vertices)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != AreaQuery(POLY.translated(0.01, 0.0))
        assert len({a, b}) == 1

    def test_kinds_never_collide(self):
        knn = KnnQuery((0.5, 0.5), 1)
        nearest = NearestQuery((0.5, 0.5))
        assert knn != nearest
        assert len({knn, nearest}) == 2

    def test_builders_return_new_specs(self):
        spec = AreaQuery(POLY)
        limited = spec.with_limit(5)
        assert limited is not spec and limited.limit == 5
        assert spec.limit is None  # original untouched
        assert spec.with_method("voronoi").method == "voronoi"
        assert spec.returning("points").select == "points"
        predicate = lambda p: p.x > 0.0  # noqa: E731 - test fixture
        assert spec.where(predicate).predicate is predicate


class TestCacheKey:
    def test_method_and_select_normalised(self):
        assert (
            AreaQuery(POLY, method="voronoi").cache_key()
            == AreaQuery(POLY, method="traditional").cache_key()
            == AreaQuery(POLY).cache_key()
        )
        knn = KnnQuery((0.1, 0.2), 4)
        assert knn.cache_key() == knn.returning("distances").cache_key()

    def test_limit_stays_in_key(self):
        assert AreaQuery(POLY).cache_key() != (
            AreaQuery(POLY, limit=1).cache_key()
        )

    def test_predicate_uncacheable(self):
        assert AreaQuery(POLY, predicate=lambda p: True).cache_key() is None

    def test_circle_regions_cacheable(self):
        spec = AreaQuery(Circle(Point(0.5, 0.5), 0.2))
        key = spec.cache_key()
        assert key == AreaQuery(Circle(Point(0.5, 0.5), 0.2)).cache_key()
        hash(key)  # must be hashable


class TestAnchors:
    def test_area_anchor_is_region_mbr(self):
        assert AreaQuery(POLY).anchor() == POLY.mbr

    def test_window_anchor_is_rect(self):
        assert WindowQuery(RECT).anchor() == RECT

    def test_point_anchors_are_degenerate(self):
        anchor = KnnQuery((0.3, 0.4), 2).anchor()
        assert anchor == Rect(0.3, 0.4, 0.3, 0.4)
        assert NearestQuery((0.3, 0.4)).anchor() == anchor


class TestIntrospection:
    def test_describe_mentions_kind_and_options(self):
        text = AreaQuery(POLY, method="voronoi", limit=3).describe()
        assert text.startswith("area(")
        assert "method=voronoi" in text and "limit=3" in text
        assert "knn((0.5, 0.5), k=7)" in KnnQuery((0.5, 0.5), 7).describe()

    def test_spec_fields_round_trip(self):
        spec = KnnQuery((0.5, 0.5), 7, limit=3)
        fields = spec_fields(spec)
        assert fields["k"] == 7 and fields["limit"] == 3
        assert KnnQuery(**fields) == spec
