"""The lazy QueryResult handle: deferred execution, projections, explain."""

import pytest

from repro import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    SpatialDatabase,
    WindowQuery,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.workloads.generators import uniform_points

POLY = Polygon([(0.2, 0.2), (0.6, 0.25), (0.55, 0.7), (0.25, 0.6)])
RECT = Rect(0.3, 0.3, 0.6, 0.7)
Q = Point(0.4, 0.5)


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase.from_points(uniform_points(600, seed=7)).prepare()


class TestLaziness:
    def test_query_defers_execution(self, db):
        result = db.query(AreaQuery(POLY))
        assert not result.executed
        assert "pending" in repr(result)
        ids = result.ids()
        assert result.executed
        assert ids == sorted(ids)
        assert repr(result).endswith(
            f"{len(ids)} rows, method={result.stats.method!r})"
        )

    def test_execution_memoised(self, db):
        result = db.query(KnnQuery(Q, 5))
        first = result.record
        assert result.record is first  # one execution per handle

    def test_invalid_spec_type_rejected(self, db):
        with pytest.raises(TypeError):
            db.query("polygon please")


class TestProjections:
    def test_ids_points_align(self, db):
        result = db.query(AreaQuery(POLY))
        ids, points = result.ids(), result.points()
        assert [db.point(i) for i in ids] == points
        assert all(POLY.contains_point(p) for p in points)

    def test_ids_returns_fresh_list(self, db):
        result = db.query(AreaQuery(POLY))
        result.ids().append(-1)
        assert -1 not in result.ids()

    def test_distances_sorted_for_knn(self, db):
        result = db.query(KnnQuery(Q, 12))
        distances = result.distances()
        assert distances == sorted(distances)
        assert len(distances) == 12

    def test_distances_undefined_for_regions(self, db):
        with pytest.raises(ValueError, match="distances"):
            db.query(AreaQuery(POLY)).distances()

    def test_iteration_follows_select(self, db):
        ids = list(db.query(KnnQuery(Q, 4)))
        assert ids == db.query(KnnQuery(Q, 4)).ids()
        points = list(db.query(KnnQuery(Q, 4, select="points")))
        assert points == db.query(KnnQuery(Q, 4)).points()
        distances = list(db.query(KnnQuery(Q, 4, select="distances")))
        assert distances == db.query(KnnQuery(Q, 4)).distances()

    def test_len_and_contains(self, db):
        result = db.query(NearestQuery(Q))
        assert len(result) == 1
        assert result.ids()[0] in result


class TestOptions:
    def test_limit_truncates_in_result_order(self, db):
        full = db.query(AreaQuery(POLY)).ids()
        limited = db.query(AreaQuery(POLY, limit=3)).ids()
        assert limited == full[:3]
        knn_full = db.query(KnnQuery(Q, 10)).ids()
        assert db.query(KnnQuery(Q, 10, limit=4)).ids() == knn_full[:4]

    def test_zero_limit_empty(self, db):
        assert db.query(WindowQuery(RECT, limit=0)).ids() == []

    def test_predicate_filters_points(self, db):
        keep = lambda p: p.x < 0.45  # noqa: E731 - test fixture
        result = db.query(AreaQuery(POLY, predicate=keep))
        assert all(p.x < 0.45 for p in result.points())
        unfiltered = db.query(AreaQuery(POLY))
        expected = [i for i in unfiltered.ids() if keep(db.point(i))]
        assert result.ids() == expected

    def test_knn_predicate_still_returns_k(self, db):
        keep = lambda p: p.y > 0.5  # noqa: E731 - test fixture
        for method in ("index", "voronoi"):
            result = db.query(KnnQuery(Q, 6, method=method, predicate=keep))
            points = result.points()
            assert len(points) == 6
            assert all(p.y > 0.5 for p in points)
            distances = result.distances()
            assert distances == sorted(distances)

    def test_knn_predicate_methods_agree(self, db):
        keep = lambda p: p.x + p.y < 1.0  # noqa: E731 - test fixture
        index = db.query(KnnQuery(Q, 7, method="index", predicate=keep))
        voronoi = db.query(KnnQuery(Q, 7, method="voronoi", predicate=keep))
        assert index.ids() == voronoi.ids()

    def test_nearest_with_predicate(self, db):
        keep = lambda p: p.x > 0.9  # noqa: E731 - test fixture
        result = db.query(NearestQuery(Q, predicate=keep))
        assert len(result) == 1
        best = result.ids()[0]
        # the first index-ordered point satisfying the filter
        brute = min(
            (i for i, p in enumerate(db.points) if keep(p)),
            key=lambda i: (db.point(i).squared_distance_to(Q), i),
        )
        assert best == brute


class TestExplain:
    def test_explain_without_execution(self, db):
        result = db.query(AreaQuery(POLY))
        explanation = result.explain()
        assert not result.executed  # explain alone never executes
        assert set(explanation.estimates) == {"traditional", "voronoi"}
        assert explanation.actual_costs == {}
        assert explanation.chosen in explanation.estimates

    def test_explain_attaches_measured_stats_after_execution(self, db):
        result = db.query(KnnQuery(Q, 5))
        result.ids()
        explanation = result.explain()
        ran = result.stats.method
        assert list(explanation.actual_costs) == [ran]
        assert explanation.actual[ran].result_size == 5

    def test_explain_execute_runs_all_methods(self, db):
        explanation = db.query(WindowQuery(RECT)).explain(execute=True)
        assert set(explanation.actual_costs) == {"index", "voronoi"}
        assert explanation.prediction_correct in (True, False)
        rendered = explanation.render()
        assert "meas. cost" in rendered and "index" in rendered
