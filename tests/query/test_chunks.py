"""The chunked-iteration hook (``QueryResult.chunks``) on every spec shape."""

import pytest

from repro.core.database import SpatialDatabase
from repro.query.spec import KnnQuery, UnionQuery, WindowQuery
from repro.workloads.generators import uniform_points


@pytest.fixture(scope="module")
def db():
    """A small prepared database shared by the module's tests."""
    return SpatialDatabase.from_points(
        uniform_points(500, seed=17), backend_kind="scipy"
    ).prepare()


class TestChunks:
    def test_chunks_concatenate_to_the_full_result(self, db):
        spec = WindowQuery((0.1, 0.1, 0.8, 0.8))
        blocks = list(db.query(spec).chunks(7))
        assert [i for block in blocks for i in block] == db.query(spec).ids()
        assert all(len(block) == 7 for block in blocks[:-1])
        assert 1 <= len(blocks[-1]) <= 7

    def test_streaming_spec_examines_only_consumed_chunks(self, db):
        examined = []
        spec = KnnQuery(
            (0.5, 0.5), None, predicate=lambda p: examined.append(p) or True
        )
        result = db.query(spec)
        chunks = result.chunks(12)
        first = next(chunks)
        assert len(first) == 12
        assert len(examined) == 12  # one candidate per produced row
        assert not result.executed  # nothing memoised
        chunks.close()
        assert first == db.query(KnnQuery((0.5, 0.5), 12)).ids()

    def test_abandoning_chunks_closes_the_source_stream(self, db):
        examined = []
        spec = KnnQuery(
            (0.4, 0.6), None, predicate=lambda p: examined.append(p) or True
        )
        chunks = db.query(spec).chunks(5)
        next(chunks)
        count_at_close = len(examined)
        chunks.close()
        # a closed chunk iterator pulls nothing more from the expansion
        assert len(examined) == count_at_close
        with pytest.raises(StopIteration):
            next(chunks)

    def test_composite_chunks_match_eager_ids(self, db):
        spec = UnionQuery(
            (
                WindowQuery((0.1, 0.1, 0.4, 0.4)),
                WindowQuery((0.3, 0.3, 0.6, 0.6)),
            )
        )
        blocks = list(db.query(spec).chunks(9))
        assert [i for block in blocks for i in block] == db.query(spec).ids()

    def test_exact_multiple_produces_no_empty_chunk(self, db):
        spec = KnnQuery((0.5, 0.5), 20)
        blocks = list(db.query(spec).chunks(10))
        assert [len(block) for block in blocks] == [10, 10]

    def test_projection_follows_select(self, db):
        spec = KnnQuery((0.5, 0.5), 6, select="distances")
        blocks = list(db.query(spec).chunks(4))
        assert [d for block in blocks for d in block] == (
            db.query(spec).distances()
        )

    def test_invalid_size_rejected(self, db):
        with pytest.raises(ValueError, match="chunk size"):
            db.query(WindowQuery((0, 0, 1, 1))).chunks(0)

    def test_executed_handle_chunks_the_record(self, db):
        spec = WindowQuery((0.2, 0.2, 0.7, 0.7))
        result = db.query(spec)
        eager = result.ids()  # memoises
        assert result.executed
        assert [i for block in result.chunks(8) for i in block] == eager
