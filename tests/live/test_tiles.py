"""Unit tests for the dirty-tile grid's covering property.

The inverted index is only correct if the grid never *under*-covers: a
point inside a region must always map to a tile the region registered
under, or a write there would silently skip affected subscriptions.
Over-coverage merely costs fanout, so these tests assert containment,
not tightness.
"""

import math
import random

import pytest

from repro.geometry.rectangle import Rect
from repro.live.tiles import TileGrid


class TestTileOf:
    def test_corners_and_center(self):
        grid = TileGrid(resolution=8)
        assert grid.tile_of(0.0, 0.0) == (0, 0)
        assert grid.tile_of(1.0, 1.0) == (7, 7)
        assert grid.tile_of(0.5, 0.5) == (4, 4)

    def test_out_of_bounds_clamps_to_border(self):
        grid = TileGrid(resolution=8)
        assert grid.tile_of(-3.0, 0.5) == (0, 4)
        assert grid.tile_of(0.5, 99.0) == (4, 7)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            TileGrid(resolution=0)


class TestRectCovering:
    def test_random_rects_cover_their_points(self):
        rng = random.Random(7)
        grid = TileGrid(resolution=64)
        for _ in range(200):
            x = rng.uniform(0.0, 0.95)
            y = rng.uniform(0.0, 0.95)
            rect = Rect(
                x, y, x + rng.uniform(0.001, 0.3), y + rng.uniform(0.001, 0.3)
            )
            tiles = grid.tiles_for_rect(rect)
            for _ in range(20):
                px = rng.uniform(rect.min_x, rect.max_x)
                py = rng.uniform(rect.min_y, rect.max_y)
                assert grid.tile_of(px, py) in tiles

    def test_degenerate_rect_is_one_tile(self):
        grid = TileGrid(resolution=16)
        assert grid.tiles_for_rect(Rect(0.3, 0.3, 0.3, 0.3)) == frozenset(
            {grid.tile_of(0.3, 0.3)}
        )


class TestCircleCovering:
    def test_random_circles_cover_their_points(self):
        rng = random.Random(11)
        grid = TileGrid(resolution=64)
        for _ in range(200):
            cx, cy = rng.random(), rng.random()
            radius = rng.uniform(0.0005, 0.2)
            tiles = grid.tiles_for_circle(cx, cy, radius * radius)
            for _ in range(20):
                angle = rng.uniform(0.0, 2.0 * math.pi)
                r = radius * math.sqrt(rng.random())
                px = min(max(cx + r * math.cos(angle), 0.0), 1.0)
                py = min(max(cy + r * math.sin(angle), 0.0), 1.0)
                assert grid.tile_of(px, py) in tiles

    def test_boundary_points_covered_despite_sqrt_rounding(self):
        grid = TileGrid(resolution=64)
        # A squared radius whose sqrt rounds down would miss the exact
        # boundary point without the covering inflation.
        radius_sq = 0.1 * 0.1
        tiles = grid.tiles_for_circle(0.5, 0.5, radius_sq)
        boundary = 0.5 + math.sqrt(radius_sq)
        assert grid.tile_of(boundary, 0.5) in tiles

    def test_invalid_radius_rejected(self):
        grid = TileGrid()
        with pytest.raises(ValueError):
            grid.tiles_for_circle(0.5, 0.5, -1.0)
        with pytest.raises(ValueError):
            grid.tiles_for_circle(0.5, 0.5, float("nan"))
