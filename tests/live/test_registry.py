"""Registry-level tests: admission rules and incremental exactness.

The heart of the subsystem's correctness claim: a subscription's
maintained membership after any sequence of writes equals a brute-force
re-execution of its spec on the post-write database — verified here
with a randomized mixed-write trace over region and kNN subscriptions,
plus targeted edge cases (underfull k-sets, tombstone reinsertion,
owner teardown).
"""

import random

import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.query.spec import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    UnionQuery,
    WindowQuery,
)
from repro.live.registry import SubscriptionRegistry
from repro.workloads.generators import uniform_points


@pytest.fixture()
def db():
    """A small mutable database (pure backend: incremental writes)."""
    return SpatialDatabase.from_points(
        uniform_points(250, seed=23), backend_kind="pure"
    ).prepare()


def _apply(registry, db, op, payload):
    """Apply one write to the database, then fan it out post-write."""
    pre = db.store.snapshot()
    if op == "insert":
        row = db.insert(Point(*payload))
        rows, coords = [row], [payload]
    elif op == "extend":
        rows = list(db.extend([Point(x, y) for x, y in payload]))
        coords = list(payload)
    else:  # delete
        coords = [db.store.coords(payload)]
        db.delete(payload)
        rows = [payload]
    return registry.apply_write(op, rows, coords, pre=pre)


class TestAdmission:
    def test_rejects_non_subscribable_specs(self, db):
        registry = SubscriptionRegistry(db)
        window = WindowQuery((0.1, 0.1, 0.5, 0.5))
        for spec in [
            KnnQuery((0.5, 0.5), None),
            NearestQuery((0.5, 0.5)),
            UnionQuery((window, WindowQuery((0.4, 0.4, 0.9, 0.9)))),
            window.where(lambda p: p.x > 0.2),
            window.with_limit(5),
        ]:
            with pytest.raises(ValueError):
                registry.register(spec)
        assert registry.active == 0

    def test_initial_result_matches_query(self, db):
        registry = SubscriptionRegistry(db)
        spec = WindowQuery((0.2, 0.2, 0.7, 0.7))
        subscription, ids = registry.register(spec)
        assert ids == db.query(spec).ids()
        assert subscription.members == set(ids)
        assert registry.active == 1

    def test_unregister_is_idempotent(self, db):
        registry = SubscriptionRegistry(db)
        subscription, _ = registry.register(WindowQuery((0, 0, 1, 1)))
        assert registry.unregister(subscription) is True
        assert registry.unregister(subscription) is False
        assert registry.active == 0

    def test_drop_owner_removes_only_that_owner(self, db):
        registry = SubscriptionRegistry(db)
        registry.register(WindowQuery((0, 0, 0.5, 0.5)), owner="a")
        registry.register(WindowQuery((0.5, 0.5, 1, 1)), owner="a")
        keeper, _ = registry.register(KnnQuery((0.5, 0.5), 4), owner="b")
        assert registry.drop_owner("a") == 2
        assert registry.active == 1
        assert keeper in registry._subscriptions


class TestIncrementalExactness:
    def test_randomized_trace_matches_brute_force(self, db):
        """The core equivalence: maintained state == re-execution, for
        every subscription, after every single write of a mixed trace."""
        rng = random.Random(47)
        registry = SubscriptionRegistry(db)
        specs = []
        for _ in range(12):
            x, y = rng.uniform(0.0, 0.8), rng.uniform(0.0, 0.8)
            specs.append(
                WindowQuery((x, y, x + rng.uniform(0.05, 0.2), y + 0.15))
            )
        for _ in range(4):
            specs.append(
                KnnQuery(
                    (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)),
                    rng.randint(3, 9),
                )
            )
        specs.append(
            AreaQuery(Polygon([(0.1, 0.1), (0.9, 0.2), (0.5, 0.9)]))
        )
        subscriptions = [registry.register(spec)[0] for spec in specs]

        live = set(range(250))
        for step in range(120):
            choice = rng.random()
            if choice < 0.5:
                _apply(
                    registry,
                    db,
                    "insert",
                    (rng.random(), rng.random()),
                )
                live.add(len(db.store) - 1)
            elif choice < 0.75 and live:
                victim = rng.choice(sorted(live))
                live.discard(victim)
                _apply(registry, db, "delete", victim)
            else:
                count = rng.randint(2, 4)
                base = len(db.store)
                _apply(
                    registry,
                    db,
                    "extend",
                    [(rng.random(), rng.random()) for _ in range(count)],
                )
                live |= set(range(base, base + count))
            if step % 10 == 0 or step == 119:
                for spec, subscription in zip(specs, subscriptions):
                    expected = db.query(spec).ids()
                    assert subscription.members == set(expected), (
                        f"step {step}: {spec.describe()} drifted"
                    )
                    if subscription.kind == "knn":
                        # Rank order too, not just the set.
                        ranked = [row for _, row in subscription.ordered]
                        assert ranked == expected

        stats = registry.stats
        assert stats.writes == 120
        # The pruning mechanism: far fewer evaluations than the
        # all-pairs worst case.
        assert stats.evaluations < stats.writes * registry.active * 0.5

    def test_deltas_compose_to_the_new_result(self, db):
        """added/removed applied to the old members give the new members."""
        rng = random.Random(53)
        registry = SubscriptionRegistry(db)
        spec = WindowQuery((0.3, 0.3, 0.6, 0.6))
        subscription, ids = registry.register(spec)
        mirror = set(ids)
        for _ in range(40):
            before = set(mirror)
            events = _apply(
                registry, db, "insert", (rng.random(), rng.random())
            )
            for sub, delta in events:
                assert sub is subscription
                assert not set(delta.added) & before
                assert set(delta.removed) <= before
                mirror -= set(delta.removed)
                mirror |= set(delta.added)
            assert mirror == set(db.query(spec).ids())


class TestKnnEdges:
    def test_underfull_kset_sits_in_unbounded_bucket(self):
        db = SpatialDatabase.from_points(
            uniform_points(3, seed=29), backend_kind="pure"
        ).prepare()
        registry = SubscriptionRegistry(db)
        subscription, ids = registry.register(KnnQuery((0.5, 0.5), 5))
        assert len(ids) == 3
        assert subscription.tiles is None  # any insert anywhere may join
        # A far-away insert still lands in the underfull set...
        events = _apply(registry, db, "insert", (0.01, 0.99))
        assert events and events[0][1].added == [3]
        _apply(registry, db, "insert", (0.99, 0.01))
        # ...and once full, the subscription re-indexes under tiles.
        assert len(subscription.members) == 5
        assert subscription.tiles is not None

    def test_member_delete_refills_from_survivors(self, db):
        registry = SubscriptionRegistry(db)
        spec = KnnQuery((0.5, 0.5), 6)
        subscription, ids = registry.register(spec)
        events = _apply(registry, db, "delete", ids[2])
        (_, delta), = events
        assert delta.removed == [ids[2]]
        assert len(delta.added) == 1
        assert subscription.members == set(db.query(spec).ids())

    def test_insert_inside_kth_radius_displaces(self, db):
        registry = SubscriptionRegistry(db)
        spec = KnnQuery((0.5, 0.5), 4)
        subscription, ids = registry.register(spec)
        events = _apply(registry, db, "insert", (0.5, 0.5))
        (_, delta), = events
        assert delta.added == [len(db.store) - 1]
        assert delta.removed == [ids[-1]]
        assert subscription.members == set(db.query(spec).ids())


class TestTombstoneReinsertion:
    def test_reinsert_on_tombstone_is_a_single_added_delta(self, db):
        """Deleting a member then inserting its exact position again is
        one removed delta and one added delta for the *new* row — never
        a remove+add churn inside a single write."""
        registry = SubscriptionRegistry(db)
        spec = WindowQuery((0.2, 0.2, 0.8, 0.8))
        subscription, ids = registry.register(spec)
        victim = ids[0]
        x, y = db.store.coords(victim)

        events = _apply(registry, db, "delete", victim)
        (_, delta), = events
        assert delta.added == [] and delta.removed == [victim]

        events = _apply(registry, db, "insert", (x, y))
        (_, delta), = events
        new_row = len(db.store) - 1
        assert delta.added == [new_row] and delta.removed == []
        assert victim not in subscription.members
        assert subscription.members == set(db.query(spec).ids())
