"""Unit tests for the index base interface and the brute-force oracle."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index import INDEX_REGISTRY, make_index
from repro.index.base import BruteForceIndex, IndexStats, validate_entries


class TestBruteForce:
    def test_insert_and_len(self):
        index = BruteForceIndex()
        index.insert(Point(0.5, 0.5), 1)
        index.insert(Point(0.2, 0.8), 2)
        assert len(index) == 2

    def test_window_query(self):
        index = BruteForceIndex()
        index.insert(Point(0.5, 0.5), 1)
        index.insert(Point(0.9, 0.9), 2)
        hits = index.window_query(Rect(0.0, 0.0, 0.6, 0.6))
        assert [item_id for _, item_id in hits] == [1]

    def test_window_query_inclusive_boundary(self):
        index = BruteForceIndex()
        index.insert(Point(1.0, 1.0), 1)
        assert len(index.window_query(Rect(0, 0, 1, 1))) == 1

    def test_nearest_neighbor(self):
        index = BruteForceIndex()
        index.insert(Point(0.0, 0.0), 1)
        index.insert(Point(1.0, 1.0), 2)
        entry = index.nearest_neighbor(Point(0.9, 0.9))
        assert entry is not None and entry[1] == 2

    def test_nearest_neighbor_empty(self):
        assert BruteForceIndex().nearest_neighbor(Point(0, 0)) is None

    def test_knn_ordering(self):
        index = BruteForceIndex()
        for i in range(5):
            index.insert(Point(float(i), 0.0), i)
        got = [item_id for _, item_id in index.k_nearest_neighbors(Point(0, 0), 3)]
        assert got == [0, 1, 2]

    def test_knn_k_zero(self):
        index = BruteForceIndex()
        index.insert(Point(0, 0), 1)
        assert index.k_nearest_neighbors(Point(0, 0), 0) == []

    def test_knn_k_exceeds_size(self):
        index = BruteForceIndex()
        index.insert(Point(0, 0), 1)
        assert len(index.k_nearest_neighbors(Point(0, 0), 10)) == 1

    def test_delete(self):
        index = BruteForceIndex()
        index.insert(Point(0.5, 0.5), 1)
        assert index.delete(Point(0.5, 0.5), 1)
        assert not index.delete(Point(0.5, 0.5), 1)
        assert len(index) == 0

    def test_duplicate_locations_allowed(self):
        index = BruteForceIndex()
        index.insert(Point(0.5, 0.5), 1)
        index.insert(Point(0.5, 0.5), 2)
        hits = index.window_query(Rect(0, 0, 1, 1))
        assert sorted(item_id for _, item_id in hits) == [1, 2]

    def test_bounds(self):
        index = BruteForceIndex()
        assert index.bounds is None
        index.insert(Point(0.25, 0.5), 1)
        index.insert(Point(0.75, 0.1), 2)
        assert index.bounds == Rect(0.25, 0.1, 0.75, 0.5)

    def test_stats_counted(self):
        index = BruteForceIndex()
        index.insert(Point(0.5, 0.5), 1)
        index.stats.reset()
        index.window_query(Rect(0, 0, 1, 1))
        assert index.stats.node_accesses == 1
        assert index.stats.entry_tests == 1


class TestIndexStats:
    def test_reset(self):
        stats = IndexStats(node_accesses=5, entry_tests=10)
        stats.reset()
        assert stats.node_accesses == 0
        assert stats.entry_tests == 0

    def test_snapshot_is_independent(self):
        stats = IndexStats(node_accesses=5)
        snap = stats.snapshot()
        stats.node_accesses = 99
        assert snap.node_accesses == 5


class TestRegistry:
    def test_all_registered_kinds_instantiable(self):
        for kind in INDEX_REGISTRY:
            index = make_index(kind)
            index.insert(Point(0.5, 0.5), 1)
            assert len(index) == 1

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            make_index("btree")


class TestValidateEntries:
    def test_valid(self):
        validate_entries([(Point(0, 0), 1), (Point(1, 1), 2)])

    def test_rejects_non_point(self):
        with pytest.raises(TypeError):
            validate_entries([((0, 0), 1)])

    def test_rejects_non_int_id(self):
        with pytest.raises(TypeError):
            validate_entries([(Point(0, 0), "a")])

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            validate_entries([(Point(0, 0), 1, 2)])
