"""Tests for counting window queries (COUNT(*) aggregates)."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index import (
    BruteForceIndex,
    GridIndex,
    KDTree,
    QuadTree,
    RStarTree,
    RTree,
)


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


def _random_windows(count, seed=0):
    rng = random.Random(seed)
    windows = []
    for _ in range(count):
        x1, x2 = sorted((rng.random(), rng.random()))
        y1, y2 = sorted((rng.random(), rng.random()))
        windows.append(Rect(x1, y1, x2, y2))
    return windows


class TestDefaultWindowCount:
    @pytest.mark.parametrize(
        "cls", [BruteForceIndex, KDTree, QuadTree, GridIndex]
    )
    def test_matches_window_query(self, cls):
        index = cls()
        for point, item_id in _random_entries(300, seed=301):
            index.insert(point, item_id)
        for window in _random_windows(20, seed=303):
            assert index.window_count(window) == len(
                index.window_query(window)
            )


class TestRTreeWeightedCount:
    @pytest.mark.parametrize("cls", [RTree, RStarTree])
    def test_matches_window_query_dynamic(self, cls):
        index = cls(max_entries=8)
        for point, item_id in _random_entries(500, seed=305):
            index.insert(point, item_id)
        index.check_invariants()
        for window in _random_windows(30, seed=307):
            assert index.window_count(window) == len(
                index.window_query(window)
            )

    def test_matches_after_bulk_load(self):
        index = RTree()
        index.bulk_load(_random_entries(800, seed=309))
        index.check_invariants()
        for window in _random_windows(30, seed=311):
            assert index.window_count(window) == len(
                index.window_query(window)
            )

    def test_matches_after_deletions(self):
        entries = _random_entries(300, seed=313)
        index = RTree(max_entries=4)
        for point, item_id in entries:
            index.insert(point, item_id)
        for point, item_id in entries[:150]:
            assert index.delete(point, item_id)
        index.check_invariants()
        for window in _random_windows(20, seed=315):
            assert index.window_count(window) == len(
                index.window_query(window)
            )

    def test_full_window_counts_everything(self):
        index = RTree()
        index.bulk_load(_random_entries(400, seed=317))
        assert index.window_count(Rect(-1, -1, 2, 2)) == 400

    def test_empty_tree(self):
        assert RTree().window_count(Rect(0, 0, 1, 1)) == 0

    def test_aggregate_visits_fewer_nodes(self):
        """Full containment prunes descent: counting a huge window must
        touch far fewer nodes than materialising the same window."""
        index = RTree(max_entries=8)
        index.bulk_load(_random_entries(3000, seed=319))
        window = Rect(0.05, 0.05, 0.95, 0.95)

        index.stats.reset()
        count = index.window_count(window)
        count_accesses = index.stats.node_accesses

        index.stats.reset()
        materialised = index.window_query(window)
        query_accesses = index.stats.node_accesses

        assert count == len(materialised)
        assert count_accesses < query_accesses / 2

    def test_count_in_window_alias(self):
        index = RTree()
        index.bulk_load(_random_entries(100, seed=321))
        window = Rect(0.2, 0.2, 0.8, 0.8)
        assert index.count_in_window(window) == index.window_count(window)
