"""``window_ids_array`` — the bulk index probe — against ``window_query``.

Every index kind must return exactly the id *set* its entry-level
``window_query`` returns, for any window, including the structural
shortcuts the overrides take (fully-contained subtree emission, whole
grid buckets, boundary-leaf masking) and the clamped-point subtleties of
the grid's border cells.
"""

import random

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index import INDEX_REGISTRY, make_index

WINDOWS = [
    Rect(0.1, 0.1, 0.6, 0.7),
    Rect(-1.0, -1.0, 2.0, 2.0),  # superset of everything
    Rect(0.45, 0.45, 0.55, 0.55),
    Rect(0.0, 0.0, 1.0, 1.0),
    Rect(0.5, 0.5, 0.5, 0.5),  # degenerate
    Rect(1.05, 1.05, 1.5, 1.5),  # outside the unit square (clamped grid)
    Rect(2.0, 2.0, 3.0, 3.0),  # fully disjoint
]


def dataset(seed=7, n=2500):
    rng = random.Random(seed)
    pts = [Point(rng.random(), rng.random()) for _ in range(n)]
    # out-of-extent points (grid clamping) and exact duplicates
    pts += [
        Point(-0.2, 0.5),
        Point(1.3, 1.2),
        Point(0.5, 0.5),
        Point(0.5, 0.5),
    ]
    return pts


@pytest.mark.parametrize("kind", sorted(INDEX_REGISTRY))
class TestWindowIdsArray:
    def test_bulk_loaded_matches_window_query(self, kind):
        index = make_index(kind)
        index.bulk_load((p, i) for i, p in enumerate(dataset()))
        for window in WINDOWS:
            expected = sorted(i for _, i in index.window_query(window))
            got = index.window_ids_array(window)
            assert isinstance(got, np.ndarray)
            assert got.dtype == np.int64
            assert sorted(got.tolist()) == expected

    def test_incrementally_built_matches_window_query(self, kind):
        index = make_index(kind)
        for i, p in enumerate(dataset(seed=9, n=400)):
            index.insert(p, i)
        for window in WINDOWS:
            expected = sorted(i for _, i in index.window_query(window))
            assert sorted(index.window_ids_array(window).tolist()) == expected

    def test_empty_index(self, kind):
        index = make_index(kind)
        got = index.window_ids_array(Rect(0.0, 0.0, 1.0, 1.0))
        assert got.shape == (0,)

    def test_after_deletions(self, kind):
        points = dataset(seed=11, n=600)
        index = make_index(kind)
        index.bulk_load((p, i) for i, p in enumerate(points))
        rng = random.Random(13)
        for i in rng.sample(range(600), 120):
            assert index.delete(points[i], i)
        for window in WINDOWS[:4]:
            expected = sorted(i for _, i in index.window_query(window))
            assert sorted(index.window_ids_array(window).tolist()) == expected


def test_probe_counts_index_accesses():
    """The bulk probe reports node accesses like the entry-level query."""
    index = make_index("rtree")
    index.bulk_load((p, i) for i, p in enumerate(dataset()))
    before = index.stats.node_accesses
    index.window_ids_array(Rect(0.2, 0.2, 0.8, 0.8))
    assert index.stats.node_accesses > before
