"""Unit tests for the k-d tree."""

import random


from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import BruteForceIndex
from repro.index.kdtree import KDTree


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


class TestKDTreeBasics:
    def test_empty(self):
        tree = KDTree()
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.nearest_neighbor(Point(0, 0)) is None
        assert tree.depth == 0

    def test_insert_count(self):
        tree = KDTree()
        for point, item_id in _random_entries(100):
            tree.insert(point, item_id)
        assert len(tree) == 100

    def test_window_matches_brute_force(self):
        entries = _random_entries(400, seed=3)
        tree = KDTree()
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        for window in (
            Rect(0, 0, 1, 1),
            Rect(0.3, 0.1, 0.6, 0.4),
            Rect(0.99, 0.99, 1.2, 1.2),
        ):
            assert sorted(i for _, i in tree.window_query(window)) == sorted(
                i for _, i in oracle.window_query(window)
            )

    def test_nn_matches_brute_force(self):
        entries = _random_entries(300, seed=5)
        tree = KDTree()
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        rng = random.Random(9)
        for _ in range(50):
            q = Point(rng.random() * 1.4 - 0.2, rng.random() * 1.4 - 0.2)
            got = tree.nearest_neighbor(q)
            expected = oracle.nearest_neighbor(q)
            assert got[0].distance_to(q) == expected[0].distance_to(q)

    def test_knn_matches_brute_force(self):
        entries = _random_entries(150, seed=7)
        tree = KDTree()
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        q = Point(0.5, 0.5)
        for k in (1, 3, 10, 150):
            got = [i for _, i in tree.k_nearest_neighbors(q, k)]
            expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
            assert got == expected


class TestBulkLoad:
    def test_balanced_build(self):
        tree = KDTree()
        tree.bulk_load(_random_entries(1023, seed=11))
        assert len(tree) == 1023
        # A balanced tree over 1023 nodes has depth 10; allow tiny slack
        # for duplicate-key shifts.
        assert tree.depth <= 12

    def test_bulk_load_preserves_existing(self):
        tree = KDTree()
        tree.insert(Point(0.5, 0.5), 999)
        tree.bulk_load(_random_entries(50, seed=13))
        assert len(tree) == 51
        assert 999 in {i for _, i in tree.items()}

    def test_queries_after_bulk_load(self):
        entries = _random_entries(500, seed=15)
        tree = KDTree()
        tree.bulk_load(entries)
        oracle = BruteForceIndex()
        oracle.bulk_load(entries)
        window = Rect(0.2, 0.6, 0.5, 0.9)
        assert sorted(i for _, i in tree.window_query(window)) == sorted(
            i for _, i in oracle.window_query(window)
        )


class TestDeletion:
    def test_tombstone_delete(self):
        tree = KDTree()
        tree.insert(Point(0.5, 0.5), 1)
        assert tree.delete(Point(0.5, 0.5), 1)
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_delete_missing(self):
        tree = KDTree()
        tree.insert(Point(0.5, 0.5), 1)
        assert not tree.delete(Point(0.4, 0.4), 1)
        assert not tree.delete(Point(0.5, 0.5), 2)

    def test_mass_delete_triggers_rebuild(self):
        entries = _random_entries(200, seed=17)
        tree = KDTree()
        for point, item_id in entries:
            tree.insert(point, item_id)
        for point, item_id in entries[:150]:
            assert tree.delete(point, item_id)
        assert len(tree) == 50
        assert sorted(i for _, i in tree.items()) == list(range(150, 200))
        # Rebuild keeps queries correct.
        window = Rect(0, 0, 1, 1)
        assert len(tree.window_query(window)) == 50

    def test_delete_then_nn_ignores_tombstones(self):
        tree = KDTree()
        tree.insert(Point(0.5, 0.5), 1)
        tree.insert(Point(0.9, 0.9), 2)
        tree.delete(Point(0.5, 0.5), 1)
        assert tree.nearest_neighbor(Point(0.5, 0.5))[1] == 2


class TestDuplicateKeys:
    def test_equal_coordinates(self):
        tree = KDTree()
        for i in range(10):
            tree.insert(Point(0.5, 0.5), i)
        hits = tree.window_query(Rect(0.5, 0.5, 0.5, 0.5))
        assert sorted(i for _, i in hits) == list(range(10))

    def test_delete_one_duplicate(self):
        tree = KDTree()
        for i in range(5):
            tree.insert(Point(0.5, 0.5), i)
        assert tree.delete(Point(0.5, 0.5), 2)
        assert sorted(i for _, i in tree.items()) == [0, 1, 3, 4]

    def test_equal_single_coordinate(self):
        # Many points sharing x; exercises the equal-key descent path.
        tree = KDTree()
        for i in range(20):
            tree.insert(Point(0.5, i / 20.0), i)
        window = Rect(0.5, 0.0, 0.5, 0.5)
        assert sorted(i for _, i in tree.window_query(window)) == list(
            range(11)
        )
