"""Unit tests for the PR quadtree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import BruteForceIndex
from repro.index.quadtree import QuadTree


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


class TestQuadTreeBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuadTree(capacity=0)

    def test_empty(self):
        tree = QuadTree()
        assert len(tree) == 0
        assert tree.nearest_neighbor(Point(0.5, 0.5)) is None

    def test_insert_count(self):
        tree = QuadTree(capacity=4)
        for point, item_id in _random_entries(100):
            tree.insert(point, item_id)
        assert len(tree) == 100

    def test_subdivision_occurs(self):
        tree = QuadTree(capacity=2)
        for point, item_id in _random_entries(50):
            tree.insert(point, item_id)
        assert tree.depth >= 2

    def test_window_matches_brute_force(self):
        entries = _random_entries(400, seed=3)
        tree = QuadTree(capacity=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        for window in (
            Rect(0, 0, 1, 1),
            Rect(0.5, 0.5, 0.75, 0.75),
            Rect(0.0, 0.9, 0.1, 1.0),
        ):
            assert sorted(i for _, i in tree.window_query(window)) == sorted(
                i for _, i in oracle.window_query(window)
            )

    def test_nn_matches_brute_force(self):
        entries = _random_entries(250, seed=5)
        tree = QuadTree(capacity=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        rng = random.Random(7)
        for _ in range(40):
            q = Point(rng.random(), rng.random())
            got = tree.nearest_neighbor(q)
            expected = oracle.nearest_neighbor(q)
            assert got[0].distance_to(q) == expected[0].distance_to(q)

    def test_knn_matches_brute_force(self):
        entries = _random_entries(120, seed=9)
        tree = QuadTree(capacity=4)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        q = Point(0.2, 0.8)
        for k in (1, 7, 120):
            got = [i for _, i in tree.k_nearest_neighbors(q, k)]
            expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
            assert got == expected


class TestOutOfBoundsGrowth:
    def test_point_outside_initial_bounds(self):
        tree = QuadTree(bounds=Rect(0, 0, 1, 1), capacity=4)
        tree.insert(Point(0.5, 0.5), 1)
        tree.insert(Point(2.5, 2.5), 2)  # outside: tree must grow
        assert len(tree) == 2
        hits = tree.window_query(Rect(2, 2, 3, 3))
        assert [i for _, i in hits] == [2]

    def test_negative_coordinates(self):
        tree = QuadTree(bounds=Rect(0, 0, 1, 1), capacity=4)
        tree.insert(Point(-1.0, -1.0), 1)
        tree.insert(Point(0.5, 0.5), 2)
        assert len(tree.window_query(Rect(-2, -2, 1, 1))) == 2

    def test_growth_preserves_existing_points(self):
        tree = QuadTree(capacity=2)
        entries = _random_entries(30, seed=11)
        for point, item_id in entries:
            tree.insert(point, item_id)
        tree.insert(Point(5.0, 5.0), 999)
        assert sorted(i for _, i in tree.items()) == sorted(
            [i for _, i in entries] + [999]
        )


class TestDeletion:
    def test_delete(self):
        tree = QuadTree(capacity=4)
        tree.insert(Point(0.5, 0.5), 1)
        assert tree.delete(Point(0.5, 0.5), 1)
        assert not tree.delete(Point(0.5, 0.5), 1)
        assert len(tree) == 0

    def test_delete_outside_bounds(self):
        tree = QuadTree()
        assert not tree.delete(Point(5, 5), 1)

    def test_delete_keeps_queries_correct(self):
        entries = _random_entries(100, seed=13)
        tree = QuadTree(capacity=4)
        for point, item_id in entries:
            tree.insert(point, item_id)
        for point, item_id in entries[:50]:
            assert tree.delete(point, item_id)
        assert sorted(i for _, i in tree.items()) == list(range(50, 100))


class TestDuplicates:
    def test_many_identical_points_capped_depth(self):
        # Identical points cannot be separated by subdivision; the max-depth
        # guard must keep them in one leaf instead of recursing forever.
        tree = QuadTree(capacity=2)
        for i in range(50):
            tree.insert(Point(0.25, 0.25), i)
        assert len(tree) == 50
        hits = tree.window_query(Rect(0.25, 0.25, 0.25, 0.25))
        assert sorted(i for _, i in hits) == list(range(50))
