"""Unit tests for the uniform grid index."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import BruteForceIndex
from repro.index.grid import GridIndex


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


class TestGridBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GridIndex(resolution=0)
        with pytest.raises(ValueError):
            GridIndex(bounds=Rect(0, 0, 0, 1))

    def test_insert_count(self):
        grid = GridIndex()
        for point, item_id in _random_entries(100):
            grid.insert(point, item_id)
        assert len(grid) == 100

    def test_window_matches_brute_force(self):
        entries = _random_entries(500, seed=3)
        grid = GridIndex(resolution=16)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            grid.insert(point, item_id)
            oracle.insert(point, item_id)
        for window in (
            Rect(0, 0, 1, 1),
            Rect(0.33, 0.33, 0.34, 0.34),
            Rect(0.5, 0.0, 1.0, 0.5),
        ):
            assert sorted(i for _, i in grid.window_query(window)) == sorted(
                i for _, i in oracle.window_query(window)
            )

    def test_window_outside_extent(self):
        grid = GridIndex()
        grid.insert(Point(0.5, 0.5), 1)
        assert grid.window_query(Rect(3, 3, 4, 4)) == []

    def test_nn_matches_brute_force(self):
        entries = _random_entries(300, seed=5)
        grid = GridIndex(resolution=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            grid.insert(point, item_id)
            oracle.insert(point, item_id)
        rng = random.Random(7)
        for _ in range(60):
            q = Point(rng.random() * 1.5 - 0.25, rng.random() * 1.5 - 0.25)
            got = grid.nearest_neighbor(q)
            expected = oracle.nearest_neighbor(q)
            assert got[0].distance_to(q) == expected[0].distance_to(q)

    def test_knn_matches_brute_force(self):
        entries = _random_entries(150, seed=9)
        grid = GridIndex(resolution=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            grid.insert(point, item_id)
            oracle.insert(point, item_id)
        q = Point(0.62, 0.41)
        for k in (1, 5, 25, 150):
            got = [i for _, i in grid.k_nearest_neighbors(q, k)]
            expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
            assert got == expected


class TestClamping:
    def test_out_of_extent_points_clamped_but_queryable(self):
        grid = GridIndex(bounds=Rect(0, 0, 1, 1))
        grid.insert(Point(1.7, 1.9), 1)  # clamped into border cell
        hits = grid.window_query(Rect(1.5, 1.5, 2.0, 2.0))
        assert [i for _, i in hits] == [1]

    def test_nn_with_clamped_points(self):
        grid = GridIndex()
        grid.insert(Point(2.0, 2.0), 1)
        grid.insert(Point(0.1, 0.1), 2)
        assert grid.nearest_neighbor(Point(1.8, 1.8))[1] == 1


class TestDeletion:
    def test_delete(self):
        grid = GridIndex()
        grid.insert(Point(0.5, 0.5), 1)
        assert grid.delete(Point(0.5, 0.5), 1)
        assert not grid.delete(Point(0.5, 0.5), 1)
        assert len(grid) == 0

    def test_delete_wrong_cell(self):
        grid = GridIndex()
        grid.insert(Point(0.1, 0.1), 1)
        assert not grid.delete(Point(0.9, 0.9), 1)


class TestOccupancy:
    def test_occupancy_totals(self):
        grid = GridIndex(resolution=4)
        for point, item_id in _random_entries(100):
            grid.insert(point, item_id)
        occupancy = grid.occupancy()
        assert sum(occupancy.values()) == 100
        assert all(count > 0 for count in occupancy.values())

    def test_resolution_one_degenerates_to_scan(self):
        grid = GridIndex(resolution=1)
        entries = _random_entries(50)
        for point, item_id in entries:
            grid.insert(point, item_id)
        window = Rect(0.25, 0.25, 0.75, 0.75)
        expected = sorted(
            i for p, i in entries if window.contains_point(p)
        )
        assert sorted(i for _, i in grid.window_query(window)) == expected
