"""Cross-index equivalence: every index answers every query identically.

These are the integration tests of the index substrate: all five real
indexes must agree with the brute-force oracle on randomly generated
workloads, including hypothesis-driven adversarial ones.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index import (
    BruteForceIndex,
    GridIndex,
    KDTree,
    QuadTree,
    RStarTree,
    RTree,
)

ALL_INDEX_CLASSES = [RTree, RStarTree, KDTree, QuadTree, GridIndex]

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_points = st.builds(Point, unit, unit)


def _build_all(entries):
    oracle = BruteForceIndex()
    indexes = [cls() for cls in ALL_INDEX_CLASSES]
    for point, item_id in entries:
        oracle.insert(point, item_id)
        for index in indexes:
            index.insert(point, item_id)
    return oracle, indexes


@pytest.fixture(scope="module")
def loaded_indexes():
    rng = random.Random(31)
    entries = [(Point(rng.random(), rng.random()), i) for i in range(800)]
    return _build_all(entries)


class TestWindowEquivalence:
    @pytest.mark.parametrize(
        "window",
        [
            Rect(0, 0, 1, 1),
            Rect(0.45, 0.45, 0.55, 0.55),
            Rect(0.0, 0.0, 0.1, 1.0),
            Rect(0.9999, 0.9999, 1.0, 1.0),
            Rect(0.3, 0.3, 0.3, 0.3),
        ],
    )
    def test_fixed_windows(self, loaded_indexes, window):
        oracle, indexes = loaded_indexes
        expected = sorted(i for _, i in oracle.window_query(window))
        for index in indexes:
            got = sorted(i for _, i in index.window_query(window))
            assert got == expected, type(index).__name__

    def test_random_windows(self, loaded_indexes):
        oracle, indexes = loaded_indexes
        rng = random.Random(33)
        for _ in range(30):
            x1, x2 = sorted((rng.random(), rng.random()))
            y1, y2 = sorted((rng.random(), rng.random()))
            window = Rect(x1, y1, x2, y2)
            expected = sorted(i for _, i in oracle.window_query(window))
            for index in indexes:
                got = sorted(i for _, i in index.window_query(window))
                assert got == expected, type(index).__name__


class TestNNEquivalence:
    def test_random_queries(self, loaded_indexes):
        oracle, indexes = loaded_indexes
        rng = random.Random(35)
        for _ in range(50):
            q = Point(rng.random(), rng.random())
            expected_distance = oracle.nearest_neighbor(q)[0].distance_to(q)
            for index in indexes:
                got = index.nearest_neighbor(q)
                assert got[0].distance_to(q) == expected_distance, type(
                    index
                ).__name__

    def test_knn_queries(self, loaded_indexes):
        oracle, indexes = loaded_indexes
        q = Point(0.41, 0.59)
        for k in (1, 2, 10, 50):
            expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
            for index in indexes:
                got = [i for _, i in index.k_nearest_neighbors(q, k)]
                assert got == expected, type(index).__name__


class TestTieBreaking:
    def test_knn_on_duplicate_locations_is_deterministic(self):
        """Equidistant entries (exact duplicates) must come back in id
        order from every index — the contract that lets kNN answers be
        compared across implementations verbatim."""
        rng = random.Random(41)
        entries = []
        row = 0
        for _ in range(40):
            p = Point(rng.random(), rng.random())
            for _ in range(rng.randint(1, 4)):  # 1-4 copies per location
                entries.append((p, row))
                row += 1
        oracle, indexes = _build_all(entries)
        for _ in range(20):
            q = Point(rng.random(), rng.random())
            for k in (1, 5, len(entries)):
                expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
                for index in indexes:
                    got = [i for _, i in index.k_nearest_neighbors(q, k)]
                    assert got == expected, type(index).__name__

    def test_knn_from_a_duplicate_location_itself(self):
        entries = [(Point(0.5, 0.5), i) for i in range(6)] + [
            (Point(0.9, 0.9), 6)
        ]
        oracle, indexes = _build_all(entries)
        expected = [i for _, i in oracle.k_nearest_neighbors(Point(0.5, 0.5), 7)]
        assert expected == [0, 1, 2, 3, 4, 5, 6]
        for index in indexes:
            got = [i for _, i in index.k_nearest_neighbors(Point(0.5, 0.5), 7)]
            assert got == expected, type(index).__name__


class TestHypothesisEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(unit_points, st.integers(0, 10_000)),
            min_size=1,
            max_size=60,
            unique_by=lambda e: e[1],
        ),
        window_corners=st.tuples(unit, unit, unit, unit),
    )
    def test_window_query_equivalence(self, entries, window_corners):
        x1, y1, x2, y2 = window_corners
        window = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        oracle, indexes = _build_all(entries)
        expected = sorted(i for _, i in oracle.window_query(window))
        for index in indexes:
            got = sorted(i for _, i in index.window_query(window))
            assert got == expected, type(index).__name__

    @settings(max_examples=40, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(unit_points, st.integers(0, 10_000)),
            min_size=1,
            max_size=60,
            unique_by=lambda e: e[1],
        ),
        query=unit_points,
    )
    def test_nn_distance_equivalence(self, entries, query):
        oracle, indexes = _build_all(entries)
        expected = oracle.nearest_neighbor(query)[0].distance_to(query)
        for index in indexes:
            got = index.nearest_neighbor(query)[0].distance_to(query)
            assert got == expected, type(index).__name__

    @settings(max_examples=25, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(unit_points, st.integers(0, 10_000)),
            min_size=2,
            max_size=40,
            unique_by=lambda e: e[1],
        ),
        survivors=st.data(),
    )
    def test_delete_then_query(self, entries, survivors):
        keep = survivors.draw(
            st.sets(
                st.sampled_from([i for _, i in entries]),
                max_size=len(entries),
            )
        )
        oracle, indexes = _build_all(entries)
        for point, item_id in entries:
            if item_id not in keep:
                assert oracle.delete(point, item_id)
                for index in indexes:
                    assert index.delete(point, item_id), type(index).__name__
        window = Rect(0, 0, 1, 1)
        expected = sorted(i for _, i in oracle.window_query(window))
        for index in indexes:
            got = sorted(i for _, i in index.window_query(window))
            assert got == expected, type(index).__name__
