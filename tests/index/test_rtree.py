"""Unit tests for the Guttman R-tree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import BruteForceIndex
from repro.index.rtree import RTree


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)  # > M/2
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.nearest_neighbor(Point(0, 0)) is None
        assert tree.height == 1

    def test_insertions_counted(self):
        tree = RTree(max_entries=4)
        for point, item_id in _random_entries(100):
            tree.insert(point, item_id)
        assert len(tree) == 100

    def test_invariants_after_insertions(self):
        tree = RTree(max_entries=4)
        for point, item_id in _random_entries(300, seed=3):
            tree.insert(point, item_id)
        tree.check_invariants()

    def test_tree_grows_in_height(self):
        tree = RTree(max_entries=4)
        for point, item_id in _random_entries(200):
            tree.insert(point, item_id)
        assert tree.height >= 3

    def test_node_count_positive(self):
        tree = RTree(max_entries=4)
        for point, item_id in _random_entries(50):
            tree.insert(point, item_id)
        assert tree.node_count() > 50 / 4


class TestBulkLoad:
    def test_str_pack_correctness(self):
        entries = _random_entries(500, seed=5)
        tree = RTree()
        tree.bulk_load(entries)
        assert len(tree) == 500
        tree.check_invariants()
        oracle = BruteForceIndex()
        oracle.bulk_load(entries)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        assert sorted(i for _, i in tree.window_query(window)) == sorted(
            i for _, i in oracle.window_query(window)
        )

    def test_bulk_load_empty(self):
        tree = RTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_single(self):
        tree = RTree()
        tree.bulk_load([(Point(0.5, 0.5), 7)])
        assert len(tree) == 1
        assert tree.nearest_neighbor(Point(0, 0))[1] == 7

    def test_bulk_load_on_nonempty_falls_back_to_insert(self):
        tree = RTree(max_entries=4)
        tree.insert(Point(0.1, 0.1), 0)
        tree.bulk_load(_random_entries(50, seed=1))
        assert len(tree) == 51
        tree.check_invariants()

    def test_bulk_load_height_logarithmic(self):
        tree = RTree(max_entries=16)
        tree.bulk_load(_random_entries(4096, seed=2))
        assert tree.height <= 4


class TestWindowQuery:
    def test_matches_brute_force(self):
        entries = _random_entries(400, seed=7)
        tree = RTree(max_entries=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        for window in (
            Rect(0, 0, 1, 1),
            Rect(0.3, 0.3, 0.4, 0.4),
            Rect(0.9, 0.9, 1.5, 1.5),
            Rect(-1, -1, -0.5, -0.5),
        ):
            assert sorted(i for _, i in tree.window_query(window)) == sorted(
                i for _, i in oracle.window_query(window)
            )

    def test_empty_window(self):
        tree = RTree()
        for point, item_id in _random_entries(50):
            tree.insert(point, item_id)
        assert tree.window_query(Rect(2, 2, 3, 3)) == []

    def test_node_accesses_less_than_full_scan(self):
        tree = RTree(max_entries=16)
        tree.bulk_load(_random_entries(2000, seed=9))
        tree.stats.reset()
        tree.window_query(Rect(0.4, 0.4, 0.45, 0.45))
        # A selective window must not visit every node.
        assert tree.stats.node_accesses < tree.node_count() / 2


class TestNearestNeighbor:
    def test_matches_brute_force(self):
        entries = _random_entries(300, seed=11)
        tree = RTree(max_entries=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        rng = random.Random(99)
        for _ in range(50):
            q = Point(rng.random(), rng.random())
            expected = oracle.nearest_neighbor(q)
            got = tree.nearest_neighbor(q)
            assert got[0].distance_to(q) == expected[0].distance_to(q)

    def test_knn_matches_brute_force(self):
        entries = _random_entries(200, seed=13)
        tree = RTree(max_entries=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        q = Point(0.31, 0.62)
        for k in (1, 5, 20, 200, 500):
            got = [i for _, i in tree.k_nearest_neighbors(q, k)]
            expected = [i for _, i in oracle.k_nearest_neighbors(q, k)]
            assert got == expected

    def test_nn_of_exact_point(self):
        tree = RTree()
        for point, item_id in _random_entries(100):
            tree.insert(point, item_id)
        point, item_id = _random_entries(100)[42]
        assert tree.nearest_neighbor(point)[1] == item_id


class TestDeletion:
    def test_delete_returns_presence(self):
        tree = RTree(max_entries=4)
        tree.insert(Point(0.5, 0.5), 1)
        assert tree.delete(Point(0.5, 0.5), 1)
        assert not tree.delete(Point(0.5, 0.5), 1)
        assert len(tree) == 0

    def test_delete_requires_matching_id(self):
        tree = RTree()
        tree.insert(Point(0.5, 0.5), 1)
        assert not tree.delete(Point(0.5, 0.5), 2)
        assert len(tree) == 1

    def test_delete_half_preserves_queries(self):
        entries = _random_entries(200, seed=17)
        tree = RTree(max_entries=4)
        for point, item_id in entries:
            tree.insert(point, item_id)
        for point, item_id in entries[:100]:
            assert tree.delete(point, item_id)
        tree.check_invariants()
        remaining = sorted(i for _, i in tree.items())
        assert remaining == list(range(100, 200))
        window = Rect(0.1, 0.1, 0.9, 0.9)
        expected = sorted(
            i for p, i in entries[100:] if window.contains_point(p)
        )
        assert sorted(i for _, i in tree.window_query(window)) == expected

    def test_delete_all(self):
        entries = _random_entries(64, seed=19)
        tree = RTree(max_entries=4)
        for point, item_id in entries:
            tree.insert(point, item_id)
        for point, item_id in entries:
            assert tree.delete(point, item_id)
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []

    def test_reinsert_after_delete(self):
        tree = RTree(max_entries=4)
        for point, item_id in _random_entries(50):
            tree.insert(point, item_id)
        for point, item_id in _random_entries(50)[:25]:
            tree.delete(point, item_id)
        for point, item_id in _random_entries(50, seed=23)[:25]:
            tree.insert(point, item_id)
        assert len(tree) == 50
        tree.check_invariants()


class TestDuplicates:
    def test_duplicate_points_distinct_ids(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert(Point(0.5, 0.5), i)
        hits = tree.window_query(Rect(0.5, 0.5, 0.5, 0.5))
        assert sorted(i for _, i in hits) == list(range(20))

    def test_delete_specific_duplicate(self):
        tree = RTree(max_entries=4)
        for i in range(5):
            tree.insert(Point(0.5, 0.5), i)
        assert tree.delete(Point(0.5, 0.5), 3)
        remaining = sorted(i for _, i in tree.items())
        assert remaining == [0, 1, 2, 4]
