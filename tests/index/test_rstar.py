"""Unit tests for the R*-tree variant."""

import random


from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import BruteForceIndex
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return [(Point(rng.random(), rng.random()), i) for i in range(n)]


class TestRStarBasics:
    def test_insert_and_count(self):
        tree = RStarTree(max_entries=8)
        for point, item_id in _random_entries(200, seed=1):
            tree.insert(point, item_id)
        assert len(tree) == 200

    def test_invariants(self):
        tree = RStarTree(max_entries=8)
        for point, item_id in _random_entries(300, seed=2):
            tree.insert(point, item_id)
        tree.check_invariants()

    def test_window_matches_brute_force(self):
        entries = _random_entries(400, seed=3)
        tree = RStarTree(max_entries=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        for window in (
            Rect(0, 0, 1, 1),
            Rect(0.25, 0.25, 0.5, 0.5),
            Rect(0.8, 0.1, 0.95, 0.4),
        ):
            assert sorted(i for _, i in tree.window_query(window)) == sorted(
                i for _, i in oracle.window_query(window)
            )

    def test_nn_matches_brute_force(self):
        entries = _random_entries(250, seed=5)
        tree = RStarTree(max_entries=8)
        oracle = BruteForceIndex()
        for point, item_id in entries:
            tree.insert(point, item_id)
            oracle.insert(point, item_id)
        rng = random.Random(7)
        for _ in range(40):
            q = Point(rng.random(), rng.random())
            got = tree.nearest_neighbor(q)
            expected = oracle.nearest_neighbor(q)
            assert got[0].distance_to(q) == expected[0].distance_to(q)

    def test_delete(self):
        entries = _random_entries(120, seed=9)
        tree = RStarTree(max_entries=4)
        for point, item_id in entries:
            tree.insert(point, item_id)
        for point, item_id in entries[:60]:
            assert tree.delete(point, item_id)
        assert sorted(i for _, i in tree.items()) == list(range(60, 120))

    def test_duplicates(self):
        tree = RStarTree(max_entries=4)
        for i in range(12):
            tree.insert(Point(0.3, 0.3), i)
        hits = tree.window_query(Rect(0.3, 0.3, 0.3, 0.3))
        assert sorted(i for _, i in hits) == list(range(12))


class TestRStarQuality:
    def test_less_overlap_than_plain_rtree(self):
        """R* should produce equal-or-less sibling overlap on clustered data.

        This is its design goal; allow some slack because both are heuristic.
        """
        rng = random.Random(11)
        entries = []
        for cluster in range(10):
            cx, cy = rng.random(), rng.random()
            for i in range(40):
                entries.append(
                    (
                        Point(cx + rng.gauss(0, 0.01), cy + rng.gauss(0, 0.01)),
                        cluster * 40 + i,
                    )
                )
        plain = RTree(max_entries=8)
        star = RStarTree(max_entries=8)
        for point, item_id in entries:
            plain.insert(point, item_id)
            star.insert(point, item_id)

        def total_leaf_overlap(tree):
            leaves = []
            stack = [tree._root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    if node.mbr is not None:
                        leaves.append(node.mbr)
                else:
                    stack.extend(node.children)
            overlap = 0.0
            for i in range(len(leaves)):
                for j in range(i + 1, len(leaves)):
                    overlap += leaves[i].intersection_area(leaves[j])
            return overlap

        assert total_leaf_overlap(star) <= total_leaf_overlap(plain) * 1.5

    def test_same_query_results_as_rtree(self):
        entries = _random_entries(300, seed=13)
        plain = RTree(max_entries=8)
        star = RStarTree(max_entries=8)
        for point, item_id in entries:
            plain.insert(point, item_id)
            star.insert(point, item_id)
        window = Rect(0.1, 0.4, 0.6, 0.9)
        assert sorted(i for _, i in plain.window_query(window)) == sorted(
            i for _, i in star.window_query(window)
        )
