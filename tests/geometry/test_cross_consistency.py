"""Cross-operation consistency properties of the geometry kernel.

Different operations answer overlapping questions (e.g. two segments
"intersect" iff an ``intersection_point`` exists for proper crossings;
polygon containment relates to MBR containment).  These tests pin the
relationships down so the kernel cannot drift into self-contradiction.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, convex_hull
from repro.geometry.segment import Segment

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_points = st.builds(Point, unit, unit)


class TestSegmentConsistency:
    @settings(max_examples=100)
    @given(unit_points, unit_points, unit_points, unit_points)
    def test_intersection_point_implies_intersects(self, a, b, c, d):
        s1, s2 = Segment(a, b), Segment(c, d)
        point = s1.intersection_point(s2)
        if point is not None:
            assert s1.intersects(s2)

    @settings(max_examples=100)
    @given(unit_points, unit_points, unit_points)
    def test_contains_point_matches_distance(self, a, b, p):
        # contains_point is exact; distance goes through the (approximate)
        # closest-point projection, so containment implies distance ~ 0.
        assume(a != b)
        segment = Segment(a, b)
        if segment.contains_point(p):
            assert segment.distance_to_point(p) < 1e-9

    @settings(max_examples=100)
    @given(unit_points, unit_points, unit_points)
    def test_closest_point_is_contained(self, a, b, p):
        segment = Segment(a, b)
        closest = segment.closest_point_to(p)
        # The closest point lies on the closed segment up to rounding.
        assert segment.distance_to_point(closest) < 1e-9


class TestPolygonConsistency:
    @settings(max_examples=60)
    @given(st.lists(unit_points, min_size=3, max_size=15), unit_points)
    def test_containment_implies_mbr_containment(self, vertices, probe):
        hull = convex_hull(vertices)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        if polygon.contains_point(probe):
            assert polygon.mbr.contains_point(probe)

    @settings(max_examples=60)
    @given(st.lists(unit_points, min_size=3, max_size=15))
    def test_boundary_points_are_contained(self, vertices):
        hull = convex_hull(vertices)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        for edge in polygon.edges():
            midpoint = edge.midpoint
            if polygon.point_on_boundary(midpoint):
                assert polygon.contains_point(midpoint)
                assert not polygon.contains_point(midpoint, boundary=False)

    @settings(max_examples=60)
    @given(st.lists(unit_points, min_size=3, max_size=15))
    def test_area_never_exceeds_mbr_area(self, vertices):
        hull = convex_hull(vertices)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        assert polygon.area <= polygon.mbr.area + 1e-12

    @settings(max_examples=40)
    @given(st.lists(unit_points, min_size=3, max_size=12), unit_points, unit_points)
    def test_crosses_boundary_consistent_with_containment(
        self, vertices, a, b
    ):
        """If exactly one endpoint of a segment is strictly inside and the
        other strictly outside, the segment must cross the boundary."""
        hull = convex_hull(vertices)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        a_in = polygon.contains_point(a, boundary=False)
        b_in = polygon.contains_point(b, boundary=False)
        a_on = polygon.point_on_boundary(a)
        b_on = polygon.point_on_boundary(b)
        if a_in != b_in and not (a_on or b_on):
            assert polygon.crosses_boundary_xy(a.x, a.y, b.x, b.y)

    def test_triangulation_area_matches_shoelace(self):
        from repro.geometry.random_shapes import random_star_polygon
        from repro.geometry.triangulate import triangle_area

        for seed in range(25):
            polygon = random_star_polygon(9, random.Random(seed))
            total = sum(triangle_area(t) for t in polygon.triangulate())
            assert abs(total - polygon.area) < 1e-9


class TestCircleConsistency:
    @settings(max_examples=80)
    @given(
        unit_points,
        st.floats(min_value=0.01, max_value=0.5),
        unit_points,
    )
    def test_containment_implies_mbr_containment(self, center, radius, probe):
        disc = Circle(center, radius)
        if disc.contains_point(probe):
            assert disc.mbr.contains_point(probe)

    @settings(max_examples=80)
    @given(
        unit_points,
        st.floats(min_value=0.01, max_value=0.5),
        unit_points,
        unit_points,
    )
    def test_crossing_consistent_with_containment(
        self, center, radius, a, b
    ):
        disc = Circle(center, radius)
        a_in = disc.contains_point(a, boundary=False)
        b_in = disc.contains_point(b, boundary=False)
        if a_in != b_in and not (
            disc.point_on_boundary(a) or disc.point_on_boundary(b)
        ):
            assert disc.crosses_boundary_xy(a.x, a.y, b.x, b.y)

    @settings(max_examples=80)
    @given(unit_points, st.floats(min_value=0.01, max_value=0.5))
    def test_area_never_exceeds_mbr_area(self, center, radius):
        disc = Circle(center, radius)
        assert disc.area <= disc.mbr.area
