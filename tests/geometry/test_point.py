"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, centroid, collinear


class TestPointBasics:
    def test_coordinates(self):
        p = Point(1.5, -2.0)
        assert p.x == 1.5
        assert p.y == -2.0

    def test_equality(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_immutable(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 1.0

    def test_unpacking(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_as_tuple(self):
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)

    def test_from_sequence(self):
        assert Point.from_sequence([3, 4]) == Point(3.0, 4.0)
        assert Point.from_sequence((1.5, 2.5)) == Point(1.5, 2.5)

    def test_from_sequence_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Point.from_sequence([1.0, 2.0, 3.0])


class TestPointArithmetic:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_scalar_division(self):
        assert Point(3, 6) / 3 == Point(1, 2)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_dot_product(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11.0

    def test_cross_product_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0

    def test_cross_of_parallel_vectors_is_zero(self):
        assert Point(2, 4).cross(Point(1, 2)) == 0.0


class TestDistances:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.1, 2.2), Point(-3.3, 4.4)
        assert a.distance_to(b) == b.distance_to(a)

    def test_norm(self):
        assert Point(3, 4).norm() == 5.0
        assert Point(3, 4).squared_norm() == 25.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)


class TestRotation:
    def test_quarter_turn_about_origin(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_rotation_about_a_center(self):
        rotated = Point(2, 1).rotated(math.pi, about=Point(1, 1))
        assert rotated.x == pytest.approx(0.0)
        assert rotated.y == pytest.approx(1.0)

    def test_rotation_preserves_distance_to_center(self):
        center = Point(0.3, 0.7)
        p = Point(1.2, -0.4)
        for angle in (0.1, 1.0, 2.5, -0.7):
            assert p.rotated(angle, about=center).distance_to(
                center
            ) == pytest.approx(p.distance_to(center))


class TestCentroid:
    def test_centroid_of_square_corners(self):
        points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert centroid(points) == Point(0.5, 0.5)

    def test_centroid_of_single_point(self):
        assert centroid([Point(2, 3)]) == Point(2, 3)

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestCollinear:
    def test_collinear_points(self):
        assert collinear(Point(0, 0), Point(1, 1), Point(2, 2))

    def test_non_collinear_points(self):
        assert not collinear(Point(0, 0), Point(1, 1), Point(2, 2.01))

    def test_tolerance(self):
        assert collinear(
            Point(0, 0), Point(1, 1), Point(2, 2.01), tolerance=0.1
        )
