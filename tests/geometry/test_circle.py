"""Unit tests for circular query regions."""

import math
import random

import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion, interior_seed_position
from repro.geometry.segment import Segment

UNIT_CIRCLE = Circle(Point(0.0, 0.0), 1.0)


class TestConstruction:
    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), 0.0)
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_conforms_to_query_region(self):
        assert isinstance(UNIT_CIRCLE, QueryRegion)


class TestMeasures:
    def test_area(self):
        assert UNIT_CIRCLE.area == pytest.approx(math.pi)

    def test_perimeter(self):
        assert UNIT_CIRCLE.perimeter == pytest.approx(2 * math.pi)

    def test_mbr(self):
        assert Circle(Point(1, 2), 0.5).mbr == Rect(0.5, 1.5, 1.5, 2.5)

    def test_centroid_is_center(self):
        assert Circle(Point(3, 4), 2).centroid == Point(3, 4)


class TestContainment:
    def test_interior(self):
        assert UNIT_CIRCLE.contains_point(Point(0.3, 0.4))

    def test_exterior(self):
        assert not UNIT_CIRCLE.contains_point(Point(0.8, 0.8))

    def test_boundary_inclusive(self):
        assert UNIT_CIRCLE.contains_point(Point(1.0, 0.0))
        assert UNIT_CIRCLE.contains_point(Point(0.0, -1.0))

    def test_boundary_exclusive_option(self):
        assert not UNIT_CIRCLE.contains_point(Point(1.0, 0.0), boundary=False)
        assert UNIT_CIRCLE.contains_point(Point(0.5, 0.0), boundary=False)

    def test_point_on_boundary(self):
        assert UNIT_CIRCLE.point_on_boundary(Point(0.0, 1.0))
        assert not UNIT_CIRCLE.point_on_boundary(Point(0.0, 0.5))


class TestBoundaryCrossing:
    def test_crossing_segment(self):
        assert UNIT_CIRCLE.crosses_boundary_xy(0.0, 0.0, 2.0, 0.0)

    def test_outside_segment(self):
        assert not UNIT_CIRCLE.crosses_boundary_xy(2.0, 2.0, 3.0, 3.0)

    def test_interior_chord_does_not_cross(self):
        assert not UNIT_CIRCLE.crosses_boundary_xy(-0.5, 0.0, 0.5, 0.0)

    def test_through_segment_crosses(self):
        # Both endpoints outside, passing through the disc.
        assert UNIT_CIRCLE.crosses_boundary_xy(-2.0, 0.0, 2.0, 0.0)

    def test_tangent_touches(self):
        assert UNIT_CIRCLE.crosses_boundary_xy(-2.0, 1.0, 2.0, 1.0)

    def test_near_tangent_misses(self):
        assert not UNIT_CIRCLE.crosses_boundary_xy(-2.0, 1.0001, 2.0, 1.0001)

    def test_intersects_segment(self):
        assert UNIT_CIRCLE.intersects_segment(
            Segment(Point(0.1, 0.1), Point(0.2, 0.2))
        )
        assert not UNIT_CIRCLE.intersects_segment(
            Segment(Point(5, 5), Point(6, 6))
        )


class TestSeedPosition:
    def test_interior_seed_is_center(self):
        assert interior_seed_position(UNIT_CIRCLE) == Point(0.0, 0.0)


class TestTransforms:
    def test_scaled(self):
        assert UNIT_CIRCLE.scaled(2.0).radius == 2.0
        with pytest.raises(ValueError):
            UNIT_CIRCLE.scaled(0.0)

    def test_translated(self):
        assert Circle(Point(1, 1), 2).translated(1, -1).center == Point(2, 0)


class TestCircleAreaQueries:
    """Circles plug into both area-query methods unchanged."""

    @pytest.fixture(scope="class")
    def db(self):
        from repro.core.database import SpatialDatabase
        from repro.workloads.generators import uniform_points

        return SpatialDatabase.from_points(
            uniform_points(400, seed=161)
        ).prepare()

    def test_methods_agree_with_brute_force(self, db):
        rng = random.Random(163)
        for _ in range(10):
            circle = Circle(
                Point(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)),
                rng.uniform(0.05, 0.2),
            )
            voronoi = db.area_query(circle, method="voronoi")
            traditional = db.area_query(circle, method="traditional")
            expected = sorted(
                i
                for i in range(len(db))
                if circle.contains_point(db.point(i))
            )
            assert voronoi.ids == expected
            assert traditional.ids == expected

    def test_voronoi_shell_smaller_than_mbr_corners(self):
        # A disc covers pi/4 of its MBR, so the traditional method wastes
        # ~21 % of its candidates in the corners; at sufficient density the
        # Voronoi shell (perimeter-proportional) is thinner than that.
        from repro.core.database import SpatialDatabase
        from repro.workloads.generators import uniform_points

        db = SpatialDatabase.from_points(
            uniform_points(4000, seed=165), backend_kind="scipy"
        ).prepare()
        circle = Circle(Point(0.5, 0.5), 0.25)
        voronoi = db.area_query(circle, method="voronoi")
        traditional = db.area_query(circle, method="traditional")
        assert voronoi.ids == traditional.ids
        assert voronoi.stats.candidates < traditional.stats.candidates
