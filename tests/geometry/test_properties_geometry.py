"""Property-based tests (hypothesis) for the geometry kernel."""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, convex_hull
from repro.geometry.predicates import (
    Orientation,
    incircle,
    orientation,
)
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment, segments_intersect

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinate, coordinate)
unit_coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_points = st.builds(Point, unit_coordinate, unit_coordinate)


class TestOrientationProperties:
    @given(points, points, points)
    def test_antisymmetry(self, a, b, c):
        assert orientation(a, b, c).value == -orientation(b, a, c).value

    @given(points, points, points)
    def test_cyclic_invariance(self, a, b, c):
        assert orientation(a, b, c) is orientation(b, c, a)

    @given(points, points)
    def test_degenerate_pairs_collinear(self, a, b):
        assert orientation(a, a, b) is Orientation.COLLINEAR
        assert orientation(a, b, b) is Orientation.COLLINEAR
        assert orientation(a, b, a) is Orientation.COLLINEAR

    @given(points, points, st.floats(min_value=-2.0, max_value=3.0))
    def test_points_on_line_are_collinear(self, a, b, t):
        c = Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
        # c is constructed on the line through a and b up to rounding;
        # with exact construction (t in {0, 1}) it must be collinear.
        if t in (0.0, 1.0):
            assert orientation(a, b, c) is Orientation.COLLINEAR


class TestIncircleProperties:
    @given(points, points, points, points)
    def test_incircle_antisymmetric_in_triangle_orientation(self, a, b, c, d):
        forward = incircle(a, b, c, d)
        swapped = incircle(a, c, b, d)
        # Swapping two triangle vertices flips triangle orientation and the
        # in-circle sign.
        if forward > 0:
            assert swapped < 0
        elif forward < 0:
            assert swapped > 0
        else:
            assert swapped == 0

    @given(points, points, points)
    def test_triangle_vertex_is_cocircular(self, a, b, c):
        assert incircle(a, b, c, a) == 0.0
        assert incircle(a, b, c, b) == 0.0
        assert incircle(a, b, c, c) == 0.0


class TestSegmentProperties:
    @given(points, points, points, points)
    def test_intersection_symmetric(self, a, b, c, d):
        assert segments_intersect(a, b, c, d) == segments_intersect(c, d, a, b)

    @given(points, points, points, points)
    def test_intersection_endpoint_order_invariant(self, a, b, c, d):
        assert segments_intersect(a, b, c, d) == segments_intersect(b, a, d, c)

    @given(points, points)
    def test_segment_intersects_itself(self, a, b):
        assert segments_intersect(a, b, a, b)

    @given(points, points, points)
    def test_shared_endpoint_always_intersects(self, a, b, c):
        assert segments_intersect(a, b, b, c)

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_closest_point_is_on_segment_line(self, a, b, t):
        assume(a != b)
        segment = Segment(a, b)
        p = Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
        closest = segment.closest_point_to(p)
        assert closest.distance_to(p) <= 1e-6 + min(
            a.distance_to(p), b.distance_to(p)
        )


class TestRectProperties:
    @given(st.lists(points, min_size=1, max_size=30))
    def test_mbr_contains_all_points(self, point_list):
        mbr = Rect.from_points(point_list)
        assert all(mbr.contains_point(p) for p in point_list)

    @given(st.lists(points, min_size=1, max_size=15), points)
    def test_union_point_monotone(self, point_list, extra):
        mbr = Rect.from_points(point_list)
        grown = mbr.union_point(extra)
        assert grown.contains_rect(mbr)
        assert grown.contains_point(extra)

    @given(
        st.lists(points, min_size=1, max_size=10),
        st.lists(points, min_size=1, max_size=10),
    )
    def test_union_commutes(self, list_a, list_b):
        a = Rect.from_points(list_a)
        b = Rect.from_points(list_b)
        assert a.union(b) == b.union(a)
        assert a.union(b).contains_rect(a)
        assert a.union(b).contains_rect(b)

    @given(st.lists(points, min_size=2, max_size=10), points)
    def test_distance_lower_bounds_member_distance(self, point_list, query):
        # MINDIST property: rect distance never exceeds the distance to any
        # point inside the rect — the correctness basis of best-first NN.
        mbr = Rect.from_points(point_list)
        for p in point_list:
            assert mbr.distance_to_point(query) <= query.distance_to(p) + 1e-9


class TestConvexHullProperties:
    @given(st.lists(unit_points, min_size=3, max_size=40))
    def test_hull_contains_all_points(self, point_list):
        hull = convex_hull(point_list)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        assert polygon.is_convex()
        for p in point_list:
            assert polygon.contains_point(p)

    @given(st.lists(unit_points, min_size=3, max_size=25))
    def test_hull_vertices_are_input_points(self, point_list):
        hull = convex_hull(point_list)
        assert set(hull) <= set(point_list)


class TestPolygonContainmentProperties:
    @settings(max_examples=50)
    @given(st.lists(unit_points, min_size=3, max_size=20), unit_points)
    def test_crossing_equals_winding(self, point_list, probe):
        hull = convex_hull(point_list)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        assert polygon.contains_point(probe) == polygon.contains_point_winding(
            probe
        )

    @settings(max_examples=50)
    @given(st.lists(unit_points, min_size=3, max_size=20))
    def test_vertices_are_contained(self, point_list):
        hull = convex_hull(point_list)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        for v in polygon.vertices:
            assert polygon.contains_point(v)
            assert polygon.point_on_boundary(v)

    @settings(max_examples=50)
    @given(st.lists(unit_points, min_size=3, max_size=20))
    def test_centroid_of_convex_polygon_inside(self, point_list):
        hull = convex_hull(point_list)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        assume(polygon.area > 1e-9)
        assert polygon.contains_point(polygon.centroid)

    @settings(max_examples=50)
    @given(st.lists(unit_points, min_size=3, max_size=15), unit_points)
    def test_outside_mbr_means_outside_polygon(self, point_list, probe):
        hull = convex_hull(point_list)
        assume(len(hull) >= 3)
        polygon = Polygon(hull)
        if not polygon.mbr.contains_point(probe):
            assert not polygon.contains_point(probe)
