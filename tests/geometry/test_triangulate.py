"""Unit tests for ear-clipping polygon triangulation."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.triangulate import (
    sample_interior,
    triangle_area,
    triangle_interior_point,
    triangulate_polygon,
)
from repro.geometry.random_shapes import random_star_polygon


class TestTriangulation:
    def test_triangle_is_itself(self):
        ring = [Point(0, 0), Point(1, 0), Point(0, 1)]
        triangles = triangulate_polygon(ring)
        assert len(triangles) == 1

    def test_square_into_two(self):
        square = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        triangles = triangulate_polygon(square.vertices)
        assert len(triangles) == 2

    def test_triangle_count(self):
        for seed in range(10):
            polygon = random_star_polygon(12, random.Random(seed))
            triangles = triangulate_polygon(polygon.vertices)
            assert len(triangles) == 10  # n - 2

    def test_areas_sum_to_polygon_area(self):
        for seed in range(15):
            polygon = random_star_polygon(10, random.Random(seed))
            triangles = triangulate_polygon(polygon.vertices)
            total = sum(triangle_area(t) for t in triangles)
            assert total == pytest.approx(polygon.area, rel=1e-9)

    def test_concave_polygon(self, concave_polygon):
        triangles = triangulate_polygon(concave_polygon.vertices)
        total = sum(triangle_area(t) for t in triangles)
        assert total == pytest.approx(concave_polygon.area, rel=1e-9)
        # No triangle may cover the notch: all centroids inside the polygon.
        for t in triangles:
            assert concave_polygon.contains_point(triangle_interior_point(t))

    def test_collinear_vertex_dropped(self):
        # A square with a redundant mid-edge vertex still triangulates.
        ring = [
            Point(0, 0),
            Point(0.5, 0),
            Point(1, 0),
            Point(1, 1),
            Point(0, 1),
        ]
        triangles = triangulate_polygon(ring)
        total = sum(triangle_area(t) for t in triangles)
        assert total == pytest.approx(1.0)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            triangulate_polygon([Point(0, 0), Point(1, 1)])


class TestInteriorPoint:
    def test_horseshoe_interior(self):
        horseshoe = Polygon(
            [
                (0.0, 0.0),
                (1.0, 0.0),
                (1.0, 1.0),
                (0.0, 1.0),
                (0.0, 0.8),
                (0.8, 0.8),
                (0.8, 0.2),
                (0.0, 0.2),
            ]
        )
        p = horseshoe.interior_point()
        assert horseshoe.contains_point(p)
        assert not horseshoe.point_on_boundary(p)

    def test_random_polygons(self):
        for seed in range(20):
            polygon = random_star_polygon(10, random.Random(seed))
            p = polygon.interior_point()
            assert polygon.contains_point(p)


class TestSampling:
    def test_samples_inside(self, concave_polygon):
        rng = random.Random(271)
        for p in concave_polygon.sample_interior(300, rng):
            assert concave_polygon.contains_point(p)

    def test_sampling_is_roughly_uniform(self):
        # An L-shape: the three quadrant squares must each get ~1/3.
        polygon = Polygon(
            [(0, 0), (1, 0), (1, 0.5), (0.5, 0.5), (0.5, 1), (0, 1)]
        )
        rng = random.Random(273)
        samples = polygon.sample_interior(3000, rng)
        lower_left = sum(1 for p in samples if p.x < 0.5 and p.y < 0.5)
        lower_right = sum(1 for p in samples if p.x >= 0.5 and p.y < 0.5)
        upper_left = sum(1 for p in samples if p.x < 0.5 and p.y >= 0.5)
        for count in (lower_left, lower_right, upper_left):
            assert 800 < count < 1200

    def test_zero_area_rejected(self):
        with pytest.raises(ValueError):
            sample_interior(
                [Point(0, 0), Point(1, 1), Point(2, 2)], 5, random.Random(1)
            )
