"""Unit tests for the random polygon workload generators."""

import random

import pytest

from repro.geometry.random_shapes import (
    random_query_polygon,
    random_simple_polygon,
    random_star_polygon,
    scale_polygon_to_query_size,
)
from repro.geometry.rectangle import Rect


class TestStarPolygon:
    def test_vertex_count(self):
        for n in (3, 5, 10, 25):
            assert len(random_star_polygon(n, random.Random(1))) == n

    def test_always_simple(self):
        for seed in range(30):
            polygon = random_star_polygon(10, random.Random(seed))
            assert polygon.is_simple(), f"seed {seed} produced a non-simple polygon"

    def test_positive_area(self):
        for seed in range(20):
            assert random_star_polygon(10, random.Random(seed)).area > 0.0

    def test_deterministic_for_seed(self):
        p1 = random_star_polygon(10, random.Random(99))
        p2 = random_star_polygon(10, random.Random(99))
        assert p1 == p2

    def test_often_concave(self):
        # The paper's workload is "irregular, more often even concave";
        # with default spikiness most samples must be concave.
        concave = sum(
            not random_star_polygon(10, random.Random(seed)).is_convex()
            for seed in range(50)
        )
        assert concave >= 40

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_star_polygon(2)
        with pytest.raises(ValueError):
            random_star_polygon(10, irregularity=1.5)
        with pytest.raises(ValueError):
            random_star_polygon(10, spikiness=1.0)


class TestSimplePolygon:
    def test_always_simple(self):
        for seed in range(15):
            polygon = random_simple_polygon(8, random.Random(seed))
            assert polygon.is_simple()

    def test_vertex_count(self):
        assert len(random_simple_polygon(12, random.Random(3))) == 12

    def test_vertices_within_bounds(self):
        bounds = Rect(2.0, 3.0, 4.0, 5.0)
        polygon = random_simple_polygon(8, random.Random(5), bounds=bounds)
        for v in polygon.vertices:
            assert bounds.contains_point(v)

    def test_rejects_tiny_vertex_count(self):
        with pytest.raises(ValueError):
            random_simple_polygon(2)


class TestScaleToQuerySize:
    @pytest.mark.parametrize("query_size", [0.01, 0.02, 0.08, 0.32])
    def test_mbr_fraction(self, query_size):
        polygon = random_star_polygon(10, random.Random(7))
        scaled = scale_polygon_to_query_size(polygon, query_size)
        assert scaled.mbr.area == pytest.approx(query_size, rel=1e-6)

    def test_full_space_clamped_by_aspect_ratio(self):
        # A non-square polygon cannot reach MBR area 1.0 inside the unit
        # square without distortion; the scale factor is clamped so the
        # polygon still fits.
        polygon = random_star_polygon(10, random.Random(7))
        scaled = scale_polygon_to_query_size(polygon, 1.0)
        assert scaled.mbr.area <= 1.0
        assert Rect(0.0, 0.0, 1.0, 1.0).contains_rect(scaled.mbr)

    def test_fits_in_space(self):
        space = Rect(0.0, 0.0, 1.0, 1.0)
        rng = random.Random(11)
        for _ in range(25):
            polygon = random_star_polygon(10, rng)
            scaled = scale_polygon_to_query_size(polygon, 0.25, space, rng)
            assert space.contains_rect(scaled.mbr)

    def test_shape_preserved(self):
        polygon = random_star_polygon(10, random.Random(13))
        scaled = scale_polygon_to_query_size(polygon, 0.05)
        # Area / MBR-area ratio is scale-invariant.
        original_ratio = polygon.area / polygon.mbr.area
        scaled_ratio = scaled.area / scaled.mbr.area
        assert scaled_ratio == pytest.approx(original_ratio, rel=1e-9)

    def test_invalid_query_size(self):
        polygon = random_star_polygon(10, random.Random(1))
        with pytest.raises(ValueError):
            scale_polygon_to_query_size(polygon, 0.0)
        with pytest.raises(ValueError):
            scale_polygon_to_query_size(polygon, 1.5)


class TestQueryPolygon:
    def test_paper_defaults(self):
        polygon = random_query_polygon(0.01, rng=random.Random(5))
        assert len(polygon) == 10
        assert polygon.mbr.area == pytest.approx(0.01, rel=1e-6)
        assert polygon.is_simple()

    def test_random_placement_varies(self):
        rng = random.Random(17)
        centers = {
            random_query_polygon(0.01, rng=rng).centroid.as_tuple()
            for _ in range(10)
        }
        assert len(centers) == 10

    def test_polygon_inside_unit_square(self):
        rng = random.Random(23)
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for _ in range(20):
            polygon = random_query_polygon(0.08, rng=rng)
            assert space.contains_rect(polygon.mbr)
