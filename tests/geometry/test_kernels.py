"""Vectorized kernels vs scalar containment — bitwise-equality tests.

The whole columnar architecture rests on one contract: the array
kernels of :mod:`repro.geometry.kernels` answer *exactly* like the
scalar tests, point for point, including boundary touches, near-edge
rounding hazards, and denormal coordinate scales.  These tests attack
that contract directly; the end-to-end query equivalence suite
(``tests/core/test_columnar_equivalence.py``) covers the paths above.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.kernels import squared_distances
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.random_shapes import random_star_polygon
from repro.geometry.rectangle import Rect

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def adversarial_points(polygon: Polygon, rng: random.Random, count=200):
    """Random points plus vertices, edge midpoints and near-edge nudges."""
    pts = [(rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)) for _ in range(count)]
    ring = polygon.vertices
    for a, b in zip(ring, ring[1:] + ring[:1]):
        pts.append((a.x, a.y))
        mx, my = (a.x + b.x) / 2.0, (a.y + b.y) / 2.0
        pts.append((mx, my))
        pts.append((np.nextafter(mx, 2.0), my))
        pts.append((mx, np.nextafter(my, -2.0)))
        pts.append((a.x, my))  # vertex-level horizontal-ray hazards
    return pts


class TestPolygonContainsMany:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("boundary", [True, False])
    def test_matches_scalar_on_adversarial_points(self, seed, boundary):
        rng = random.Random(seed)
        polygon = random_star_polygon(3 + rng.randrange(20), rng)
        pts = adversarial_points(polygon, rng)
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        mask = polygon.contains_many(xs, ys, boundary=boundary)
        scalar = [
            polygon.contains_point(Point(x, y), boundary=boundary)
            for x, y in pts
        ]
        assert mask.tolist() == scalar

    def test_rectangle_ring_with_horizontal_edges(self):
        polygon = Polygon.from_rect(Rect(0.25, 0.25, 0.75, 0.5))
        grid = np.linspace(0.0, 1.0, 41)
        xs, ys = np.meshgrid(grid, grid)
        xs, ys = xs.ravel(), ys.ravel()
        mask = polygon.contains_many(xs, ys)
        scalar = [
            polygon.contains_point(Point(x, y)) for x, y in zip(xs, ys)
        ]
        assert mask.tolist() == scalar

    def test_denormal_scale_polygon(self):
        tiny = Polygon([(0.0, 0.0), (1e-160, 0.0), (1e-160, 1e-160)])
        xs = np.array([0.0, 5e-161, 1e-200, 2e-161, 1e-160])
        ys = np.array([0.0, 5e-161, 1e-200, 1e-161, 1e-160])
        mask = tiny.contains_many(xs, ys)
        scalar = [tiny.contains_point(Point(x, y)) for x, y in zip(xs, ys)]
        assert mask.tolist() == scalar

    def test_empty_input(self):
        polygon = random_star_polygon(8, random.Random(1))
        assert polygon.contains_many(np.empty(0), np.empty(0)).shape == (0,)

    def test_block_boundary_exactness(self):
        """Inputs spanning multiple kernel blocks stay exact."""
        from repro.geometry import kernels

        polygon = random_star_polygon(12, random.Random(3))
        count = 3 * (kernels._BLOCK_CELLS // 12) + 17
        rng = random.Random(4)
        xs = np.array([rng.random() for _ in range(count)])
        ys = np.array([rng.random() for _ in range(count)])
        mask = polygon.contains_many(xs, ys)
        scalar = [
            polygon.contains_point(Point(x, y)) for x, y in zip(xs, ys)
        ]
        assert mask.tolist() == scalar


class TestRectCircleKernels:
    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=64),
        finite,
        finite,
        st.floats(min_value=1e-6, max_value=1e3),
    )
    @settings(max_examples=100)
    def test_circle_matches_scalar(self, pts, cx, cy, radius):
        circle = Circle(Point(cx, cy), radius)
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        for boundary in (True, False):
            mask = circle.contains_many(xs, ys, boundary=boundary)
            assert mask.tolist() == [
                circle.contains_point(Point(x, y), boundary=boundary)
                for x, y in pts
            ]

    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=64),
        finite,
        finite,
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_rect_matches_scalar(self, pts, min_x, min_y, width, height):
        rect = Rect(min_x, min_y, min_x + width, min_y + height)
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        mask = rect.contains_many(xs, ys)
        assert mask.tolist() == [
            rect.contains_point(Point(x, y)) for x, y in pts
        ]

    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=64),
        finite,
        finite,
    )
    @settings(max_examples=100)
    def test_squared_distances_bitwise_equal(self, pts, qx, qy):
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        batched = squared_distances(xs, ys, qx, qy).tolist()
        scalar = [
            Point(x, y).squared_distance_to(Point(qx, qy)) for x, y in pts
        ]
        assert batched == scalar  # exact float equality, not approx
