"""Unit tests for segments and segment intersection."""

import pytest

from repro.geometry.point import Point
from repro.geometry.segment import (
    Segment,
    segments_intersect,
    segments_intersect_xy,
)


class TestSegmentBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(2, 4)).midpoint == Point(1, 2)

    def test_reversed(self):
        s = Segment(Point(1, 2), Point(3, 4))
        assert s.reversed() == Segment(Point(3, 4), Point(1, 2))


class TestContainsPoint:
    def test_interior_point(self):
        assert Segment(Point(0, 0), Point(2, 2)).contains_point(Point(1, 1))

    def test_endpoints(self):
        s = Segment(Point(0, 0), Point(2, 2))
        assert s.contains_point(Point(0, 0))
        assert s.contains_point(Point(2, 2))

    def test_collinear_but_beyond(self):
        assert not Segment(Point(0, 0), Point(2, 2)).contains_point(Point(3, 3))

    def test_off_line(self):
        assert not Segment(Point(0, 0), Point(2, 2)).contains_point(
            Point(1, 1.0001)
        )


class TestIntersection:
    def test_proper_crossing(self):
        s1 = Segment(Point(0, 0), Point(2, 2))
        s2 = Segment(Point(0, 2), Point(2, 0))
        assert s1.intersects(s2)

    def test_disjoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0, 1), Point(1, 1))
        assert not s1.intersects(s2)

    def test_shared_endpoint(self):
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(1, 1), Point(2, 0))
        assert s1.intersects(s2)

    def test_t_junction(self):
        # Endpoint of one segment in the interior of the other.
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(1, 0), Point(1, 1))
        assert s1.intersects(s2)

    def test_collinear_overlap(self):
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(1, 0), Point(3, 0))
        assert s1.intersects(s2)

    def test_collinear_disjoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(2, 0), Point(3, 0))
        assert not s1.intersects(s2)

    def test_collinear_touching_at_endpoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(1, 0), Point(2, 0))
        assert s1.intersects(s2)

    def test_parallel_non_collinear(self):
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(0, 0.5), Point(1, 1.5))
        assert not s1.intersects(s2)

    def test_intersection_is_symmetric(self):
        s1 = Segment(Point(0.1, 0.2), Point(0.8, 0.9))
        s2 = Segment(Point(0.1, 0.9), Point(0.8, 0.2))
        assert s1.intersects(s2) == s2.intersects(s1)

    def test_near_miss_resolved_exactly(self):
        # Segments that touch only in inexact arithmetic must be separated.
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(0, 1e-30), Point(-1, 1))
        assert not s1.intersects(s2)

    def test_xy_variant_agrees(self):
        cases = [
            (Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)),
            (Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)),
            (Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0)),
            (Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0)),
        ]
        for a, b, c, d in cases:
            assert segments_intersect(a, b, c, d) == segments_intersect_xy(
                a.x, a.y, b.x, b.y, c.x, c.y, d.x, d.y
            )


class TestIntersectionPoint:
    def test_proper_crossing_point(self):
        s1 = Segment(Point(0, 0), Point(2, 2))
        s2 = Segment(Point(0, 2), Point(2, 0))
        p = s1.intersection_point(s2)
        assert p is not None
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(1.0)

    def test_no_intersection_returns_none(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0, 1), Point(1, 1))
        assert s1.intersection_point(s2) is None

    def test_shared_endpoint_returned(self):
        s1 = Segment(Point(0, 0), Point(1, 1))
        s2 = Segment(Point(1, 1), Point(2, 0))
        assert s1.intersection_point(s2) == Point(1, 1)

    def test_collinear_overlap_returns_none(self):
        s1 = Segment(Point(0, 0), Point(2, 0))
        s2 = Segment(Point(1, 0), Point(3, 0))
        assert s1.intersection_point(s2) is None


class TestDistance:
    def test_distance_to_point_on_segment(self):
        assert Segment(Point(0, 0), Point(2, 0)).distance_to_point(
            Point(1, 0)
        ) == 0.0

    def test_perpendicular_distance(self):
        assert Segment(Point(0, 0), Point(2, 0)).distance_to_point(
            Point(1, 3)
        ) == pytest.approx(3.0)

    def test_distance_beyond_endpoint(self):
        assert Segment(Point(0, 0), Point(1, 0)).distance_to_point(
            Point(4, 4)
        ) == pytest.approx(5.0)

    def test_closest_point_clamps_to_endpoints(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.closest_point_to(Point(-5, 0)) == Point(0, 0)
        assert s.closest_point_to(Point(9, 0)) == Point(1, 0)

    def test_degenerate_segment(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.closest_point_to(Point(4, 5)) == Point(1, 1)
        assert s.distance_to_point(Point(4, 5)) == 5.0
