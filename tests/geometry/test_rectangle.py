"""Unit tests for the Rect MBR algebra."""


import pytest

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect, union_all


class TestConstruction:
    def test_from_points(self):
        r = Rect.from_points([Point(1, 3), Point(0, 5), Point(2, 4)])
        assert r == Rect(0, 3, 2, 5)

    def test_from_single_point(self):
        assert Rect.from_point(Point(1, 2)) == Rect(1, 2, 1, 2)

    def test_from_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_bounds(self):
        assert Rect.from_bounds((0, 1, 2, 3)) == Rect(0, 1, 2, 3)
        with pytest.raises(ValueError):
            Rect.from_bounds((0, 1, 2))


class TestMeasures:
    def test_dimensions(self):
        r = Rect(0, 0, 3, 2)
        assert r.width == 3
        assert r.height == 2
        assert r.area == 6
        assert r.margin == 5

    def test_degenerate_area(self):
        assert Rect(1, 1, 1, 1).area == 0.0
        assert Rect(0, 1, 5, 1).area == 0.0

    def test_center(self):
        assert Rect(0, 0, 2, 4).center == Point(1, 2)

    def test_corners_ccw(self):
        corners = list(Rect(0, 0, 1, 1).corners())
        assert corners == [
            Point(0, 0),
            Point(1, 0),
            Point(1, 1),
            Point(0, 1),
        ]


class TestRelations:
    def test_contains_point_inclusive(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0.5, 0.5))
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(9, 9, 11, 11))

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # corner touch counts
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_intersection(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersection(Rect(1, 1, 3, 3)) == Rect(1, 1, 2, 2)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_area(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert a.intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_union_point(self):
        assert Rect(0, 0, 1, 1).union_point(Point(2, -1)) == Rect(0, -1, 2, 1)

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)


class TestDistance:
    def test_distance_to_inside_point_is_zero(self):
        assert Rect(0, 0, 1, 1).distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_distance_to_side(self):
        assert Rect(0, 0, 1, 1).distance_to_point(Point(2, 0.5)) == 1.0

    def test_distance_to_corner(self):
        assert Rect(0, 0, 1, 1).distance_to_point(
            Point(4, 5)
        ) == pytest.approx(5.0)

    def test_squared_distance_consistent(self):
        r = Rect(0, 0, 1, 1)
        p = Point(3, -2)
        assert r.squared_distance_to_point(p) == pytest.approx(
            r.distance_to_point(p) ** 2
        )


class TestTransforms:
    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(0.5) == Rect(0.5, 0.5, 2.5, 2.5)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 2, 2).expanded(-0.5) == Rect(0.5, 0.5, 1.5, 1.5)

    def test_as_tuple(self):
        assert Rect(0, 1, 2, 3).as_tuple() == (0, 1, 2, 3)


class TestUnionAll:
    def test_union_all(self):
        rects = [Rect(0, 0, 1, 1), Rect(2, -1, 3, 0), Rect(-1, 0, 0, 2)]
        assert union_all(rects) == Rect(-1, -1, 3, 2)

    def test_union_all_single(self):
        assert union_all([Rect(0, 0, 1, 1)]) == Rect(0, 0, 1, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])
