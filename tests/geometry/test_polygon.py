"""Unit tests for simple polygons."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, convex_hull
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment


UNIT_SQUARE = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_accepts_tuples(self):
        p = Polygon([(0, 0), (1, 0), (0, 1)])
        assert p.vertices == (Point(0, 0), Point(1, 0), Point(0, 1))

    def test_closing_vertex_dropped(self):
        p = Polygon([Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)])
        assert len(p) == 3

    def test_normalised_to_ccw(self):
        clockwise = Polygon([Point(0, 0), Point(0, 1), Point(1, 0)])
        assert clockwise.signed_area > 0.0

    def test_iteration(self):
        assert len(list(UNIT_SQUARE)) == 4

    def test_equality_and_hash(self):
        p1 = Polygon([(0, 0), (1, 0), (0, 1)])
        p2 = Polygon([(0, 0), (1, 0), (0, 1)])
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestMeasures:
    def test_unit_square_area(self):
        assert UNIT_SQUARE.area == 1.0

    def test_triangle_area(self):
        assert Polygon([(0, 0), (2, 0), (0, 2)]).area == 2.0

    def test_area_invariant_under_orientation(self):
        ccw = Polygon([(0, 0), (2, 0), (0, 2)])
        cw = Polygon([(0, 0), (0, 2), (2, 0)])
        assert ccw.area == cw.area

    def test_perimeter(self):
        assert UNIT_SQUARE.perimeter == 4.0

    def test_mbr(self):
        p = Polygon([(0.5, 0), (1, 0.7), (0.2, 1)])
        assert p.mbr == Rect(0.2, 0, 1, 1)

    def test_centroid_of_square(self):
        c = UNIT_SQUARE.centroid
        assert c.x == pytest.approx(0.5)
        assert c.y == pytest.approx(0.5)

    def test_edges_count_and_closure(self):
        edges = list(UNIT_SQUARE.edges())
        assert len(edges) == 4
        assert edges[-1].end == edges[0].start


class TestConvexity:
    def test_square_is_convex(self):
        assert UNIT_SQUARE.is_convex()

    def test_l_shape_is_concave(self, concave_polygon):
        assert not concave_polygon.is_convex()

    def test_regular_polygon_is_convex(self):
        assert Polygon.regular(7, Point(0, 0), 1.0).is_convex()


class TestSimplicity:
    def test_square_is_simple(self):
        assert UNIT_SQUARE.is_simple()

    def test_bowtie_is_not_simple(self):
        bowtie = Polygon([(0, 0), (1, 1), (1, 0), (0, 1)])
        assert not bowtie.is_simple()

    def test_concave_is_simple(self, concave_polygon):
        assert concave_polygon.is_simple()


class TestContainsPoint:
    def test_interior(self):
        assert UNIT_SQUARE.contains_point(Point(0.5, 0.5))

    def test_exterior(self):
        assert not UNIT_SQUARE.contains_point(Point(1.5, 0.5))
        assert not UNIT_SQUARE.contains_point(Point(0.5, -0.1))

    def test_boundary_inclusive_by_default(self):
        assert UNIT_SQUARE.contains_point(Point(0, 0.5))
        assert UNIT_SQUARE.contains_point(Point(0.5, 1))
        assert UNIT_SQUARE.contains_point(Point(0, 0))  # vertex

    def test_boundary_excluded_on_request(self):
        assert not UNIT_SQUARE.contains_point(Point(0, 0.5), boundary=False)
        assert not UNIT_SQUARE.contains_point(Point(0, 0), boundary=False)
        assert UNIT_SQUARE.contains_point(Point(0.5, 0.5), boundary=False)

    def test_concave_notch_excluded(self, concave_polygon):
        # The notch of the L (upper-right quadrant) is outside.
        assert not concave_polygon.contains_point(Point(0.7, 0.7))
        assert concave_polygon.contains_point(Point(0.3, 0.3))
        assert concave_polygon.contains_point(Point(0.3, 0.7))
        assert concave_polygon.contains_point(Point(0.7, 0.3))

    def test_point_level_with_vertex(self):
        # Ray through a vertex must be counted exactly once.
        diamond = Polygon([(1, 0), (2, 1), (1, 2), (0, 1)])
        assert diamond.contains_point(Point(1, 1))
        assert not diamond.contains_point(Point(-0.5, 1))
        assert not diamond.contains_point(Point(2.5, 1))

    def test_point_level_with_horizontal_edge(self):
        p = Polygon([(0, 0), (2, 0), (2, 2), (1, 1), (0, 2)])
        assert p.contains_point(Point(1.0, 0.0))  # on bottom edge
        assert p.contains_point(Point(0.5, 1.2))
        assert not p.contains_point(Point(1.0, 1.5))  # inside the notch

    def test_winding_agrees_with_crossing(self, concave_polygon, rng):
        for _ in range(300):
            p = Point(rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2))
            assert concave_polygon.contains_point(
                p
            ) == concave_polygon.contains_point_winding(p)

    def test_point_on_boundary(self):
        assert UNIT_SQUARE.point_on_boundary(Point(0.5, 0))
        assert UNIT_SQUARE.point_on_boundary(Point(1, 1))
        assert not UNIT_SQUARE.point_on_boundary(Point(0.5, 0.5))
        assert not UNIT_SQUARE.point_on_boundary(Point(2, 2))


class TestSegmentInteraction:
    def test_segment_crossing_boundary(self):
        segment = Segment(Point(-0.5, 0.5), Point(0.5, 0.5))
        assert UNIT_SQUARE.intersects_segment(segment)
        assert UNIT_SQUARE.crosses_boundary(segment)

    def test_segment_fully_inside(self):
        segment = Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        assert UNIT_SQUARE.intersects_segment(segment)
        assert not UNIT_SQUARE.crosses_boundary(segment)

    def test_segment_fully_outside(self):
        segment = Segment(Point(2, 2), Point(3, 3))
        assert not UNIT_SQUARE.intersects_segment(segment)

    def test_segment_through_polygon(self):
        # Both endpoints outside, but the segment passes through.
        segment = Segment(Point(-1, 0.5), Point(2, 0.5))
        assert UNIT_SQUARE.intersects_segment(segment)

    def test_segment_touching_vertex(self):
        segment = Segment(Point(-1, 1), Point(1, -1))  # touches (0,0)
        assert UNIT_SQUARE.intersects_segment(segment)

    def test_segment_along_edge(self):
        segment = Segment(Point(0.2, 0), Point(0.8, 0))
        assert UNIT_SQUARE.intersects_segment(segment)

    def test_crosses_boundary_xy_matches(self, concave_polygon, rng):
        for _ in range(200):
            a = Point(rng.uniform(-0.3, 1.3), rng.uniform(-0.3, 1.3))
            b = Point(rng.uniform(-0.3, 1.3), rng.uniform(-0.3, 1.3))
            expected = any(
                edge.intersects(Segment(a, b))
                for edge in concave_polygon.edges()
            )
            assert (
                concave_polygon.crosses_boundary_xy(a.x, a.y, b.x, b.y)
                == expected
            )

    def test_intersects_rect(self):
        assert UNIT_SQUARE.intersects_rect(Rect(0.5, 0.5, 2, 2))
        assert UNIT_SQUARE.intersects_rect(Rect(-1, -1, 2, 2))  # contains
        assert not UNIT_SQUARE.intersects_rect(Rect(2, 2, 3, 3))

    def test_intersects_rect_polygon_inside_rect(self):
        small = Polygon([(0.4, 0.4), (0.6, 0.4), (0.5, 0.6)])
        assert small.intersects_rect(Rect(0, 0, 1, 1))


class TestTransforms:
    def test_translated(self):
        moved = UNIT_SQUARE.translated(2, 3)
        assert moved.mbr == Rect(2, 3, 3, 4)
        assert moved.area == pytest.approx(1.0)

    def test_scaled_area(self):
        scaled = UNIT_SQUARE.scaled(2.0)
        assert scaled.area == pytest.approx(4.0)

    def test_scaled_preserves_centroid(self):
        scaled = UNIT_SQUARE.scaled(3.0)
        assert scaled.centroid.x == pytest.approx(0.5)
        assert scaled.centroid.y == pytest.approx(0.5)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            UNIT_SQUARE.scaled(0.0)
        with pytest.raises(ValueError):
            UNIT_SQUARE.scaled(-1.0)

    def test_regular_polygon(self):
        hexagon = Polygon.regular(6, Point(0, 0), 1.0)
        assert len(hexagon) == 6
        # Area of a regular hexagon with circumradius 1.
        assert hexagon.area == pytest.approx(3 * math.sqrt(3) / 2)

    def test_regular_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Polygon.regular(2, Point(0, 0), 1.0)
        with pytest.raises(ValueError):
            Polygon.regular(5, Point(0, 0), 0.0)

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 2, 1))
        assert p.area == pytest.approx(2.0)
        assert p.mbr == Rect(0, 0, 2, 1)


class TestConvexHull:
    def test_square_with_interior_points(self):
        points = [
            Point(0, 0),
            Point(1, 0),
            Point(1, 1),
            Point(0, 1),
            Point(0.5, 0.5),
            Point(0.2, 0.8),
        ]
        hull = convex_hull(points)
        assert set(hull) == {
            Point(0, 0),
            Point(1, 0),
            Point(1, 1),
            Point(0, 1),
        }

    def test_hull_is_ccw(self):
        hull = convex_hull(
            [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2), Point(1, 1)]
        )
        assert Polygon(hull).signed_area > 0.0

    def test_collinear_input(self):
        hull = convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])
        assert len(hull) == 2

    def test_duplicates_removed(self):
        hull = convex_hull([Point(0, 0), Point(0, 0), Point(1, 0)])
        assert len(hull) == 2

    def test_denormal_scale_hull_stays_convex(self):
        # Regression (ROADMAP, PR 1 hypothesis run): a CCW hull of exact
        # area ~1e-146 whose float shoelace sum is *negative*.  The old
        # ring normalisation trusted that sign and reversed the ring, so
        # Polygon(convex_hull(...)).is_convex() came back False.
        points = [
            Point(2.4479854537261012e-65, 5.475382532919865e-66),
            Point(3.135208606523928e-65, 4.578950069010331e-66),
            Point(3.8224317593217544e-65, 3.6825176051007995e-66),
        ]
        hull = convex_hull(points)
        assert len(hull) == 3
        polygon = Polygon(hull)
        assert polygon.vertices == tuple(hull)  # ring was not reversed
        assert polygon.is_convex()
        for p in points:
            assert polygon.contains_point(p)
