"""Unit tests for the robust predicates."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.predicates import (
    Orientation,
    circumcenter,
    circumradius,
    incircle,
    orientation,
    orientation_sign,
    orientation_value,
    signed_area_sign,
)

#: A counter-clockwise triangle of exact area ~1.0e-146 whose naive float
#: shoelace sum evaluates to a *negative* value (catastrophic cancellation
#: at denormal-product coordinate scales) — the ROADMAP's latent
#: convex_hull bug.  Found by randomised search against exact arithmetic.
DENORMAL_CCW_TRIANGLE = [
    Point(2.4479854537261012e-65, 5.475382532919865e-66),
    Point(3.135208606523928e-65, 4.578950069010331e-66),
    Point(3.8224317593217544e-65, 3.6825176051007995e-66),
]


class TestOrientation:
    def test_counterclockwise(self):
        assert (
            orientation(Point(0, 0), Point(1, 0), Point(0, 1))
            is Orientation.COUNTERCLOCKWISE
        )

    def test_clockwise(self):
        assert (
            orientation(Point(0, 0), Point(0, 1), Point(1, 0))
            is Orientation.CLOCKWISE
        )

    def test_collinear(self):
        assert (
            orientation(Point(0, 0), Point(1, 1), Point(2, 2))
            is Orientation.COLLINEAR
        )

    def test_antisymmetry(self):
        a, b, c = Point(0.1, 0.9), Point(0.4, 0.2), Point(0.8, 0.5)
        assert orientation(a, b, c).value == -orientation(b, a, c).value

    def test_cyclic_invariance(self):
        a, b, c = Point(0.1, 0.9), Point(0.4, 0.2), Point(0.8, 0.5)
        assert orientation(a, b, c) is orientation(b, c, a)
        assert orientation(a, b, c) is orientation(c, a, b)

    def test_nearly_collinear_resolved_exactly(self):
        # Classic robustness case: tiny offsets around a long skinny
        # triangle.  The exact fallback must make a consistent call.
        a = Point(0.0, 0.0)
        b = Point(1e17, 1e17)
        on_line = Point(0.5e17, 0.5e17)
        assert orientation(a, b, on_line) is Orientation.COLLINEAR

    def test_subulp_perturbation_detected(self):
        a = Point(0.0, 0.0)
        b = Point(1.0, 1.0)
        above = Point(0.5, 0.5 + 1e-17)  # rounds to 0.5 in float, collinear
        below = Point(0.5, math.nextafter(0.5, 1.0))  # one ulp above
        assert orientation(a, b, above) is Orientation.COLLINEAR
        assert orientation(a, b, below) is Orientation.COUNTERCLOCKWISE

    def test_orientation_sign_matches_value(self):
        a, b, c = Point(0.3, 0.2), Point(0.7, 0.9), Point(0.1, 0.5)
        assert orientation_sign(
            a.x, a.y, b.x, b.y, c.x, c.y
        ) == orientation_value(a, b, c)

    def test_degenerate_identical_points(self):
        p = Point(0.5, 0.5)
        assert orientation(p, p, p) is Orientation.COLLINEAR
        assert orientation(p, p, Point(1, 1)) is Orientation.COLLINEAR


class TestIncircle:
    def test_point_inside_circumcircle(self):
        # Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(0, 0)) > 0.0

    def test_point_outside_circumcircle(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(2, 2)) < 0.0

    def test_cocircular_is_exactly_zero(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(0, -1)) == 0.0

    def test_sign_flips_for_clockwise_triangle(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        inside = Point(0.1, 0.2)
        assert incircle(a, b, c, inside) > 0.0
        assert incircle(a, c, b, inside) < 0.0

    def test_near_cocircular_robust(self):
        # Four points nearly on a circle; the exact fallback must decide.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        just_inside = Point(0.0, -math.nextafter(1.0, 0.0))
        just_outside = Point(0.0, -math.nextafter(1.0, 2.0))
        assert incircle(a, b, c, just_inside) > 0.0
        assert incircle(a, b, c, just_outside) < 0.0


class TestOrientationDenormal:
    def test_underflowed_products_still_signed(self):
        # Regression (hypothesis): both cross products underflow to an
        # exact 0.0 for this CCW triple, so the old fast path reported
        # COLLINEAR for two of the three cyclic rotations.
        a = Point(0.0, 0.0)
        b = Point(1.6360808716095311e-198, 0.0)
        c = Point(1.0, 1.6360808716095311e-198)
        assert orientation(a, b, c) is Orientation.COUNTERCLOCKWISE
        assert orientation(b, c, a) is Orientation.COUNTERCLOCKWISE
        assert orientation(c, a, b) is Orientation.COUNTERCLOCKWISE
        assert orientation(a, c, b) is Orientation.CLOCKWISE

    def test_exact_zero_factors_stay_collinear(self):
        # Degenerate triples decide via exactly-zero difference factors
        # and must not take the exact-arithmetic fallback path.
        a = Point(1e-300, 1e-300)
        b = Point(1e-300, 1e-300)
        assert orientation(a, b, Point(1.0, 2.0)) is Orientation.COLLINEAR

    def test_denormal_scale_triangle(self):
        # A well-shaped triangle entirely at denormal product scale.
        a = Point(0.0, 0.0)
        b = Point(1e-160, 0.0)
        c = Point(0.0, 1e-160)
        assert orientation(a, b, c) is Orientation.COUNTERCLOCKWISE
        assert orientation(a, c, b) is Orientation.CLOCKWISE


class TestSignedAreaSign:
    def test_ccw_square(self):
        ring = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert signed_area_sign(ring) == 1.0

    def test_cw_square(self):
        ring = [Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)]
        assert signed_area_sign(ring) == -1.0

    def test_degenerate_ring_is_zero(self):
        ring = [Point(0, 0), Point(1, 1), Point(2, 2)]
        assert signed_area_sign(ring) == 0.0

    def test_denormal_scale_sign_flip(self):
        # The float shoelace sum of this CCW ring is negative; the robust
        # predicate must still report counter-clockwise.
        ring = DENORMAL_CCW_TRIANGLE
        naive = sum(
            p.x * ring[(i + 1) % 3].y - p.y * ring[(i + 1) % 3].x
            for i, p in enumerate(ring)
        )
        assert naive < 0.0  # the trap the naive evaluation falls into
        assert signed_area_sign(ring) == 1.0

    def test_denormal_scale_reversed_ring(self):
        assert signed_area_sign(list(reversed(DENORMAL_CCW_TRIANGLE))) == -1.0


class TestCircumcenter:
    def test_right_triangle(self):
        # Circumcentre of a right triangle is the hypotenuse midpoint.
        center = circumcenter(Point(0, 0), Point(2, 0), Point(0, 2))
        assert center.x == pytest.approx(1.0)
        assert center.y == pytest.approx(1.0)

    def test_equidistance(self):
        a, b, c = Point(0.1, 0.3), Point(0.9, 0.2), Point(0.5, 0.8)
        center = circumcenter(a, b, c)
        r1 = center.distance_to(a)
        assert center.distance_to(b) == pytest.approx(r1)
        assert center.distance_to(c) == pytest.approx(r1)

    def test_circumradius(self):
        r = circumradius(Point(1, 0), Point(0, 1), Point(-1, 0))
        assert r == pytest.approx(1.0)

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            circumcenter(Point(0, 0), Point(1, 1), Point(2, 2))
