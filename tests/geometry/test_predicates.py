"""Unit tests for the robust predicates."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.predicates import (
    Orientation,
    circumcenter,
    circumradius,
    incircle,
    orientation,
    orientation_sign,
    orientation_value,
)


class TestOrientation:
    def test_counterclockwise(self):
        assert (
            orientation(Point(0, 0), Point(1, 0), Point(0, 1))
            is Orientation.COUNTERCLOCKWISE
        )

    def test_clockwise(self):
        assert (
            orientation(Point(0, 0), Point(0, 1), Point(1, 0))
            is Orientation.CLOCKWISE
        )

    def test_collinear(self):
        assert (
            orientation(Point(0, 0), Point(1, 1), Point(2, 2))
            is Orientation.COLLINEAR
        )

    def test_antisymmetry(self):
        a, b, c = Point(0.1, 0.9), Point(0.4, 0.2), Point(0.8, 0.5)
        assert orientation(a, b, c).value == -orientation(b, a, c).value

    def test_cyclic_invariance(self):
        a, b, c = Point(0.1, 0.9), Point(0.4, 0.2), Point(0.8, 0.5)
        assert orientation(a, b, c) is orientation(b, c, a)
        assert orientation(a, b, c) is orientation(c, a, b)

    def test_nearly_collinear_resolved_exactly(self):
        # Classic robustness case: tiny offsets around a long skinny
        # triangle.  The exact fallback must make a consistent call.
        a = Point(0.0, 0.0)
        b = Point(1e17, 1e17)
        on_line = Point(0.5e17, 0.5e17)
        assert orientation(a, b, on_line) is Orientation.COLLINEAR

    def test_subulp_perturbation_detected(self):
        a = Point(0.0, 0.0)
        b = Point(1.0, 1.0)
        above = Point(0.5, 0.5 + 1e-17)  # rounds to 0.5 in float, collinear
        below = Point(0.5, math.nextafter(0.5, 1.0))  # one ulp above
        assert orientation(a, b, above) is Orientation.COLLINEAR
        assert orientation(a, b, below) is Orientation.COUNTERCLOCKWISE

    def test_orientation_sign_matches_value(self):
        a, b, c = Point(0.3, 0.2), Point(0.7, 0.9), Point(0.1, 0.5)
        assert orientation_sign(
            a.x, a.y, b.x, b.y, c.x, c.y
        ) == orientation_value(a, b, c)

    def test_degenerate_identical_points(self):
        p = Point(0.5, 0.5)
        assert orientation(p, p, p) is Orientation.COLLINEAR
        assert orientation(p, p, Point(1, 1)) is Orientation.COLLINEAR


class TestIncircle:
    def test_point_inside_circumcircle(self):
        # Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(0, 0)) > 0.0

    def test_point_outside_circumcircle(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(2, 2)) < 0.0

    def test_cocircular_is_exactly_zero(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert incircle(a, b, c, Point(0, -1)) == 0.0

    def test_sign_flips_for_clockwise_triangle(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        inside = Point(0.1, 0.2)
        assert incircle(a, b, c, inside) > 0.0
        assert incircle(a, c, b, inside) < 0.0

    def test_near_cocircular_robust(self):
        # Four points nearly on a circle; the exact fallback must decide.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        just_inside = Point(0.0, -math.nextafter(1.0, 0.0))
        just_outside = Point(0.0, -math.nextafter(1.0, 2.0))
        assert incircle(a, b, c, just_inside) > 0.0
        assert incircle(a, b, c, just_outside) < 0.0


class TestCircumcenter:
    def test_right_triangle(self):
        # Circumcentre of a right triangle is the hypotenuse midpoint.
        center = circumcenter(Point(0, 0), Point(2, 0), Point(0, 2))
        assert center.x == pytest.approx(1.0)
        assert center.y == pytest.approx(1.0)

    def test_equidistance(self):
        a, b, c = Point(0.1, 0.3), Point(0.9, 0.2), Point(0.5, 0.8)
        center = circumcenter(a, b, c)
        r1 = center.distance_to(a)
        assert center.distance_to(b) == pytest.approx(r1)
        assert center.distance_to(c) == pytest.approx(r1)

    def test_circumradius(self):
        r = circumradius(Point(1, 0), Point(0, 1), Point(-1, 0))
        assert r == pytest.approx(1.0)

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            circumcenter(Point(0, 0), Point(1, 1), Point(2, 2))
