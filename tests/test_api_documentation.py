"""Documentation-coverage gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test makes
that a property of the build rather than a review checklist.  Public means:
importable from a ``repro`` module and not underscore-prefixed.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_SKIP_MODULES = set()


def _walk_modules():
    yield repro
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name in _SKIP_MODULES:
            continue
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda m: m.__name__
)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda m: m.__name__
)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (inspect.getdoc(item) or "").strip():
            undocumented.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member)
                    or isinstance(member, (property, staticmethod, classmethod))
                ):
                    continue
                # getdoc on the bound attribute inherits docstrings from
                # base classes — overriding a documented interface method
                # without restating its contract is fine.
                doc = inspect.getdoc(getattr(item, member_name, None))
                if not (doc or "").strip():
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )


def test_query_package_is_fully_documented():
    """The declarative query API ships with complete docs: every module
    under ``repro.query`` is collected by the walker above, and every
    name the package exports resolves to a documented class or
    function."""
    query_modules = {
        module.__name__
        for module in ALL_MODULES
        if module.__name__.startswith("repro.query")
    }
    assert {
        "repro.query",
        "repro.query.spec",
        "repro.query.result",
        "repro.query.executor",
        "repro.query.serialize",
    } <= query_modules

    import repro.query

    undocumented = []
    for name in repro.query.__all__:
        item = getattr(repro.query, name)
        if not inspect.isclass(item) and not inspect.isfunction(item):
            continue
        if not (inspect.getdoc(item) or "").strip():
            undocumented.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member)
                    or isinstance(
                        member, (property, staticmethod, classmethod)
                    )
                ):
                    continue
                doc = inspect.getdoc(getattr(item, member_name, None))
                if not (doc or "").strip():
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"undocumented repro.query exports: {undocumented}"
    )


def test_engine_package_is_fully_documented():
    """The engine subsystem ships with complete docs: every module under
    ``repro.engine`` is collected by the walker above, and every name the
    package exports resolves to a documented class or function."""
    engine_modules = {
        module.__name__
        for module in ALL_MODULES
        if module.__name__.startswith("repro.engine")
    }
    assert {
        "repro.engine",
        "repro.engine.batch",
        "repro.engine.cache",
        "repro.engine.order",
        "repro.engine.planner",
    } <= engine_modules

    import repro.engine

    undocumented = []
    for name in repro.engine.__all__:
        item = getattr(repro.engine, name)
        if not (inspect.getdoc(item) or "").strip():
            undocumented.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member)
                    or isinstance(
                        member, (property, staticmethod, classmethod)
                    )
                ):
                    continue
                doc = inspect.getdoc(getattr(item, member_name, None))
                if not (doc or "").strip():
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"undocumented repro.engine exports: {undocumented}"
    )
