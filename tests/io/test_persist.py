"""Round-trip tests for database persistence."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.core.database import SpatialDatabase
from repro.io.persist import (
    load_database,
    load_points,
    save_database,
    save_points,
)
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


class TestPointsRoundTrip:
    def test_round_trip(self, tmp_path):
        points = uniform_points(100, seed=251)
        path = tmp_path / "points.npz"
        save_points(path, points)
        assert load_points(path) == points

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_points(path, [])
        assert load_points(path) == []

    def test_exact_float_preservation(self, tmp_path):
        points = [Point(0.1 + 0.2, 1e-300), Point(-1e300, 3.141592653589793)]
        path = tmp_path / "exact.npz"
        save_points(path, points)
        assert load_points(path) == points


class TestDatabaseRoundTrip:
    def test_row_ids_preserved(self, tmp_path):
        db = SpatialDatabase.from_points(uniform_points(200, seed=253))
        path = tmp_path / "db.npz"
        save_database(path, db)
        restored = load_database(path)
        assert len(restored) == 200
        for i in range(200):
            assert restored.point(i) == db.point(i)

    def test_config_preserved(self, tmp_path):
        db = SpatialDatabase.from_points(
            uniform_points(50, seed=255),
            index_kind="kdtree",
            backend_kind="scipy",
        )
        path = tmp_path / "db.npz"
        save_database(path, db)
        restored = load_database(path)
        assert restored._index_kind == "kdtree"
        assert restored._backend_kind == "scipy"

    def test_queries_identical_after_restore(self, tmp_path):
        import random

        db = SpatialDatabase.from_points(uniform_points(300, seed=257)).prepare()
        path = tmp_path / "db.npz"
        save_database(path, db)
        restored = load_database(path, prepare=True)
        rng = random.Random(259)
        for _ in range(5):
            area = random_query_polygon(0.05, rng=rng)
            assert (
                restored.area_query(area, "voronoi").ids
                == db.area_query(area, "voronoi").ids
            )
            assert (
                restored.area_query(area, "traditional").ids
                == db.area_query(area, "traditional").ids
            )

    def test_prepare_flag(self, tmp_path):
        db = SpatialDatabase.from_points(uniform_points(30, seed=261))
        path = tmp_path / "db.npz"
        save_database(path, db)
        lazy = load_database(path)
        assert lazy._backend is None
        eager = load_database(path, prepare=True)
        assert eager._backend is not None

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            xy=np.zeros((1, 2)),
            config=np.asarray('{"version": 99, "count": 1}'),
        )
        with pytest.raises(ValueError, match="version"):
            load_database(path)

    def test_extensionless_path_round_trips(self, tmp_path):
        """Regression: save appends .npz via numpy, so loading the same
        extensionless name used to raise FileNotFoundError."""
        db = SpatialDatabase.from_points(uniform_points(40, seed=263))
        bare = tmp_path / "snapshot"
        written = save_database(bare, db)
        assert written == str(bare) + ".npz"
        for path in (bare, written):
            restored = load_database(path)
            assert [restored.point(i) for i in range(40)] == db.points

    def test_save_points_returns_written_path(self, tmp_path):
        points = uniform_points(10, seed=265)
        written = save_points(tmp_path / "pts", points)
        assert written.endswith(".npz")
        assert load_points(tmp_path / "pts") == points

    def test_missing_file_still_reports_requested_name(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nowhere"):
            load_database(tmp_path / "nowhere")

    def test_count_mismatch_detected(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez_compressed(
            path,
            xy=np.zeros((2, 2)),
            config=np.asarray(
                '{"version": 1, "index_kind": "rtree", '
                '"backend_kind": "pure", "count": 5}'
            ),
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_database(path)
