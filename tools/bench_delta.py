"""Perf-trajectory comparison of two ``BENCH_pr.json`` records.

CI records every run's benchmark outcomes as a ``BENCH_pr.json``
artifact (see ``benchmarks/conftest.py``).  This tool compares the
previous run's record against the current one and renders a markdown
delta table for the workflow step summary, so the speedup trajectory of
the acceptance benchmarks is visible per commit instead of only living
in pass/fail asserts.

Regressions **warn, never fail**: timing ratios on shared CI runners are
noisy, and the hard floors are already enforced by the benchmark asserts
themselves.  A metric counts as regressed when it shrinks by more than
:data:`TOLERANCE` relative to the previous run; such rows are marked and
an actionable ``::warning::`` workflow command is emitted per metric.

Usage::

    python tools/bench_delta.py PREVIOUS.json CURRENT.json \
        [--summary $GITHUB_STEP_SUMMARY]

Either file may be missing (first run on a branch, expired artifact):
the tool says so and exits 0.  Exit status is always 0 unless the
*current* record is unreadable JSON — the one situation that means the
pipeline itself broke.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Relative shrink tolerated before a numeric metric is flagged.
TOLERANCE = 0.10

#: Keys that describe configuration, not performance — never compared.
_CONTEXT_KEYS = {
    "threshold",
    "clients",
    "requests",
    "data_size",
    "query_size",
    "composites",
    "parts",
    "first_n",
    "chunk_size",
    "distinct",
    "limit",
    "n_vertices",
    "reads",
    "writes",
    "write_fraction",
    "subscriptions",
    "windows",
    "knn",
    "objects",
    "moves",
    "fanout_mean",
    "prune_ratio",
}

#: Metrics where *larger is worse* (times); everything else numeric is
#: treated as larger-is-better (speedups, hit/reuse counters).
_LOWER_IS_BETTER_SUFFIXES = ("_ms", "_s")


def _direction(name: str) -> int:
    """+1 when larger is better for ``name``, -1 when smaller is."""
    return (
        -1 if name.endswith(_LOWER_IS_BETTER_SUFFIXES) else 1
    )


def load_record(path: str) -> Optional[Dict]:
    """Read one ``BENCH_pr.json``; ``None`` when absent/unreadable."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "results" not in data:
        return None
    return data


def compare(
    previous: Dict, current: Dict
) -> Tuple[List[Tuple[str, str, object, object, str, bool]], List[str]]:
    """Row-by-row delta of two records' numeric metrics.

    Returns ``(rows, warnings)``: each row is ``(benchmark, metric,
    previous value, current value, delta text, regressed?)`` for every
    numeric metric present in either record, and ``warnings`` holds one
    message per regression (shrink beyond :data:`TOLERANCE` in the
    metric's better-direction).

    Metrics (or whole benchmarks) appearing for the **first time** —
    no previous value, numeric current value — are rendered as explicit
    ``new`` rows instead of being silently skipped, so the trajectory
    summary shows coverage growth the moment a benchmark lands.
    """
    rows: List[Tuple[str, str, object, object, str, bool]] = []
    warnings: List[str] = []
    prev_results = previous.get("results", {})
    curr_results = current.get("results", {})
    for bench in sorted(set(prev_results) | set(curr_results)):
        prev_bench = prev_results.get(bench, {})
        curr_bench = curr_results.get(bench, {})
        for metric in sorted(set(prev_bench) | set(curr_bench)):
            if metric in _CONTEXT_KEYS:
                continue
            before = prev_bench.get(metric)
            after = curr_bench.get(metric)
            after_numeric = isinstance(
                after, (int, float)
            ) and not isinstance(after, bool)
            if before is None and after_numeric:
                rows.append((bench, metric, "—", after, "new", False))
                continue
            numeric = after_numeric and (
                isinstance(before, (int, float))
                and not isinstance(before, bool)
            )
            if not numeric:
                continue
            if before:
                change = (after - before) / abs(before)
                delta = f"{change:+.1%}"
            else:
                change = 0.0 if after == before else float("inf")
                delta = "n/a" if after != before else "±0%"
            regressed = (
                change != float("inf")
                and change * _direction(metric) < -TOLERANCE
            )
            if regressed:
                warnings.append(
                    f"{bench}.{metric} regressed "
                    f"{before} -> {after} ({delta})"
                )
            rows.append((bench, metric, before, after, delta, regressed))
    return rows, warnings


def render_markdown(
    rows: List[Tuple[str, str, object, object, str, bool]],
    previous_meta: Dict,
    current_meta: Dict,
) -> str:
    """The step-summary markdown: header plus one table row per metric."""
    lines = [
        "### Benchmark trajectory vs previous run",
        "",
        f"previous: python {previous_meta.get('python', '?')}, "
        f"current: python {current_meta.get('python', '?')} "
        f"(tolerance ±{TOLERANCE:.0%}; regressions warn, never fail)",
        "",
        "| benchmark | metric | previous | current | delta | |",
        "|---|---|---:|---:|---:|---|",
    ]
    for bench, metric, before, after, delta, regressed in rows:
        flag = "⚠️ regression" if regressed else ""
        lines.append(
            f"| {bench} | {metric} | {before} | {after} | {delta} | {flag} |"
        )
    if not rows:
        lines.append("| _no comparable numeric metrics_ | | | | | |")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI driver; always exits 0 unless the current record is broken."""
    parser = argparse.ArgumentParser(
        description="Render a markdown delta of two BENCH_pr.json records."
    )
    parser.add_argument("previous", help="previous run's BENCH_pr.json")
    parser.add_argument("current", help="this run's BENCH_pr.json")
    parser.add_argument(
        "--summary",
        default=None,
        help="file to append the markdown table to "
        "(e.g. $GITHUB_STEP_SUMMARY); stdout is always written",
    )
    args = parser.parse_args(argv)

    current = load_record(args.current)
    if current is None:
        print(
            f"::warning::current benchmark record {args.current!r} is "
            "missing or unreadable — did bench-smoke run?"
        )
        return 1
    previous = load_record(args.previous)
    if previous is None:
        text = (
            "### Benchmark trajectory vs previous run\n\n"
            f"no previous record at `{args.previous}` "
            "(first run, or the artifact expired) — nothing to compare.\n"
        )
        print(text)
        if args.summary:
            with open(args.summary, "a", encoding="utf-8") as handle:
                handle.write(text)
        return 0

    rows, warnings = compare(previous, current)
    text = render_markdown(rows, previous, current)
    print(text)
    for message in warnings:
        print(f"::warning::{message}")
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
