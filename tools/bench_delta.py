"""Perf gate: comparison of two ``BENCH_pr.json`` records.

CI records every run's benchmark outcomes as a ``BENCH_pr.json``
artifact (see ``benchmarks/conftest.py``).  This tool compares the
previous run's record against the current one and renders a markdown
delta table for the workflow step summary, so the speedup trajectory of
the acceptance benchmarks is visible per commit instead of only living
in pass/fail asserts.

The comparison is an **enforced gate** for the declared
:data:`STABLE_BENCHMARKS` set: a metric of a stable benchmark that
shrinks by more than :data:`TOLERANCE` in its better-direction emits a
``::error::`` workflow command and the tool exits 2, failing the CI
job.  A stable benchmark that *vanishes* from the current record is
treated the same way — deleting a benchmark must be an explicit edit
to the stable set here, never a silent drop.  Benchmarks outside the
stable set (typically ones that landed in the current PR) only warn:
they get one PR of trajectory data before being promoted, because a
brand-new benchmark has no history to distinguish regression from
run-to-run noise.  ``--warn-only`` downgrades every failure to a
warning (exit 0) for local runs and forks without artifact history.

Usage::

    python tools/bench_delta.py PREVIOUS.json CURRENT.json \
        [--summary $GITHUB_STEP_SUMMARY] [--warn-only]

Either file may be missing (first run on a branch, expired artifact):
the tool says so and exits 0.  Exit 1 means the *current* record is
unreadable JSON — the pipeline itself broke; exit 2 means the gate
caught a stable-set regression or removal.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Relative shrink tolerated before a numeric metric is flagged.
TOLERANCE = 0.10

#: The enforced benchmark set: regressions beyond :data:`TOLERANCE` (or
#: outright removal) of any of these **fail CI**.  A benchmark enters
#: this set one PR after it lands — its first run has no previous
#: record to compare against, and its second confirms the numbers are
#: stable on the runner — by adding its ``record_benchmark`` name here.
STABLE_BENCHMARKS = frozenset(
    {
        "batch_speedup_on_trace",
        "columnar_refinement_speedup",
        "columnar_voronoi_speedup",
        "composite_union_speedup",
        "heterogeneous_batch_speedup",
        "live_subscriptions",
        "mutable_server_mix",
        "overload_shedding",
        "server_coalescing_mechanism",
        "server_coalescing_speedup",
        "server_streamed_knn",
        "skewed_tail_latency",
        "unbounded_knn_streaming",
    }
)

#: Keys that describe configuration, not performance — never compared.
_CONTEXT_KEYS = {
    "threshold",
    "clients",
    "requests",
    "data_size",
    "query_size",
    "composites",
    "parts",
    "first_n",
    "chunk_size",
    "distinct",
    "limit",
    "n_vertices",
    "reads",
    "writes",
    "write_fraction",
    "subscriptions",
    "windows",
    "knn",
    "objects",
    "moves",
    "fanout_mean",
    "prune_ratio",
    "sessions",
    "connections",
    "rate",
    "max_queue",
    "duration_s",
    "offered",
    "workers",
    "shards",
    "cpus",
    "mode",
    "modeled",
    "replicas",
    "faults_injected",
}

#: Metrics where *larger is worse* (times); everything else numeric is
#: treated as larger-is-better (speedups, hit/reuse counters).
_LOWER_IS_BETTER_SUFFIXES = ("_ms", "_s")


def _direction(name: str) -> int:
    """+1 when larger is better for ``name``, -1 when smaller is."""
    return (
        -1 if name.endswith(_LOWER_IS_BETTER_SUFFIXES) else 1
    )


def load_record(path: str) -> Optional[Dict]:
    """Read one ``BENCH_pr.json``; ``None`` when absent/unreadable."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "results" not in data:
        return None
    return data


def compare(
    previous: Dict, current: Dict
) -> Tuple[
    List[Tuple[str, str, object, object, str, bool]],
    List[str],
    List[str],
]:
    """Row-by-row delta of two records' numeric metrics.

    Returns ``(rows, warnings, failures)``: each row is ``(benchmark,
    metric, previous value, current value, delta text, flagged?)`` for
    every numeric metric present in either record.  A regression
    (shrink beyond :data:`TOLERANCE` in the metric's better-direction)
    or a removal lands one message in ``failures`` when the benchmark
    is in :data:`STABLE_BENCHMARKS`, in ``warnings`` otherwise.

    Metrics (or whole benchmarks) appearing for the **first time** —
    no previous value, numeric current value — are rendered as explicit
    ``new`` rows; ones that **vanish** are rendered as explicit
    ``removed`` rows.  Neither is silently skipped, so the trajectory
    summary shows coverage growth and shrinkage the moment it happens.
    """
    rows: List[Tuple[str, str, object, object, str, bool]] = []
    warnings: List[str] = []
    failures: List[str] = []
    prev_results = previous.get("results", {})
    curr_results = current.get("results", {})
    for bench in sorted(set(prev_results) | set(curr_results)):
        prev_bench = prev_results.get(bench, {})
        curr_bench = curr_results.get(bench, {})
        stable = bench in STABLE_BENCHMARKS
        sink = failures if stable else warnings
        for metric in sorted(set(prev_bench) | set(curr_bench)):
            if metric in _CONTEXT_KEYS:
                continue
            before = prev_bench.get(metric)
            after = curr_bench.get(metric)
            after_numeric = isinstance(
                after, (int, float)
            ) and not isinstance(after, bool)
            before_numeric = isinstance(
                before, (int, float)
            ) and not isinstance(before, bool)
            if before is None and after_numeric:
                rows.append((bench, metric, "—", after, "new", False))
                continue
            if before_numeric and metric not in curr_bench:
                rows.append(
                    (bench, metric, before, "—", "removed", stable)
                )
                sink.append(
                    f"{bench}.{metric} disappeared from the current "
                    "record"
                    + (
                        " (stable benchmark — removing it requires "
                        "editing STABLE_BENCHMARKS)"
                        if stable
                        else ""
                    )
                )
                continue
            if not (before_numeric and after_numeric):
                continue
            if before:
                change = (after - before) / abs(before)
                delta = f"{change:+.1%}"
            else:
                change = 0.0 if after == before else float("inf")
                delta = "n/a" if after != before else "±0%"
            regressed = (
                change != float("inf")
                and change * _direction(metric) < -TOLERANCE
            )
            if regressed:
                sink.append(
                    f"{bench}.{metric} regressed "
                    f"{before} -> {after} ({delta})"
                )
            rows.append((bench, metric, before, after, delta, regressed))
    return rows, warnings, failures


def render_markdown(
    rows: List[Tuple[str, str, object, object, str, bool]],
    previous_meta: Dict,
    current_meta: Dict,
) -> str:
    """The step-summary markdown: header plus one table row per metric."""
    lines = [
        "### Benchmark trajectory vs previous run",
        "",
        f"previous: python {previous_meta.get('python', '?')}, "
        f"current: python {current_meta.get('python', '?')} "
        f"(tolerance ±{TOLERANCE:.0%}; stable-set regressions fail, "
        "new benchmarks warn)",
        "",
        "| benchmark | metric | previous | current | delta | |",
        "|---|---|---:|---:|---:|---|",
    ]
    for bench, metric, before, after, delta, flagged in rows:
        if flagged:
            flag = (
                "❌ removed" if delta == "removed" else "❌ regression"
            )
        elif delta == "removed":
            flag = "⚠️ removed"
        else:
            flag = ""
        lines.append(
            f"| {bench} | {metric} | {before} | {after} | {delta} | {flag} |"
        )
    if not rows:
        lines.append("| _no comparable numeric metrics_ | | | | | |")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI driver; exit 0 ok, 1 broken current record, 2 gate failure."""
    parser = argparse.ArgumentParser(
        description="Render a markdown delta of two BENCH_pr.json "
        "records and enforce the stable-set perf gate."
    )
    parser.add_argument("previous", help="previous run's BENCH_pr.json")
    parser.add_argument("current", help="this run's BENCH_pr.json")
    parser.add_argument(
        "--summary",
        default=None,
        help="file to append the markdown table to "
        "(e.g. $GITHUB_STEP_SUMMARY); stdout is always written",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="downgrade stable-set failures to warnings (exit 0) — "
        "for local runs and forks without artifact history",
    )
    args = parser.parse_args(argv)

    current = load_record(args.current)
    if current is None:
        print(
            f"::warning::current benchmark record {args.current!r} is "
            "missing or unreadable — did bench-smoke run?"
        )
        return 1
    previous = load_record(args.previous)
    if previous is None:
        text = (
            "### Benchmark trajectory vs previous run\n\n"
            f"no previous record at `{args.previous}` "
            "(first run, or the artifact expired) — nothing to compare.\n"
        )
        print(text)
        if args.summary:
            with open(args.summary, "a", encoding="utf-8") as handle:
                handle.write(text)
        return 0

    rows, warnings, failures = compare(previous, current)
    text = render_markdown(rows, previous, current)
    print(text)
    for message in warnings:
        print(f"::warning::{message}")
    failure_command = "::warning::" if args.warn_only else "::error::"
    for message in failures:
        print(f"{failure_command}{message}")
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(text)
    if failures and not args.warn_only:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
