#!/usr/bin/env python3
"""Lint driver for ``make lint``.

Prefers `ruff <https://docs.astral.sh/ruff/>`_ when it is installed
(``ruff check`` with the configuration from ``pyproject.toml``); in
environments without ruff (the library itself has zero required
third-party dependencies, and so does its tooling) it falls back to a
small built-in linter covering the highest-signal, zero-false-positive
checks:

* ``E999`` — the file must parse (``ast.parse``);
* ``F401`` — imports never referenced in the module (``# noqa`` on the
  import line suppresses, for intentional re-exports);
* ``W291/W293`` — trailing whitespace;
* ``W605`` — invalid escape sequences (compile-time ``SyntaxWarning``);
* tabs in indentation (the codebase is spaces-only).

Independently of which linter runs, files under the serving layers
(:data:`DOC_COVERAGE_ROOTS` — ``src/repro/server``, ``src/repro/live``,
``src/repro/cluster``)
also pass a **static doc-coverage check**: the module and every public
function, method, and class must carry a docstring.  These are the
operational surfaces ``docs/OPERATIONS.md`` points into, and ruff is
not configured for pydocstyle rules, so the coverage gate lives here.

Exit status 0 when clean, 1 when any finding is reported — same contract
either way, so CI can call ``make lint`` unconditionally.
"""

from __future__ import annotations

import ast
import pathlib
import shutil
import subprocess
import sys
import warnings
from typing import Iterator, List

#: Directories the fallback linter skips entirely.
SKIP_PARTS = {".git", "__pycache__", ".pytest_cache", ".hypothesis"}

#: Packages whose public API must be fully docstringed (relative to the
#: repo root).  The serving layers: everything an operator reaches for.
DOC_COVERAGE_ROOTS = (
    "src/repro/server",
    "src/repro/live",
    "src/repro/cluster",
)


def iter_python_files(roots: List[str]) -> Iterator[pathlib.Path]:
    """Yield every ``.py`` file under ``roots`` (files pass through)."""
    for root in roots:
        path = pathlib.Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_PARTS.intersection(candidate.parts):
                    yield candidate


class _ImportCollector(ast.NodeVisitor):
    """Record imported names and every name/attribute the module uses."""

    def __init__(self) -> None:
        self.imports: dict[str, int] = {}
        self.used: set[str] = set()
        self.noqa_lines: set[int] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imports[name] = node.lineno
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":  # compiler directives, not names
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            self.imports[name] = node.lineno
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # "import a.b; a.b.c()" marks "a" used via the Name node below it.
        self.generic_visit(node)


def _string_referenced(name: str, tree: ast.Module) -> bool:
    """Is ``name`` mentioned in ``__all__`` or a docstring-ish constant?

    Keeps re-export modules (``from x import y`` + ``__all__ = ["y"]``)
    clean without needing ``# noqa``.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value == name:
                return True
    return False


def check_file(path: pathlib.Path) -> List[str]:
    """Run the fallback checks on one file; returns finding strings."""
    findings: List[str] = []
    text = path.read_text(encoding="utf-8")

    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            findings.append(
                f"{path}:{lineno}: W291 trailing whitespace"
            )
        indent = stripped[: len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            findings.append(f"{path}:{lineno}: W191 tab in indentation")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", SyntaxWarning)
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            findings.append(
                f"{path}:{error.lineno}: E999 syntax error: {error.msg}"
            )
            return findings
        compile(text, str(path), "exec")
    for warning in caught:
        if issubclass(warning.category, SyntaxWarning):
            findings.append(
                f"{path}:{warning.lineno or 0}: W605 {warning.message}"
            )

    collector = _ImportCollector()
    collector.visit(tree)
    noqa_lines = {
        lineno
        for lineno, line in enumerate(text.splitlines(), start=1)
        if "# noqa" in line
    }
    for name, lineno in sorted(collector.imports.items(), key=lambda kv: kv[1]):
        if name == "_" or name.startswith("__"):
            continue
        if lineno in noqa_lines:
            continue
        if name in collector.used:
            continue
        if _string_referenced(name, tree):
            continue
        findings.append(
            f"{path}:{lineno}: F401 '{name}' imported but unused"
        )
    return findings


def check_doc_coverage(path: pathlib.Path) -> List[str]:
    """Docstring findings for one file: module + public defs/classes.

    Public means the name does not start with ``_``; nested helpers
    (functions defined inside functions) are exempt — they are
    implementation detail by position regardless of name.
    """
    findings: List[str] = []
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return findings  # E999 is reported by the main checks
    if ast.get_docstring(tree) is None:
        findings.append(
            f"{path}:1: D100 public module missing a docstring"
        )

    def walk(node: ast.AST, inside_function: bool) -> None:
        """Visit definitions, skipping bodies of functions."""
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                is_class = isinstance(child, ast.ClassDef)
                public = not child.name.startswith("_")
                if public and not inside_function:
                    if ast.get_docstring(child) is None:
                        kind = "class" if is_class else "function"
                        findings.append(
                            f"{path}:{child.lineno}: D103 public "
                            f"{kind} '{child.name}' missing a docstring"
                        )
                walk(child, inside_function or not is_class)
            else:
                walk(child, inside_function)

    walk(tree, inside_function=False)
    return findings


def run_doc_coverage() -> int:
    """Run the doc-coverage check over :data:`DOC_COVERAGE_ROOTS`."""
    repo_root = pathlib.Path(__file__).resolve().parents[1]
    findings: List[str] = []
    count = 0
    for root in DOC_COVERAGE_ROOTS:
        for path in iter_python_files([str(repo_root / root)]):
            count += 1
            findings.extend(check_doc_coverage(path))
    for finding in findings:
        print(finding)
    print(
        f"doc coverage: {count} files checked, {len(findings)} findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


def run_fallback(roots: List[str]) -> int:
    """Run the built-in checks over ``roots``; returns an exit status."""
    findings: List[str] = []
    count = 0
    for path in iter_python_files(roots):
        count += 1
        findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    status = 1 if findings else 0
    print(
        f"fallback lint: {count} files checked, {len(findings)} findings"
        " (install ruff for the full rule set)",
        file=sys.stderr,
    )
    return status


def main(argv: List[str]) -> int:
    """Dispatch to ruff when available, else the built-in fallback.

    The doc-coverage gate over :data:`DOC_COVERAGE_ROOTS` runs in
    *both* modes — ruff is not configured for docstring rules, so
    coverage would silently vary with the environment otherwise.
    """
    roots = argv or ["src", "tests", "benchmarks", "examples", "tools"]
    ruff = shutil.which("ruff")
    if ruff is not None:
        status = subprocess.call([ruff, "check", *roots])
    else:
        status = run_fallback(roots)
    return max(status, run_doc_coverage())


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
