#!/usr/bin/env python3
"""Documentation integrity checks for ``make docs-check``.

Documentation rots in two specific, mechanically detectable ways, and
this tool gates both:

* **Dead cross-links** — every relative markdown link in the checked
  files must resolve to a real file, and every ``#anchor`` (own-page or
  cross-page) must match a real heading's GitHub slug.  External
  (``http(s)``/``mailto``) links are out of scope: their liveness is
  not a property of this repository.
* **Stale CLI examples** — every ``python -m repro <subcommand>`` in a
  fenced ``bash``/``console``/``sh`` block must name a subcommand the
  CLI actually registers (parsed from ``src/repro/__main__.py``), and
  every ``python -m repro experiments <target>`` / ``python -m
  repro.workloads.experiments <target>`` must name a target the
  experiment harness accepts (``_TARGETS``).  A renamed subcommand
  breaks every copy-pasteable example silently; this makes it loud.

Usage::

    python tools/docs_check.py [FILE.md ...]

With no arguments, checks ``README.md`` and every ``docs/*.md``.
Exit status 0 when clean, 1 with one ``file:line: message`` finding per
problem — the same contract as ``tools/lint.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Sequence, Set, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: fence languages whose contents are treated as shell examples
_SHELL_LANGUAGES = {"bash", "sh", "console", "shell"}

#: ``[text](target)`` — target captured; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: one fenced code block: language word, then body up to the closer
_FENCE_RE = re.compile(r"^(`{3,})([\w-]*)[^\n]*\n(.*?)^\1`*\s*$",
                       re.MULTILINE | re.DOTALL)

_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)

#: a CLI example line: the module invoked and its first argument
_CLI_RE = re.compile(
    r"python\s+-m\s+(repro(?:\.[\w.]+)?)\s+(?!-)([\w-]+)"
)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text.

    Lowercase, code ticks and punctuation dropped, spaces become
    hyphens — the algorithm GitHub's renderer applies, minus the
    de-duplication counter (duplicate headings are rare enough here
    that the first-wins slug is the useful one to validate against).
    """
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked heading
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_anchors(text: str) -> Set[str]:
    """Every heading slug a page exposes (outside code fences)."""
    prose = _FENCE_RE.sub("", text)
    return {
        github_slug(match.group(2))
        for match in _HEADING_RE.finditer(prose)
    }


def shell_fences(text: str) -> List[Tuple[int, str]]:
    """``(starting line, body)`` of every shell-language fence."""
    fences = []
    for match in _FENCE_RE.finditer(text):
        if match.group(2).lower() in _SHELL_LANGUAGES:
            line = text.count("\n", 0, match.start()) + 1
            fences.append((line, match.group(3)))
    return fences


def known_subcommands() -> Set[str]:
    """Subcommand names registered by ``python -m repro``'s argparse."""
    source = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text(
        encoding="utf-8"
    )
    return set(
        re.findall(r"add_parser\(\s*\"([\w-]+)\"", source, re.DOTALL)
    )


def experiment_targets() -> Set[str]:
    """Targets the experiment harness CLI accepts (``_TARGETS``)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.workloads.experiments import _TARGETS
    finally:
        sys.path.pop(0)
    return set(_TARGETS)


def check_links(
    path: pathlib.Path,
    text: str,
    anchors_of: Dict[pathlib.Path, Set[str]],
) -> List[str]:
    """Findings for dead relative links / anchors in one file."""
    findings: List[str] = []
    prose = _FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)
    for lineno, line in enumerate(prose.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z+.-]*:", target):  # http:, mailto:
                continue
            raw, _, anchor = target.partition("#")
            if raw:
                resolved = (path.parent / raw).resolve()
                if not resolved.exists():
                    findings.append(
                        f"{path}:{lineno}: dead link {target!r} "
                        f"({raw} does not exist)"
                    )
                    continue
            else:
                resolved = path.resolve()
            if not anchor or resolved.suffix != ".md":
                continue
            if resolved not in anchors_of:
                anchors_of[resolved] = markdown_anchors(
                    resolved.read_text(encoding="utf-8")
                )
            if anchor.lower() not in anchors_of[resolved]:
                findings.append(
                    f"{path}:{lineno}: dead anchor {target!r} "
                    f"(no heading slugs to '#{anchor}' in "
                    f"{resolved.name})"
                )
    return findings


def check_cli_examples(
    path: pathlib.Path,
    text: str,
    subcommands: Set[str],
    targets: Set[str],
) -> List[str]:
    """Findings for stale ``python -m repro`` examples in one file."""
    findings: List[str] = []
    for fence_line, body in shell_fences(text):
        for offset, line in enumerate(body.splitlines(), start=1):
            for match in _CLI_RE.finditer(line):
                module, argument = match.groups()
                lineno = fence_line + offset
                if module == "repro":
                    if argument not in subcommands:
                        findings.append(
                            f"{path}:{lineno}: unknown subcommand "
                            f"'python -m repro {argument}' (CLI has: "
                            f"{', '.join(sorted(subcommands))})"
                        )
                    elif argument == "experiments":
                        rest = line[match.end():].split()
                        if rest and not rest[0].startswith("-") and (
                            rest[0] not in targets
                        ):
                            findings.append(
                                f"{path}:{lineno}: unknown experiment "
                                f"target {rest[0]!r} (harness has: "
                                f"{', '.join(sorted(targets))})"
                            )
                elif module == "repro.workloads.experiments":
                    if argument not in targets:
                        findings.append(
                            f"{path}:{lineno}: unknown experiment "
                            f"target {argument!r} (harness has: "
                            f"{', '.join(sorted(targets))})"
                        )
    return findings


def check_paths(paths: Sequence[pathlib.Path]) -> List[str]:
    """All findings across ``paths`` (shared anchor cache)."""
    subcommands = known_subcommands()
    targets = experiment_targets()
    anchors_of: Dict[pathlib.Path, Set[str]] = {}
    findings: List[str] = []
    for path in paths:
        text = path.read_text(encoding="utf-8")
        findings.extend(check_links(path, text, anchors_of))
        findings.extend(
            check_cli_examples(path, text, subcommands, targets)
        )
    return findings


def main(argv: Sequence[str]) -> int:
    """CLI driver: check the given files, or README + docs/*.md."""
    if argv:
        paths = [pathlib.Path(arg) for arg in argv]
    else:
        paths = [REPO_ROOT / "README.md"] + sorted(
            (REPO_ROOT / "docs").glob("*.md")
        )
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"{path}: no such file")
        return 1
    findings = check_paths(paths)
    for finding in findings:
        print(finding)
    print(
        f"docs-check: {len(paths)} files checked, "
        f"{len(findings)} findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
