"""Overload shedding — bounded admitted tail at 2x sustained capacity.

Not a paper artefact: this bench proves the backpressure design does
what load shedding exists for.  Phase 1 calibrates the host's real
sustainable throughput with closed-loop clients on an all-distinct
window trace (a repeated trace would calibrate the LRU result cache
and overstate capacity several-fold); phase 2 offers **twice** that
rate open-loop against a server with a small admission queue.

The acceptance property is the shape, not a speed number: a healthy
fraction of the offered load is shed with ``overloaded`` + retry hint,
while the p99 of the *admitted* requests stays under a
duration-independent bound (``max_queue`` service times, plus slack
for scheduling noise).  Without the bounded queue that p99 would grow
linearly with the drive's duration — the failure mode this gate
prevents from regressing back in.

Recorded as ``overload_shedding`` in ``BENCH_pr.json``.
"""

from benchmarks.conftest import get_database, record_benchmark
from repro.workloads.experiments import (
    ExperimentConfig,
    run_overload_experiment,
)

DATA_SIZE = 20_000
MAX_QUEUE = 32
MAX_BATCH = 8
DURATION_S = 1.5
OVERLOAD_FACTOR = 2.0
#: scheduling-noise headroom on the queueing-theory bound; the drive
#: runs ~17 Python threads against one event loop, so individual
#: round-trips can stall several service times beyond the queue wait
BOUND_SLACK = 8.0
#: best-of attempts — open-loop socket drives are the noisiest path in
#: the suite, and one bad scheduler hiccup should not fail the gate
ATTEMPTS = 2


def test_overload_sheds_but_bounds_admitted_tail():
    """At 2x capacity: shed rate rises, admitted p99 stays bounded."""
    db = get_database(DATA_SIZE)
    result = None
    for attempt in range(ATTEMPTS):
        result = run_overload_experiment(
            ExperimentConfig(),
            max_queue=MAX_QUEUE,
            max_batch=MAX_BATCH,
            duration_s=DURATION_S,
            overload_factor=OVERLOAD_FACTOR,
            bound_slack=BOUND_SLACK,
            database=db,
        )
        if (
            result.shed > 0
            and result.admitted_p99_ms <= result.p99_bound_ms
        ):
            break
    coalescer = result.stats_frame["coalescer"]
    record_benchmark(
        "overload_shedding",
        capacity_rps=round(result.capacity_rps, 1),
        offered_rps=round(result.offered_rps, 1),
        admitted=result.admitted,
        shed=result.shed,
        shed_rate=round(result.shed_rate, 3),
        admitted_p99_ms=round(result.admitted_p99_ms, 3),
        p99_bound_ms=round(result.p99_bound_ms, 3),
        queue_peak=coalescer["queue_peak"],
        max_queue=MAX_QUEUE,
        duration_s=DURATION_S,
        data_size=DATA_SIZE,
    )
    # The server genuinely refused work rather than queueing forever...
    assert result.shed > 0, "2x capacity never overflowed the queue"
    assert result.admitted > 0, "nothing was admitted at all"
    assert coalescer["shed_requests"] == result.shed
    # ...and what it did admit kept its duration-independent tail bound.
    assert result.admitted_p99_ms <= result.p99_bound_ms, (
        f"admitted p99 {result.admitted_p99_ms:.1f} ms exceeds the "
        f"{result.p99_bound_ms:.1f} ms bound "
        f"({MAX_QUEUE} service times x {BOUND_SLACK:g} slack)"
    )
    # The queue really hit its bound (the shed path was exercised at
    # the boundary, not from some larger transient).
    assert coalescer["queue_peak"] == MAX_QUEUE
