"""Table II — result/candidate/time vs **query size** (data size fixed).

Paper reference (Table II): at 1E5 points, as query size doubles from 1 %
to 32 %, the Voronoi method's candidate saving grows from 35 % to 45 % and
its time saving from 12 % to 38 %.  The growth is the paper's key analysis:
traditional redundancy is proportional to the MBR/polygon *area difference*
(scales with query size), Voronoi redundancy to the polygon *perimeter*
(scales with its square root).

Run ``pytest benchmarks/bench_table2.py --benchmark-only`` for timings or
``python -m repro.workloads.experiments table2`` for the rendered table.
"""


import pytest

from benchmarks.conftest import (
    FIXED_DATA_SIZE,
    QUERY_SIZES,
    get_query_areas,
    run_batch,
    summarize,
)


@pytest.mark.parametrize("query_size", QUERY_SIZES)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_table2_query_time(benchmark, fixed_size_db, query_size, method):
    """Per-query wall time of one Table II cell."""
    areas = get_query_areas(query_size, count=5)

    result = benchmark(run_batch, fixed_size_db, areas, method)

    stats = summarize(result)
    benchmark.extra_info["query_size"] = query_size
    benchmark.extra_info["avg_result_size"] = stats["result_size"]
    benchmark.extra_info["avg_candidates"] = stats["candidates"]
    benchmark.extra_info["avg_redundant"] = stats["redundant"]


def test_table2_shape(fixed_size_db):
    """Regenerate Table II and assert the paper's shape."""
    rows = []
    for query_size in QUERY_SIZES:
        areas = get_query_areas(query_size)
        voronoi = run_batch(fixed_size_db, areas, "voronoi")
        traditional = run_batch(fixed_size_db, areas, "traditional")
        for v, t in zip(voronoi, traditional):
            assert v.ids == t.ids
        rows.append((query_size, summarize(voronoi), summarize(traditional)))

    savings = []
    for query_size, v, t in rows:
        assert t["candidates"] == pytest.approx(
            FIXED_DATA_SIZE * query_size, rel=0.25
        )
        assert v["candidates"] < t["candidates"]
        savings.append(1 - v["candidates"] / t["candidates"])

    # Paper: saving grows with query size (35 % -> 45 %).  Require clear
    # growth from the 1 % cell to the 32 % cell.
    assert savings[-1] > savings[0]

    # Perimeter-vs-area scaling: Voronoi redundancy should grow like
    # sqrt(query size) while traditional redundancy grows linearly, so
    # their ratio at 32 % must be far below the ratio at 1 %.
    first_ratio = rows[0][1]["redundant"] / rows[0][2]["redundant"]
    last_ratio = rows[-1][1]["redundant"] / rows[-1][2]["redundant"]
    assert last_ratio < first_ratio * 0.6
