"""Figure 6 — **time cost vs query size** (data size fixed).

Paper reference: both curves grow roughly linearly in query size (result
size dominates); the Voronoi curve stays below with a gap growing from
11.7 % (1 %) to 37.9 % (32 %).
"""

import pytest

from benchmarks.conftest import (
    QUERY_SIZES,
    get_query_areas,
    run_batch,
    summarize,
)


@pytest.mark.parametrize("query_size", QUERY_SIZES)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_fig6_time_series(benchmark, fixed_size_db, query_size, method):
    """One plotted point of Fig. 6."""
    areas = get_query_areas(query_size, count=5)

    results = benchmark(run_batch, fixed_size_db, areas, method)

    benchmark.extra_info["query_size"] = query_size
    benchmark.extra_info["avg_time_ms"] = summarize(results)["time_ms"]


def test_fig6_shape(fixed_size_db):
    """Rising curves; Voronoi below traditional with a growing gap."""
    series = {"voronoi": [], "traditional": []}
    for query_size in QUERY_SIZES:
        areas = get_query_areas(query_size)
        for method in series:
            series[method].append(
                summarize(run_batch(fixed_size_db, areas, method))["time_ms"]
            )

    for method, times in series.items():
        assert times[-1] > times[0] * 5, method  # strong growth over 32x

    savings = [
        1 - v / t
        for v, t in zip(series["voronoi"], series["traditional"])
    ]
    # Voronoi wins at every query size from 2 % up, and the saving at 32 %
    # clearly exceeds the saving at 1 % (the paper's widening gap).
    for query_size, saving in zip(QUERY_SIZES[1:], savings[1:]):
        assert saving > 0, f"query size {query_size:.0%}"
    assert savings[-1] > savings[0]
    assert savings[-1] > 0.15  # paper: 37.9 %
