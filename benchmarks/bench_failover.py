"""Fault-tolerance cost: synchronous mirroring and time-to-recover.

Not a paper artefact: the acceptance bench for the replication layer.
Two questions, both **warn-only** (recorded for trend-watching, never a
hard CI gate — the numbers swing with host load far more than the
stable read-path benchmarks do):

* ``failover_write_mirror_cost`` — what does mirroring every write to a
  synchronous replica cost at steady state?  Target: <= ``1.3x`` the
  non-replicated write path.  On hosts with < 2 cores the primary and
  replica applies cannot actually overlap, so the ratio is a **model
  over measured components**: the coordinator's replicated-path
  bookkeeping (measured) plus ``max(primary, replica)`` apply time
  (measured; the two run in parallel on a real deployment), against the
  measured non-replicated write.  ``modeled: 1`` marks those records.

* ``failover_recovery`` — how long does a rebuild take after a shard is
  lost?  Measures :meth:`ClusterCoordinator.rebuild_worker` restoring a
  crashed primary from the catalog, and the failover read served from
  the replica *during* the outage (proof the outage window answers).

Recorded in ``BENCH_pr.json`` with ``replicas``/``faults_injected``
context keys; see ``tools/bench_delta.py`` (not in the stable set).
"""

import os
import time
import warnings

from benchmarks.conftest import record_benchmark
from repro.cluster import (
    ClusterCoordinator,
    FaultSpec,
    FaultyBackend,
    LocalShard,
)
from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.query.spec import WindowQuery
from repro.workloads.generators import uniform_points

DATA_SIZE = 4_000
WRITES = 600
WORKERS = 2
MIRROR_COST_TARGET = 1.3


class _TimedShard(LocalShard):
    """A LocalShard metering time spent inside write applies."""

    def __init__(self, database) -> None:
        super().__init__(database)
        self.busy_s = 0.0

    def insert(self, x, y):
        started = time.perf_counter()
        try:
            return super().insert(x, y)
        finally:
            self.busy_s += time.perf_counter() - started


def _write_points(seed=909):
    return [(p.x, p.y) for p in uniform_points(WRITES, seed=seed)]


def _run_writes(coordinator, writes):
    started = time.perf_counter()
    for x, y in writes:
        coordinator.insert(x, y)
    return time.perf_counter() - started


def test_write_mirror_cost():
    """Synchronous mirroring targets <= 1.3x the bare write path."""
    cpus = os.cpu_count() or 1
    base = [(p.x, p.y) for p in uniform_points(DATA_SIZE, seed=31)]
    writes = _write_points()

    plain = ClusterCoordinator(
        [_TimedShard(SpatialDatabase()) for _ in range(WORKERS)],
        auto_rebalance=False,
    )
    plain.bulk_load(base)
    _run_writes(plain, writes[:50])  # warm
    base_s = _run_writes(plain, writes)

    primaries = [_TimedShard(SpatialDatabase()) for _ in range(WORKERS)]
    replicas = [_TimedShard(SpatialDatabase()) for _ in range(WORKERS)]
    mirrored = ClusterCoordinator(
        primaries, replicas=replicas, auto_rebalance=False
    )
    mirrored.bulk_load(base)
    _run_writes(mirrored, writes[:50])  # warm
    for shard in primaries + replicas:
        shard.busy_s = 0.0
    mirrored_s = _run_writes(mirrored, writes)
    mirrored.close()

    primary_busy = sum(shard.busy_s for shard in primaries)
    replica_busy = sum(shard.busy_s for shard in replicas)
    if cpus >= 2:
        # the mirror genuinely overlapped the primary apply
        per_write_repl = mirrored_s / len(writes)
        modeled = 0
    else:
        # single core: the applies serialized here but overlap in any
        # real deployment — charge the slower copy plus coordination
        coordination_s = max(mirrored_s - primary_busy - replica_busy, 0.0)
        per_write_repl = (
            coordination_s + max(primary_busy, replica_busy)
        ) / len(writes)
        modeled = 1
    per_write_base = base_s / len(writes)
    ratio = per_write_repl / per_write_base

    record_benchmark(
        "failover_write_mirror_cost",
        mode="modeled" if modeled else "wallclock",
        modeled=modeled,
        cpus=cpus,
        workers=WORKERS,
        replicas=WORKERS,
        writes=WRITES,
        data_size=DATA_SIZE,
        base_write_us=round(per_write_base * 1e6, 2),
        mirrored_write_us=round(per_write_repl * 1e6, 2),
        mirror_cost_ratio=round(ratio, 3),
        faults_injected=0,
    )
    if ratio > MIRROR_COST_TARGET:  # warn-only: never a hard gate
        warnings.warn(
            f"mirror write cost {ratio:.2f}x exceeds the "
            f"{MIRROR_COST_TARGET}x target (warn-only)",
            RuntimeWarning,
            stacklevel=1,
        )


def test_recovery_time_after_shard_loss():
    """Rebuilding a lost primary from the catalog is fast and complete."""
    base = [(p.x, p.y) for p in uniform_points(DATA_SIZE, seed=32)]
    # worker 0 dies right after the bulk load (its one extend call)
    backends = [
        FaultyBackend(
            LocalShard(SpatialDatabase()), FaultSpec(seed=7, crash_on_call=2)
        ),
        LocalShard(SpatialDatabase()),
    ]
    replicas = [LocalShard(SpatialDatabase()) for _ in range(WORKERS)]
    coordinator = ClusterCoordinator(
        backends, replicas=replicas, auto_rebalance=False
    )
    coordinator.bulk_load(base)

    oracle = SpatialDatabase.from_points([Point(x, y) for x, y in base])
    probe = WindowQuery((0.0, 0.0, 1.0, 1.0))

    # the outage window: the replica answers, correctly
    started = time.perf_counter()
    during = coordinator.query(probe)
    failover_read_s = time.perf_counter() - started
    assert during == oracle.query(probe).ids()

    # recovery: respawn (a fresh backend) + catalog replay
    started = time.perf_counter()
    rows = coordinator.rebuild_worker(0, LocalShard(SpatialDatabase()))
    recover_s = time.perf_counter() - started
    after = coordinator.query(probe)
    assert after == oracle.query(probe).ids()
    faults = backends[0].injected
    coordinator.close()

    record_benchmark(
        "failover_recovery",
        workers=WORKERS,
        replicas=WORKERS,
        data_size=DATA_SIZE,
        rows_restored=rows,
        recover_ms=round(recover_s * 1e3, 2),
        failover_read_ms=round(failover_read_s * 1e3, 3),
        rows_per_s=round(rows / recover_s, 1) if recover_s > 0 else 0.0,
        faults_injected=faults,
    )
