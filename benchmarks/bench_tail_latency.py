"""Tail latency under skewed production traffic — per-kind percentiles.

Not a paper artefact: this bench drives the server with the
production-traffic model (Zipf tile popularity, Poisson bursts, mixed
read/write/subscribe sessions — :func:`make_production_sessions` paced
by :func:`bursty_arrivals`) **open-loop** and records what the paper's
uniform closed-loop traces structurally cannot show: the p50/p95/p99
round-trip per operation kind, and the server's own histogram of
admission-queue wait.  The offered rate sits below capacity, so the
percentiles expose queueing texture (bursts stacking into the
admission window) rather than overload — the overload regime has its
own bench (``bench_overload.py``).

Recorded as ``skewed_tail_latency`` in ``BENCH_pr.json``.  Latency
metrics carry the ``_ms`` suffix, so the perf gate treats them as
lower-is-better.
"""

import pytest

from benchmarks.conftest import record_benchmark
from repro.core.database import SpatialDatabase
from repro.workloads.experiments import (
    ExperimentConfig,
    run_tail_latency_experiment,
)
from repro.workloads.generators import uniform_points

DATA_SIZE = 20_000
SESSIONS = 24
OPS_PER_SESSION = 12
#: mean offered ops/second — brisk but below this mix's capacity, so
#: the percentiles measure burst queueing rather than saturation
RATE = 150.0
CONNECTIONS = 6


@pytest.fixture(scope="module")
def mutable_db():
    """A pure-backend (incrementally insertable) prepared database.

    Deliberately NOT the session-cached scipy database the other
    benches share: the scipy backend rebuilds its Delaunay structure
    on the first voronoi/knn read after every insert, which under this
    mixed read/write trace measures rebuild storms instead of queueing
    (see ``run_tail_latency_experiment``) — and mutating the shared
    database would poison every bench after this one.
    """
    return SpatialDatabase.from_points(
        uniform_points(DATA_SIZE, seed=2020), backend_kind="pure"
    ).prepare()


def test_skewed_traffic_tail_latency(mutable_db):
    """Every op kind gets percentile coverage; server and client agree.

    The assertions are about *observability*, not speed: the drive must
    answer everything it offered, the per-kind histograms must cover
    exactly the admitted requests, and the server-recorded admission
    wait must be a real measurement (non-zero count, ordered
    percentiles).  The recorded milliseconds are the trend CI tracks.
    """
    db = mutable_db
    result = run_tail_latency_experiment(
        ExperimentConfig(),
        sessions=SESSIONS,
        ops_per_session=OPS_PER_SESSION,
        rate=RATE,
        connections=CONNECTIONS,
        database=db,
    )
    report = result.report
    # Conservation: the open loop offered everything and everything was
    # answered (results + error frames), no request vanished.
    assert report.answered == report.offered, (
        report.answered,
        report.offered,
    )
    kinds = result.kind_percentiles()
    assert "window" in kinds, sorted(kinds)
    for row in kinds.values():
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], row

    latency = result.server_latency()
    wait = latency["admission_wait"]
    assert wait["count"] > 0
    assert wait["p50_ms"] <= wait["p99_ms"] <= wait["max_ms"] * 2
    # The server's own per-kind histograms saw the admitted queries.
    server_kinds = latency["kinds"]
    assert server_kinds["window"]["count"] == len(
        report.client_latency_ms.get("window", ())
    )

    record = {
        "offered": report.offered,
        "rate": RATE,
        "sessions": SESSIONS,
        "connections": CONNECTIONS,
        "data_size": DATA_SIZE,
        "notifications": report.notifications,
        "admission_wait_p50_ms": wait["p50_ms"],
        "admission_wait_p99_ms": wait["p99_ms"],
    }
    for kind, row in kinds.items():
        record[f"{kind}_p50_ms"] = round(row["p50_ms"], 3)
        record[f"{kind}_p95_ms"] = round(row["p95_ms"], 3)
        record[f"{kind}_p99_ms"] = round(row["p99_ms"], 3)
    record_benchmark("skewed_tail_latency", **record)
