"""Ablation — query-area shape: irregular vs convex vs rectangle.

The paper's introduction claims the traditional method is near-optimal for
rectangle-like areas ("the result set will be very close to the candidate
set in size") and degrades for irregular ones.  This bench sweeps the
three shape classes at a fixed query size and verifies:

* rectangle areas: traditional redundancy ~ 0 — the Voronoi method cannot
  beat it on candidates there (only its shell differs);
* irregular areas: traditional redundancy is a large fraction of the
  candidate set, and the Voronoi method erases most of it.
"""

import pytest

from repro.workloads.queries import QueryWorkload
from benchmarks.conftest import (
    FIXED_DATA_SIZE,
    get_database,
    run_batch,
    summarize,
)

QUERY_SIZE = 0.04
SHAPES = ("irregular", "convex", "rectangle")


def _areas(shape: str, count: int = 30):
    return QueryWorkload(
        query_size=QUERY_SIZE, shape=shape, seed=41
    ).areas(count)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_shape_query_time(benchmark, shape, method):
    db = get_database(FIXED_DATA_SIZE)
    areas = _areas(shape, count=5)

    results = benchmark(run_batch, db, areas, method)

    stats = summarize(results)
    benchmark.extra_info["shape"] = shape
    benchmark.extra_info["avg_candidates"] = stats["candidates"]
    benchmark.extra_info["avg_redundant"] = stats["redundant"]


def test_shape_ablation():
    db = get_database(FIXED_DATA_SIZE)
    redundancy_fraction = {}
    savings = {}
    for shape in SHAPES:
        areas = _areas(shape)
        voronoi = run_batch(db, areas, "voronoi")
        traditional = run_batch(db, areas, "traditional")
        for v, t in zip(voronoi, traditional):
            assert v.ids == t.ids
        v_stats = summarize(voronoi)
        t_stats = summarize(traditional)
        redundancy_fraction[shape] = (
            t_stats["redundant"] / t_stats["candidates"]
        )
        savings[shape] = 1 - v_stats["candidates"] / t_stats["candidates"]

    # Rectangles: the MBR *is* the area — traditional redundancy vanishes.
    assert redundancy_fraction["rectangle"] < 0.01
    # Irregular 10-gons: a large share of candidates are redundant.
    assert redundancy_fraction["irregular"] > 0.3
    # Convex sits in between.
    assert (
        redundancy_fraction["rectangle"]
        < redundancy_fraction["convex"]
        < redundancy_fraction["irregular"]
    )

    # Candidate savings of the Voronoi method follow the same order: it
    # wins big on irregular areas and cannot win on rectangles.
    assert savings["irregular"] > savings["convex"] > savings["rectangle"]
    assert savings["rectangle"] < 0.05
    assert savings["irregular"] > 0.2
