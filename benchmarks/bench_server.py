"""Query server — cross-client coalescing speedup and wire streaming.

Not a paper artefact: this bench covers the network layer
(:mod:`repro.server`) built on the batch engine.  Three acceptance
assertions, results recorded in ``BENCH_pr.json`` and
``docs/BENCHMARKS.md``:

* ``test_cross_client_coalescing_speedup`` — :data:`CLIENTS` concurrent
  connections answering a hot-tile trace through the coalescing server
  at least 1.3x faster than the same trace as sequential single-spec
  round-trips (one blocking client, against a zero-window server so the
  baseline pays no artificial admission latency).  The win is real
  shared execution: each coalescing wave carries one cluster's
  near-coincident windows from *different* clients, and the engine
  answers the whole wave with one shared index traversal plus
  vectorised per-member scans.
* ``test_coalescing_mechanism_stats`` — the counters, not just the
  clock: the coalescer reports multi-client batches, and the engine's
  lifetime totals show the shared-window groups that served them.
* ``test_streamed_unbounded_knn_over_wire`` — a ``KnnQuery(k=None)``
  streamed over the wire delivers its first chunk after examining
  exactly ``chunk_size`` candidates (the server's engine-level
  ``examined`` counter, asserted from the chunk frame), and the chunk
  equals the eager ``k=chunk_size`` result.

The workload builders and client drivers are shared with the experiment
harness (``python -m repro experiments serve`` reports the same paths).
"""

from benchmarks.conftest import get_database, record_benchmark
from repro.query.spec import KnnQuery
from repro.server import QueryClient, ServerThread
from repro.workloads.experiments import (
    ExperimentConfig,
    make_serve_trace,
    run_serve_throughput_experiment,
    serve_trace_concurrent,
)

DATA_SIZE = 50_000
CLIENTS = 8
#: near-coincident specs per hot-spot cluster (= one coalescing wave)
CLUSTER = 8
DISTINCT = 24
REPEAT = 2
QUERY_SIZE = 0.04
#: rows per response — the paginated "first page per viewport" pattern.
#: Execution still scans every window candidate (the limit truncates
#: only the response), so the speedup keeps measuring *execution*
#: coalescing: with the columnar refactor making queries several times
#: faster, the unbounded variant of this trace became dominated by
#: per-request id transport — a per-connection constant both phases pay
#: equally, which only dilutes the mechanism this bench gates.
LIMIT = 64
#: best-of rounds per phase; the socket/thread path is the noisiest
#: bench in the suite, and min-of-7 keeps the ratio stable on a busy box
ROUNDS = 7


def test_cross_client_coalescing_speedup():
    """Coalesced N-client throughput >= 1.3x sequential round-trips.

    Both phases answer the identical repeated hot-tile trace
    (id-identical results are asserted inside the experiment); each
    phase reports its best of :data:`ROUNDS` with the engine cache
    cleared per round.
    """
    db = get_database(DATA_SIZE)
    sequential, coalesced = run_serve_throughput_experiment(
        ExperimentConfig(),
        clients=CLIENTS,
        distinct=DISTINCT,
        repeat=REPEAT,
        query_size=QUERY_SIZE,
        rounds=ROUNDS,
        cluster=CLUSTER,
        shape="tiles",
        limit=LIMIT,
        database=db,
    )
    speedup = sequential.total_ms / coalesced.total_ms
    record_benchmark(
        "server_coalescing_speedup",
        speedup=round(speedup, 3),
        threshold=1.3,
        sequential_ms=round(sequential.total_ms, 3),
        coalesced_ms=round(coalesced.total_ms, 3),
        clients=CLIENTS,
        requests=DISTINCT * REPEAT,
        data_size=DATA_SIZE,
        query_size=QUERY_SIZE,
        limit=LIMIT,
    )
    assert speedup >= 1.3, (
        f"cross-client coalescing only {speedup:.2f}x sequential "
        f"round-trips (sequential {sequential.total_ms:.1f} ms vs "
        f"coalesced {coalesced.total_ms:.1f} ms)"
    )


def test_coalescing_mechanism_stats():
    """Cross-client batches really form and really share engine work."""
    db = get_database(DATA_SIZE)
    trace = make_serve_trace(
        QUERY_SIZE, DISTINCT, 1, seed=7, cluster=CLUSTER, shape="tiles"
    )
    expected = [db.query(spec).ids() for spec in trace]
    db.engine.cache.clear()
    groups_before = db.engine.totals.shared_window_groups
    shared_before = db.engine.totals.shared_window_queries
    with ServerThread(db, window_ms=20.0) as server:
        ids = serve_trace_concurrent(
            server.host, server.port, trace, CLIENTS
        )
        with QueryClient(server.host, server.port) as client:
            stats = client.stats()
    assert ids == expected
    coalescer = stats["coalescer"]
    assert coalescer["multi_client_batches"] >= 1, coalescer
    assert coalescer["max_batch_size"] >= 2, coalescer
    groups = db.engine.totals.shared_window_groups - groups_before
    shared = db.engine.totals.shared_window_queries - shared_before
    assert groups >= 1 and shared >= 2 * groups, (groups, shared)
    record_benchmark(
        "server_coalescing_mechanism",
        multi_client_batches=coalescer["multi_client_batches"],
        mean_batch_size=coalescer["mean_batch_size"],
        shared_window_groups=groups,
        shared_window_queries=shared,
        clients=CLIENTS,
    )


def test_streamed_unbounded_knn_over_wire():
    """First chunk of a wire-streamed unbounded kNN examines exactly
    ``chunk_size`` candidates, and matches the eager prefix."""
    db = get_database(DATA_SIZE)
    chunk_size = 32
    spec = KnnQuery((0.42, 0.58), None)
    with ServerThread(db) as server:
        with QueryClient(server.host, server.port) as client:
            with client.stream(spec, chunk_size=chunk_size) as stream:
                first = [next(stream) for _ in range(chunk_size)]
                examined_after_first = stream.examined
                chunks_after_first = stream.chunks_received
    # the engine-level accounting carried on the chunk frame: producing
    # chunk_size rows examined chunk_size candidates — the rest of the
    # 50k-point ranking was never computed
    assert chunks_after_first == 1
    assert examined_after_first == chunk_size
    assert first == db.query(KnnQuery((0.42, 0.58), chunk_size)).ids()
    record_benchmark(
        "server_streamed_knn",
        chunk_size=chunk_size,
        examined_first_chunk=examined_after_first,
        data_size=DATA_SIZE,
    )
