"""Figure 5 — **redundant validations vs data size** (query size 1 %).

Paper reference: traditional redundancy grows linearly with data size
(~0.47 × n × query size for these polygons); Voronoi redundancy grows like
sqrt(n) (a one-cell-thick shell along a perimeter whose point density
scales with sqrt(n)).  The candidate saving is 35–43 % across the sweep.

Redundant-validation counts are deterministic given the workload, so the
shape test is exact; the benchmark entries time the counting runs and
attach the counter series as extra_info (the plotted values).
"""

import math

import pytest

from benchmarks.conftest import (
    DATA_SIZES,
    FIXED_QUERY_SIZE,
    get_database,
    get_query_areas,
    run_batch,
    summarize,
)


@pytest.mark.parametrize("n", (DATA_SIZES[0], DATA_SIZES[9]))
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_fig5_redundancy_endpoints(benchmark, n, method):
    """Benchmark the sweep endpoints; extra_info carries the plotted value."""
    db = get_database(n)
    areas = get_query_areas(FIXED_QUERY_SIZE, count=10)

    results = benchmark(run_batch, db, areas, method)

    benchmark.extra_info["data_size"] = n
    benchmark.extra_info["avg_redundant"] = summarize(results)["redundant"]


def test_fig5_shape():
    """Linear vs sqrt growth of the two redundancy curves."""
    series = {"voronoi": [], "traditional": []}
    for n in DATA_SIZES:
        db = get_database(n)
        areas = get_query_areas(FIXED_QUERY_SIZE)
        for method in series:
            series[method].append(
                summarize(run_batch(db, areas, method))["redundant"]
            )

    n_ratio = DATA_SIZES[-1] / DATA_SIZES[0]

    # Traditional redundancy ~ linear in n.
    traditional_growth = series["traditional"][-1] / series["traditional"][0]
    assert traditional_growth == pytest.approx(n_ratio, rel=0.35)

    # Voronoi redundancy ~ sqrt(n): much slower growth.
    voronoi_growth = series["voronoi"][-1] / series["voronoi"][0]
    assert voronoi_growth < traditional_growth * 0.62
    assert voronoi_growth == pytest.approx(math.sqrt(n_ratio), rel=0.5)

    # And the Voronoi curve sits below the traditional one everywhere.
    for v, t in zip(series["voronoi"], series["traditional"]):
        assert v < t
