"""Table I — result/candidate/time vs **data size** (query size fixed at 1 %).

Paper reference (Table I): as data grows 1E5 → 1E6, the Voronoi method's
candidate set stays 35–43 % below the traditional one and its time 10–31 %
below.  Each benchmark here measures one (data size, method) cell; the
module-level check test regenerates the whole table and asserts the shape:

* both methods return identical results;
* traditional candidates ≈ data_size × query_size (the MBR window);
* Voronoi candidates sit between result size and traditional candidates,
  with the saving growing as data grows.

Run ``pytest benchmarks/bench_table1.py --benchmark-only`` for timings or
``python -m repro.workloads.experiments table1`` for the rendered table.
"""

import pytest

from benchmarks.conftest import (
    DATA_SIZES,
    FIXED_QUERY_SIZE,
    get_database,
    get_query_areas,
    run_batch,
    summarize,
)

# Benchmark three representative sizes per method (smallest, middle,
# largest); benchmarking all ten doubles wall time for no extra insight —
# the in-between cells are covered by the table check below.
BENCH_SIZES = (DATA_SIZES[0], DATA_SIZES[4], DATA_SIZES[9])


@pytest.mark.parametrize("n", BENCH_SIZES)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_table1_query_time(benchmark, n, method):
    """Per-query wall time of one Table I cell."""
    db = get_database(n)
    areas = get_query_areas(FIXED_QUERY_SIZE, count=10)

    result = benchmark(run_batch, db, areas, method)

    stats = summarize(result)
    benchmark.extra_info["data_size"] = n
    benchmark.extra_info["avg_result_size"] = stats["result_size"]
    benchmark.extra_info["avg_candidates"] = stats["candidates"]
    benchmark.extra_info["avg_redundant"] = stats["redundant"]


def test_table1_shape():
    """Regenerate Table I (without timings) and assert the paper's shape."""
    rows = []
    for n in DATA_SIZES:
        db = get_database(n)
        areas = get_query_areas(FIXED_QUERY_SIZE)
        voronoi = run_batch(db, areas, "voronoi")
        traditional = run_batch(db, areas, "traditional")
        for v, t in zip(voronoi, traditional):
            assert v.ids == t.ids
        rows.append((n, summarize(voronoi), summarize(traditional)))

    savings = []
    for n, v, t in rows:
        # Traditional candidates track the MBR window: n * 1 %.
        assert t["candidates"] == pytest.approx(
            n * FIXED_QUERY_SIZE, rel=0.25
        )
        # Voronoi candidates: result + thin shell, below traditional.
        assert v["result_size"] <= v["candidates"] < t["candidates"]
        savings.append(1 - v["candidates"] / t["candidates"])

    # Paper Table I: the saving grows with data size (35 % at 1E5 to 43 %
    # at 1E6).  At the default 1/10-scale sweep the absolute numbers are
    # smaller (the shell is relatively thicker at lower densities), but the
    # growth shape and a solid saving at the dense end must hold.
    assert savings[-1] > savings[0]
    assert 0.15 < savings[-1] < 0.60, f"final saving {savings[-1]:.1%}"

    # Result sizes scale linearly with data size (same query size).
    first, last = rows[0], rows[-1]
    growth = last[1]["result_size"] / first[1]["result_size"]
    expected_growth = last[0] / first[0]
    assert growth == pytest.approx(expected_growth, rel=0.3)
