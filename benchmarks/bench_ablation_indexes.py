"""Ablation — does a better index fix the traditional method?

The paper attributes the traditional method's cost to its candidate set,
not to the index producing it.  This bench runs the traditional pipeline
over every index in the library and the Voronoi method beside them: all
traditional variants validate identical candidate sets; the Voronoi
method's is structurally smaller regardless of which index seeds it.
"""

import pytest

from repro.core.database import SpatialDatabase
from repro.workloads.generators import uniform_points
from benchmarks.conftest import get_query_areas, run_batch, summarize

INDEX_KINDS = ["rtree", "rstar", "kdtree", "quadtree", "grid"]
N_POINTS = 30_000
QUERY_SIZE = 0.04

_dbs = {}


def _db(index_kind: str) -> SpatialDatabase:
    if index_kind not in _dbs:
        db = SpatialDatabase.from_points(
            uniform_points(N_POINTS, seed=2020),
            index_kind=index_kind,
            backend_kind="scipy",
        )
        _dbs[index_kind] = db
    return _dbs[index_kind]


@pytest.mark.parametrize("index_kind", INDEX_KINDS)
def test_traditional_per_index(benchmark, index_kind):
    """Traditional filter–refine on each index structure."""
    db = _db(index_kind)
    areas = get_query_areas(QUERY_SIZE, count=5)

    results = benchmark(run_batch, db, areas, "traditional")

    stats = summarize(results)
    benchmark.extra_info["index"] = index_kind
    benchmark.extra_info["avg_candidates"] = stats["candidates"]


@pytest.mark.parametrize("index_kind", INDEX_KINDS)
def test_voronoi_per_seed_index(benchmark, index_kind):
    """The Voronoi method, seeded via each index's NN search."""
    db = _db(index_kind)
    db.prepare()
    areas = get_query_areas(QUERY_SIZE, count=5)

    results = benchmark(run_batch, db, areas, "voronoi")

    stats = summarize(results)
    benchmark.extra_info["index"] = index_kind
    benchmark.extra_info["avg_candidates"] = stats["candidates"]


def test_ablation_shape():
    """Index choice cannot shrink the traditional candidate set."""
    areas = get_query_areas(QUERY_SIZE)
    candidate_counts = {}
    voronoi_counts = {}
    reference = None
    for index_kind in INDEX_KINDS:
        db = _db(index_kind)
        db.prepare()
        traditional = run_batch(db, areas, "traditional")
        voronoi = run_batch(db, areas, "voronoi")
        for v, t in zip(voronoi, traditional):
            assert v.ids == t.ids
            if reference is None:
                reference = t.ids
        candidate_counts[index_kind] = summarize(traditional)["candidates"]
        voronoi_counts[index_kind] = summarize(voronoi)["candidates"]

    # Every index produces the *same* traditional candidate set (it is
    # defined by the MBR, not the structure).
    values = list(candidate_counts.values())
    assert max(values) == min(values)

    # The Voronoi candidate count is index-independent too, and smaller.
    v_values = list(voronoi_counts.values())
    assert max(v_values) == min(v_values)
    assert v_values[0] < values[0]
