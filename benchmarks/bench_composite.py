"""Composite query algebra — decomposition speedup and streaming cost.

Not a paper artefact: this bench covers the composite specs added on top
of the declarative query API (:mod:`repro.query.spec` union /
intersection / difference) and the streaming ``KnnQuery(k=None)``.

Two acceptance assertions, results recorded in ``BENCH_pr.json`` and
``docs/BENCHMARKS.md``:

* ``test_composite_union_speedup`` — a batch-decomposed ``UnionQuery``
  of :data:`PARTS` (>= 4) clustered Voronoi-method regions at least
  1.3x faster than executing the same leaves independently and merging
  in Python.  The win is the engine's cross-sibling sharing: after the
  first leaf, every sibling's expansion seed is obtained by *walking*
  the previous seed across the Delaunay graph (a few hops) instead of a
  best-first index NN descent.  (Index-routed leaves share window
  frontiers instead; at laptop scale that saving is of the same order
  as the batch bookkeeping, so the paper-method workload is the
  showcase.)
* ``test_unbounded_knn_streams_first_10`` — ``KnnQuery(k=None)``
  yields its first 10 neighbours while *examining exactly 10
  candidates*, i.e. without materialising (or even ranking) the rest of
  the database; the prefix equals the eager ``k=10`` result.

The strategy runner is shared with the experiment harness
(``python -m repro experiments composite`` reports the same paths).
"""

import time

import pytest

from benchmarks.conftest import get_database, record_benchmark
from repro.query.spec import KnnQuery, UnionQuery
from repro.workloads.experiments import (
    COMPOSITE_TRACE_STRATEGIES,
    make_composite_trace,
    run_trace_strategy,
)

DATA_SIZE = 10_000
#: sibling regions per composite (the acceptance bar requires >= 4)
PARTS = 8
DISTINCT = 20
QUERY_SIZE = 0.001
ROUNDS = 7


def _composite_trace():
    """The acceptance workload: unions of PARTS clustered voronoi leaves."""
    return make_composite_trace(
        QUERY_SIZE,
        DISTINCT,
        seed=2020,
        parts=PARTS,
        kinds=(UnionQuery,),
    )


@pytest.mark.parametrize("strategy", COMPOSITE_TRACE_STRATEGIES)
def test_composite_throughput(benchmark, strategy):
    db = get_database(DATA_SIZE)
    trace = _composite_trace()

    benchmark(run_trace_strategy, db, trace, strategy)

    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["composites"] = len(trace)
    benchmark.extra_info["parts"] = PARTS


def test_composite_union_speedup():
    """Batch-decomposed unions >= 1.3x independent leaf execution (the
    acceptance bar), with id-identical results.

    The two strategies are timed *interleaved* (loop round, batch round,
    repeat; min per strategy) rather than in separate phases, so CPU
    frequency drift or background load on a shared box hits both sides
    equally instead of skewing the ratio.
    """
    db = get_database(DATA_SIZE)
    trace = _composite_trace()
    assert all(len(spec.parts) >= 4 for spec in trace)

    times = {"leaves/loop": float("inf"), "composite/batch": float("inf")}
    ids = {}
    for _ in range(ROUNDS):
        for strategy in times:
            started = time.perf_counter()
            ids[strategy] = run_trace_strategy(db, trace, strategy)
            times[strategy] = min(
                times[strategy], time.perf_counter() - started
            )
    loop_time, loop_ids = times["leaves/loop"], ids["leaves/loop"]
    batch_time, batch_ids = (
        times["composite/batch"],
        ids["composite/batch"],
    )

    assert batch_ids == loop_ids
    stats = db.engine.last_batch_stats
    speedup = loop_time / batch_time
    record_benchmark(
        "composite_union_speedup",
        speedup=round(speedup, 3),
        threshold=1.3,
        loop_ms=round(loop_time * 1e3, 3),
        batch_ms=round(batch_time * 1e3, 3),
        composites=len(trace),
        parts=PARTS,
        seed_walk_reuses=stats.seed_walk_reuses,
        seed_index_lookups=stats.seed_index_lookups,
        data_size=DATA_SIZE,
    )
    # the mechanism, not just the outcome: almost every sibling seed
    # must have come from a graph walk rather than an index descent
    assert stats.seed_walk_reuses >= len(trace) * (PARTS - 1)
    assert speedup >= 1.3, (
        f"composite decomposition only {speedup:.2f}x independent leaves "
        f"(loop {loop_time * 1e3:.1f} ms vs batch {batch_time * 1e3:.1f} ms)"
    )


def test_unbounded_knn_streams_first_10():
    """``KnnQuery(k=None)`` streams: first-10 consumption examines
    exactly 10 candidates and never materialises the full ranking."""
    db = get_database(DATA_SIZE)
    examined = []
    spec = KnnQuery(
        (0.42, 0.58), None, predicate=lambda p: examined.append(p) or True
    )
    result = db.query(spec)

    first10 = result.first(10)

    assert len(first10) == 10
    # the predicate runs once per examined candidate: exactly 10 of the
    # 10k rows were ever touched, and no eager record was memoised
    assert len(examined) == 10
    assert not result.executed
    assert first10 == db.query(KnnQuery((0.42, 0.58), 10)).ids()
    record_benchmark(
        "unbounded_knn_streaming",
        first_n=10,
        candidates_examined=len(examined),
        data_size=DATA_SIZE,
        materialised=result.executed,
    )
