"""Ablation — how per-validation cost moves the time crossover.

The paper's experiments ran against a database where refinement "requires
geometric information loading" (IO) on top of the point-in-polygon test, so
each validation was far more expensive than our in-memory ``contains``.
Our measured time savings at 1 % query size are therefore smaller than the
paper's, even though the candidate savings match (see EXPERIMENTS.md).

This bench makes that relationship explicit: it injects a synthetic
per-validation penalty (emulating a record fetch of increasing weight) into
*both* methods and shows the Voronoi method's time saving converging toward
its candidate saving as validations dominate — the regime the paper
measured.
"""

import pytest

from repro.core.traditional_query import traditional_area_query
from repro.core.voronoi_query import voronoi_area_query
from benchmarks.conftest import (
    FIXED_DATA_SIZE,
    get_database,
    get_query_areas,
)

QUERY_SIZE = 0.01
#: Iterations of the dummy fetch loop per validation.
COST_LEVELS = (0, 8, 32, 128)


def _costly_contains(weight: int):
    """The exact refinement plus a synthetic record-fetch penalty."""

    def contains(area, p):
        # Emulate deserialising a fetched record: arithmetic on the
        # coordinates that the optimiser cannot skip.
        checksum = 0.0
        for i in range(weight):
            checksum += (p.x * i - p.y) * 1e-9
        if checksum > 1e18:  # never true; keeps the loop observable
            return False
        return area.contains_point(p)

    return contains


def _run(db, areas, method, weight):
    contains = _costly_contains(weight)
    results = []
    for area in areas:
        if method == "voronoi":
            results.append(
                voronoi_area_query(
                    db.index, db.backend, db.points, area, contains=contains
                )
            )
        else:
            results.append(
                traditional_area_query(db.index, area, contains=contains)
            )
    return results


@pytest.mark.parametrize("weight", COST_LEVELS)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_iocost_query_time(benchmark, weight, method):
    db = get_database(FIXED_DATA_SIZE)
    areas = get_query_areas(QUERY_SIZE, count=5)

    benchmark(_run, db, areas, method, weight)

    benchmark.extra_info["validation_weight"] = weight


def test_iocost_shape():
    """Time saving grows monotonically-ish with per-validation cost and
    approaches the candidate saving at the heavy end."""
    import time

    db = get_database(FIXED_DATA_SIZE)
    areas = get_query_areas(QUERY_SIZE, count=15)

    savings = []
    for weight in COST_LEVELS:
        timings = {}
        for method in ("voronoi", "traditional"):
            started = time.perf_counter()
            results = _run(db, areas, method, weight)
            timings[method] = time.perf_counter() - started
        savings.append(1 - timings["voronoi"] / timings["traditional"])

    candidate_saving = 1 - (
        sum(r.stats.candidates for r in _run(db, areas, "voronoi", 0))
        / sum(r.stats.candidates for r in _run(db, areas, "traditional", 0))
    )

    # Heavier validations favour the method with fewer candidates.
    assert savings[-1] > savings[0]
    # At the heavy end the time saving must be within reach of the
    # candidate saving (the asymptotic limit).
    assert savings[-1] > candidate_saving * 0.55
