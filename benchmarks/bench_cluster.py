"""Cluster read throughput: 4 Hilbert shards vs one process.

Not a paper artefact: the acceptance gate for the cluster layer.  The
claim under test is *horizontal read scaling* — a point-query-heavy
trace answered by 4 shard workers sustains at least ``1.7x`` the
single-process throughput, because each request costs only its owning
shard(s) a fraction of the single-process work and distinct requests
land on distinct shards.

Two measurement modes, chosen by core count and recorded verbatim:

``wallclock`` (>= 4 cores)
    Spawn 4 real worker processes behind the router and race
    concurrent clients against a single-process baseline server on the
    identical trace.  The recorded ratio is wall-clock measured.

``modeled`` (< 4 cores)
    Genuine multi-process speedup cannot manifest without cores to run
    the workers on, so the ratio is a **capacity model over measured
    components**, each taken from a real run of the identical trace:
    per-request single-process service time; per-touch shard-local
    service time and the mean shards-touched-per-request (counted by
    instrumented shard backends during a full routed run, so kNN
    boundary expansion and window fan-out are real, not assumed); and
    the router's own merge overhead, which caps the model as a serial
    bottleneck term.  The record carries ``modeled: 1`` plus every
    component, so the number is auditable and never mistaken for a
    wall-clock measurement.

Recorded as ``cluster_read_throughput`` in ``BENCH_pr.json`` with
``workers``/``shards``/``cpus``/``modeled`` context keys.
"""

import os
import threading
import time

from benchmarks.conftest import record_benchmark
from repro.cluster import ClusterCoordinator, LocalShard
from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.query.spec import KnnQuery, NearestQuery, WindowQuery
from repro.workloads.generators import uniform_points

import random

DATA_SIZE = 8_000
REQUESTS = 400
WORKERS = 4
TARGET_RATIO = 1.7
#: concurrent driver threads in wallclock mode (one client each)
DRIVERS = 4


def read_trace(seed=77):
    """A point-query-heavy read trace: kNN, nearest, small windows."""
    rng = random.Random(seed)
    specs = []
    for index in range(REQUESTS):
        x, y = rng.random(), rng.random()
        shape = index % 4
        if shape == 0:
            side = 0.01 + rng.random() * 0.03
            specs.append(
                WindowQuery(
                    (x * 0.9, y * 0.9, x * 0.9 + side, y * 0.9 + side)
                )
            )
        elif shape == 1:
            specs.append(KnnQuery(Point(x, y), 10))
        elif shape == 2:
            specs.append(NearestQuery(Point(x, y)))
        else:
            specs.append(KnnQuery(Point(x, y), 25))
    return specs


class _CountingShard(LocalShard):
    """A LocalShard that meters eager queries: touches and busy time."""

    def __init__(self, database) -> None:
        super().__init__(database)
        self.queries = 0
        self.busy_s = 0.0

    def query_ids(self, spec):
        started = time.perf_counter()
        try:
            return super().query_ids(spec)
        finally:
            self.busy_s += time.perf_counter() - started
            self.queries += 1


def _drive_wire(host, port, specs):
    """Sequentially answer ``specs`` over one wire client; returns seconds."""
    from repro.server import QueryClient

    with QueryClient(host, port) as client:
        started = time.perf_counter()
        for spec in specs:
            client.query(spec)
        return time.perf_counter() - started


def _measure_wallclock(points, specs):
    """Real 4-worker wall-clock throughput vs a single-process server."""
    from repro.cluster.launcher import start_cluster
    from repro.server import ServerThread

    def race(host, port):
        slices = [specs[index::DRIVERS] for index in range(DRIVERS)]
        elapsed = [0.0] * DRIVERS
        threads = [
            threading.Thread(
                target=lambda i=i: elapsed.__setitem__(
                    i, _drive_wire(host, port, slices[i])
                )
            )
            for i in range(DRIVERS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return len(specs) / (time.perf_counter() - started)

    database = SpatialDatabase.from_points(
        [Point(x, y) for x, y in points], backend_kind="scipy"
    ).prepare()
    with ServerThread(database) as single:
        _drive_wire(single.host, single.port, specs[:40])  # warm
        single_rps = race(single.host, single.port)
    with start_cluster(WORKERS, points=points) as cluster:
        _drive_wire(cluster.host, cluster.port, specs[:40])  # warm
        cluster_rps = race(cluster.host, cluster.port)
    return {
        "mode": "wallclock",
        "single_rps": round(single_rps, 1),
        "cluster_rps": round(cluster_rps, 1),
        "read_speedup_at_4": round(cluster_rps / single_rps, 2),
        "modeled": 0,
    }


def _measure_modeled(points, specs):
    """Capacity model from measured components (single-core host)."""
    oracle = SpatialDatabase.from_points(
        [Point(x, y) for x, y in points], backend_kind="scipy"
    ).prepare()
    shards = [
        _CountingShard(SpatialDatabase(backend_kind="scipy"))
        for _ in range(WORKERS)
    ]
    coordinator = ClusterCoordinator(shards, auto_rebalance=False)
    coordinator.bulk_load(points)
    for shard in shards:
        shard.database.prepare()

    for spec in specs[:40]:  # warm both sides (index caches, JIT-ish paths)
        oracle.query(spec).ids()
        coordinator.query(spec)
    for shard in shards:
        shard.queries, shard.busy_s = 0, 0.0

    started = time.perf_counter()
    single_results = [oracle.query(spec).ids() for spec in specs]
    single_s = time.perf_counter() - started

    started = time.perf_counter()
    cluster_results = [coordinator.query(spec) for spec in specs]
    cluster_s = time.perf_counter() - started

    # the model is only meaningful if the routed answers are right
    assert cluster_results == single_results

    touches = sum(shard.queries for shard in shards)
    shard_busy_s = sum(shard.busy_s for shard in shards)
    mean_touch = touches / len(specs)
    shard_service_s = shard_busy_s / touches
    router_overhead_s = max(cluster_s - shard_busy_s, 0.0) / len(specs)

    # W shards serve touches in parallel; the router's merge work is
    # the serial term that caps scaling (Amdahl form).
    shard_capacity_rps = WORKERS / (shard_service_s * mean_touch)
    router_cap_rps = (
        1.0 / router_overhead_s if router_overhead_s > 0 else float("inf")
    )
    modeled_rps = min(shard_capacity_rps, router_cap_rps)
    single_rps = len(specs) / single_s
    return {
        "mode": "modeled",
        "single_rps": round(single_rps, 1),
        "cluster_rps": round(modeled_rps, 1),
        "read_speedup_at_4": round(modeled_rps / single_rps, 2),
        "modeled": 1,
        "mean_shards_touched": round(mean_touch, 3),
        "shard_service_ms": round(shard_service_s * 1e3, 4),
        "router_overhead_ms": round(router_overhead_s * 1e3, 4),
    }


def test_cluster_read_throughput_scales():
    """4 shard workers sustain >= 1.7x single-process read throughput."""
    cpus = os.cpu_count() or 1
    points = [(p.x, p.y) for p in uniform_points(DATA_SIZE, seed=2024)]
    specs = read_trace()
    if cpus >= WORKERS:
        outcome = _measure_wallclock(points, specs)
    else:
        outcome = _measure_modeled(points, specs)
    record_benchmark(
        "cluster_read_throughput",
        workers=WORKERS,
        shards=WORKERS,
        cpus=cpus,
        data_size=DATA_SIZE,
        requests=REQUESTS,
        **outcome,
    )
    assert outcome["read_speedup_at_4"] >= TARGET_RATIO, outcome
