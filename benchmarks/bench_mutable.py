"""Mutable serving — a 95/5 read/write mix over the wire.

Not a paper artefact: this bench gates the MVCC write path added to the
serving stack.  One blocking client drives a mixed trace against a
:class:`~repro.server.app.ServerThread` — 95% coalesced reads (windows
and kNN around a drifting hot spot), 5% writes (inserts with occasional
deletes) — and the assertions pin the two properties that make mutable
serving viable at all:

* **Index freshness without rebuilds** — the database's pure-Python
  Delaunay backend is maintained *incrementally*: after the whole trace
  it is the same object that served the first request (a full rebuild
  would have replaced it), its vertex count tracks the store exactly,
  and a read admitted right after each write observes that write.
* **Write cost stays in the read budget** — the mixed trace's
  throughput is recorded in ``BENCH_pr.json`` (requests/s plus the
  per-op split), so the perf-trajectory gate catches a regression that
  turns every insert into a rebuild (that moves throughput by orders of
  magnitude, not percents).
"""

import random
import time

from benchmarks.conftest import record_benchmark
from repro.core.database import SpatialDatabase
from repro.query.spec import KnnQuery, WindowQuery
from repro.server import QueryClient, ServerThread
from repro.workloads.generators import uniform_points

DATA_SIZE = 4_000
REQUESTS = 400
WRITE_FRACTION = 0.05


def _trace(rng):
    """The mixed request trace: (kind, payload) tuples, 95/5 split."""
    operations = []
    for i in range(REQUESTS):
        if rng.random() < WRITE_FRACTION:
            if operations and rng.random() < 0.25:
                operations.append(("delete", None))  # row chosen at runtime
            else:
                operations.append(
                    ("insert", (rng.random(), rng.random()))
                )
        elif rng.random() < 0.5:
            x, y = rng.uniform(0.1, 0.8), rng.uniform(0.1, 0.8)
            operations.append(("window", (x, y, x + 0.1, y + 0.1)))
        else:
            operations.append(
                ("knn", (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)))
            )
    return operations


def test_mixed_read_write_serving():
    rng = random.Random(417)
    db = SpatialDatabase.from_points(
        uniform_points(DATA_SIZE, seed=419), backend_kind="pure"
    ).prepare()
    backend = db.backend  # identity pin: rebuilds would replace it
    operations = _trace(rng)
    inserted = []
    counts = {"window": 0, "knn": 0, "insert": 0, "delete": 0}

    with ServerThread(db, window_ms=2.0) as server:
        with QueryClient(server.host, server.port) as client:
            started = time.perf_counter()
            for kind, payload in operations:
                counts[kind] += 1
                if kind == "window":
                    client.query(WindowQuery(payload))
                elif kind == "knn":
                    client.query(KnnQuery(payload, 8))
                elif kind == "insert":
                    ack = client.insert(*payload)
                    inserted.append((ack.rows[0], payload))
                    # Freshness probe: the very next read must see the
                    # new row as its own nearest neighbour.
                    got = client.query(KnnQuery(payload, 1)).ids
                    assert got == [ack.rows[0]]
                else:  # delete a row we inserted earlier (if any)
                    if inserted:
                        row, _ = inserted.pop(rng.randrange(len(inserted)))
                        client.delete(row)
                    else:
                        counts["delete"] -= 1
                        counts["insert"] += 1
                        ack = client.insert(0.5, 0.5)
                        inserted.append((ack.rows[0], (0.5, 0.5)))
            elapsed = time.perf_counter() - started
            stats = client.stats()

    writes = counts["insert"] + counts["delete"]
    reads = counts["window"] + counts["knn"]
    assert reads + writes == REQUESTS

    # Incremental maintenance, not rebuilds: same backend object, vertex
    # count equal to the full (superset) row space.
    assert db.backend is backend
    assert db.backend.size == len(db.store) == DATA_SIZE + counts["insert"]
    assert db.store.deleted_count == counts["delete"]
    assert stats["server"]["writes_total"] == writes

    record_benchmark(
        "mutable_server_mix",
        data_size=DATA_SIZE,
        requests=REQUESTS,
        reads=reads,
        writes=writes,
        write_fraction=round(writes / REQUESTS, 4),
        throughput_rps=round(REQUESTS / elapsed, 1),
        total_s=round(elapsed, 4),
        coalescer_batches=stats["coalescer"]["batches"],
        backend_rebuilds=0,
    )
