"""Live queries — thousands of standing subscriptions over the wire.

Not a paper artefact: this bench gates the live-query subsystem
(:mod:`repro.live`) end-to-end.  One client registers ~1.2k standing
queries (small windows plus kNN around popular spots); a second client
replays a moving-objects trace (random-waypoint with hot-spot drift,
each move a delete + insert) while the first drains the server's pushed
``notify`` deltas.  Recorded in ``BENCH_pr.json``:

* **update→notify latency** (p50/p95/p99 ms): wall clock from just
  before the write frame goes out until the subscriber has *read* the
  resulting delta — the full path through admission, snapshot capture,
  dirty-tile fan-out, delta evaluation, and the per-connection delivery
  queue.
* **notifications/sec** over the write phase, plus registration rate.

The hard assert is the mechanism, not the timing: the registry's
``evaluations`` counter must stay far below ``writes x active
subscriptions`` (the dirty-tile inverted index prunes the fan-out), so a
regression that silently re-evaluates every subscription per write fails
the bench even on a fast machine.
"""

import time

from benchmarks.conftest import record_benchmark
from repro.core.database import SpatialDatabase
from repro.query.spec import KnnQuery, WindowQuery
from repro.server import QueryClient, ServerThread
from repro.workloads.generators import moving_object_steps, uniform_points

DATA_SIZE = 2_000
WINDOW_SUBS = 1_100
KNN_SUBS = 100
OBJECTS = 40
MOVES = 120
#: evaluations / (writes x active subs) ceiling — the pruning guarantee
MAX_EVALUATION_RATIO = 0.05


def _percentile(values, fraction):
    """The ``fraction`` percentile of ``values`` (nearest-rank)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _register_subscriptions(client, rng):
    """Register the standing-query population; returns (count, seconds)."""
    import random

    rand = random.Random(rng)
    started = time.perf_counter()
    for _ in range(WINDOW_SUBS):
        x, y = rand.uniform(0.05, 0.9), rand.uniform(0.05, 0.9)
        side = rand.uniform(0.02, 0.05)
        client.subscribe(WindowQuery((x, y, x + side, y + side)))
    for _ in range(KNN_SUBS):
        client.subscribe(
            KnnQuery(
                (rand.uniform(0.2, 0.8), rand.uniform(0.2, 0.8)),
                rand.randint(4, 12),
            )
        )
    return WINDOW_SUBS + KNN_SUBS, time.perf_counter() - started


def test_standing_subscription_push():
    db = SpatialDatabase.from_points(
        uniform_points(DATA_SIZE, seed=431), backend_kind="pure"
    ).prepare()
    objects = uniform_points(OBJECTS, seed=433)

    with ServerThread(db, window_ms=2.0) as server:
        with QueryClient(server.host, server.port) as subscriber, QueryClient(
            server.host, server.port
        ) as writer:
            total_subs, register_s = _register_subscriptions(subscriber, 437)

            # Stage the objects as live rows the moves can tombstone;
            # the staging deltas are not part of the timed phase.
            ack = writer.extend([(p.x, p.y) for p in objects])
            object_rows = list(ack.rows)
            while subscriber.notifications(timeout=0.2):
                pass

            version_times = {}
            latencies_ms = []
            notifications = 0
            writes = 0
            started = time.perf_counter()
            for index, _, new in moving_object_steps(
                objects, MOVES, seed=439
            ):
                sent = time.perf_counter()
                gone = writer.delete(object_rows[index])
                version_times[gone.version] = sent
                sent = time.perf_counter()
                landed = writer.insert(*new)
                version_times[landed.version] = sent
                object_rows[index] = landed.rows[0]
                writes += 2
                # Drain this step's deltas one at a time so each read
                # timestamp is tight; the stream is dry once a short
                # poll comes back empty.
                timeout = 0.05
                while True:
                    notes = subscriber.notifications(
                        timeout=timeout, max_count=1
                    )
                    if not notes:
                        break
                    read_at = time.perf_counter()
                    timeout = 0.01
                    for note in notes:
                        notifications += 1
                        latencies_ms.append(
                            (read_at - version_times[note.version]) * 1000.0
                        )
            elapsed = time.perf_counter() - started
            for note in subscriber.notifications(timeout=0.2):
                notifications += 1
                latencies_ms.append(
                    (time.perf_counter() - version_times[note.version])
                    * 1000.0
                )

            stats = subscriber.stats()

    live = stats["subscriptions"]
    assert live["active"] == total_subs
    assert notifications > 0 and latencies_ms
    # The mechanism gate: the dirty-tile index must prune the fan-out —
    # evaluations per write stay a tiny fraction of the population.
    ratio = live["evaluations"] / (live["writes"] * live["active"])
    assert ratio < MAX_EVALUATION_RATIO, (
        f"dirty-tile pruning broke: {live['evaluations']} evaluations over "
        f"{live['writes']} writes x {live['active']} subscriptions "
        f"(ratio {ratio:.4f} >= {MAX_EVALUATION_RATIO})"
    )

    record_benchmark(
        "live_subscriptions",
        data_size=DATA_SIZE,
        subscriptions=total_subs,
        windows=WINDOW_SUBS,
        knn=KNN_SUBS,
        objects=OBJECTS,
        moves=MOVES,
        writes=writes,
        notifications=notifications,
        notify_p50_ms=round(_percentile(latencies_ms, 0.50), 3),
        notify_p95_ms=round(_percentile(latencies_ms, 0.95), 3),
        notify_p99_ms=round(_percentile(latencies_ms, 0.99), 3),
        notifications_per_s=round(notifications / elapsed, 1),
        writes_per_s=round(writes / elapsed, 1),
        register_per_s=round(total_subs / register_s, 1),
        fanout_mean=round(live["fanout"] / live["writes"], 2),
        prune_ratio=round(ratio, 5),
    )
