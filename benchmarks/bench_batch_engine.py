"""Batch engine — single-query vs batched throughput.

Not a paper artefact: this bench measures the serving layer added on top
of the reproduction (:mod:`repro.engine`).  The workload is the 10k-point
uniform database of the laptop-scale sweeps and a production-style trace
of ``DISTINCT`` specs hit ``REPEAT`` times each (hot map tiles and
dashboards repeat; ``REPEAT = 1`` rows show the all-distinct case).

Strategies:

* ``loop/<method>`` — one :meth:`SpatialDatabase.query` per spec, the
  baseline every other repo path uses;
* ``batch/<method>`` — :meth:`SpatialDatabase.query_batch` with the
  method fixed and the cross-batch LRU cache disabled, so the measured
  gain comes from the engine's sharing machinery alone (Hilbert ordering,
  shared window frontiers, Voronoi seed reuse, intra-batch dedup);
* ``batch/auto`` — the full engine: cost-based planner plus result cache
  (cleared per measurement round, so repeats inside the trace are served
  by intra-batch dedup rather than by earlier rounds).

The strategy runner is shared with the experiment harness
(:func:`repro.workloads.experiments.run_trace_strategy`), so this bench
measures exactly the execution paths ``python -m repro batch`` reports.

Two acceptance assertions, results recorded in ``docs/BENCHMARKS.md``:

* ``test_batch_speedup_on_trace`` — batched throughput at least 1.5x the
  *best* single-query loop on the repeated area trace;
* ``test_heterogeneous_batch_speedup`` — same bar on a mixed trace of
  area/window/kNN/nearest specs (the heterogeneous grouping must not
  lose the sharing wins).
"""

import time

import pytest

from benchmarks.conftest import get_database, record_benchmark
from repro.workloads.experiments import (
    TRACE_STRATEGIES,
    make_mixed_trace,
    make_query_trace,
    run_trace_strategy,
)

DATA_SIZE = 10_000
DISTINCT = 20
REPEAT = 3
QUERY_SIZE = 0.01
#: min-of-N rounds for the assertion tests; high enough that scheduler
#: noise on a loaded box cannot erase the ~2.5x measured margin
ROUNDS = 7


@pytest.mark.parametrize("repeat", [1, REPEAT])
@pytest.mark.parametrize("strategy", TRACE_STRATEGIES)
def test_batch_throughput(benchmark, strategy, repeat):
    db = get_database(DATA_SIZE)
    trace = make_query_trace(QUERY_SIZE, DISTINCT, repeat, seed=2020)

    benchmark(run_trace_strategy, db, trace, strategy)

    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["requests"] = len(trace)
    benchmark.extra_info["distinct_regions"] = DISTINCT


def _best_of(run, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_batch_speedup_on_trace():
    """Batched throughput >= 1.5x the best single-query loop (the
    acceptance bar), with id-identical results."""
    db = get_database(DATA_SIZE)
    trace = make_query_trace(QUERY_SIZE, DISTINCT, REPEAT, seed=2020)

    loop_times = {}
    loop_ids = None
    for method in ("voronoi", "traditional"):
        loop_times[method], ids = _best_of(
            lambda m=method: run_trace_strategy(db, trace, f"loop/{m}")
        )
        if loop_ids is not None:
            assert ids == loop_ids
        loop_ids = ids

    batch_time, batch_ids = _best_of(
        lambda: run_trace_strategy(db, trace, "batch/auto")
    )

    assert batch_ids == loop_ids
    best_loop = min(loop_times.values())
    speedup = best_loop / batch_time
    record_benchmark(
        "batch_speedup_on_trace",
        speedup=round(speedup, 3),
        threshold=1.5,
        loop_ms=round(best_loop * 1e3, 3),
        batch_ms=round(batch_time * 1e3, 3),
        requests=len(trace),
        distinct_regions=DISTINCT,
        data_size=DATA_SIZE,
    )
    assert speedup >= 1.5, (
        f"batched throughput only {speedup:.2f}x the best single-query loop "
        f"(loop {best_loop * 1e3:.1f} ms vs batch {batch_time * 1e3:.1f} ms)"
    )


def test_heterogeneous_batch_speedup():
    """Heterogeneous acceptance bar: a mixed trace of area/window/kNN/
    nearest specs batched at >= 1.5x the single-query loop, ids equal."""
    db = get_database(DATA_SIZE)
    trace = make_mixed_trace(QUERY_SIZE, 32, REPEAT, seed=2020)
    assert {spec.kind for spec in trace} == {
        "area",
        "window",
        "knn",
        "nearest",
    }

    loop_time, loop_ids = _best_of(
        lambda: run_trace_strategy(db, trace, "loop/auto")
    )
    batch_time, batch_ids = _best_of(
        lambda: run_trace_strategy(db, trace, "batch/auto")
    )

    assert batch_ids == loop_ids
    speedup = loop_time / batch_time
    record_benchmark(
        "heterogeneous_batch_speedup",
        speedup=round(speedup, 3),
        threshold=1.5,
        loop_ms=round(loop_time * 1e3, 3),
        batch_ms=round(batch_time * 1e3, 3),
        requests=len(trace),
        data_size=DATA_SIZE,
    )
    assert speedup >= 1.5, (
        f"heterogeneous batch only {speedup:.2f}x the single-query loop "
        f"(loop {loop_time * 1e3:.1f} ms vs batch {batch_time * 1e3:.1f} ms)"
    )


def test_batch_no_slowdown_distinct():
    """On an all-distinct trace (no dedup, no cache) the engine must not
    be slower than the loop beyond measurement noise."""
    db = get_database(DATA_SIZE)
    trace = make_query_trace(QUERY_SIZE, DISTINCT, 1, seed=2020)

    for method in ("voronoi", "traditional"):
        loop_time, loop_ids = _best_of(
            lambda m=method: run_trace_strategy(db, trace, f"loop/{m}")
        )
        batch_time, batch_ids = _best_of(
            lambda m=method: run_trace_strategy(db, trace, f"batch/{m}")
        )
        assert batch_ids == loop_ids
        # generous slack: this guards against a real regression (batching
        # becoming systematically slower), not against scheduler noise
        assert batch_time <= loop_time * 1.35, (
            f"batch/{method} regressed: {batch_time * 1e3:.1f} ms vs loop "
            f"{loop_time * 1e3:.1f} ms"
        )
