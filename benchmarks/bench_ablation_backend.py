"""Ablation — pure Bowyer–Watson vs scipy (Qhull) Delaunay construction.

The Voronoi neighbour graph is a build-time structure (the paper treats it
as part of the database).  This bench quantifies the build-speed gap
between our from-scratch triangulator and the Qhull-backed one, and the
shape test re-asserts that the choice cannot affect queries: identical
neighbour sets (general position) and identical query results.
"""

import random

import pytest

from repro.delaunay.backends import PureDelaunayBackend, ScipyDelaunayBackend
from repro.core.database import SpatialDatabase
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points

BUILD_SIZES = (1_000, 5_000)


@pytest.mark.parametrize("n", BUILD_SIZES)
def test_build_pure(benchmark, n):
    points = uniform_points(n, seed=7)
    benchmark(PureDelaunayBackend, points)


@pytest.mark.parametrize("n", BUILD_SIZES)
def test_build_scipy(benchmark, n):
    points = uniform_points(n, seed=7)
    benchmark(ScipyDelaunayBackend, points)


def test_backends_identical_neighbors():
    points = uniform_points(2_000, seed=9)
    pure = PureDelaunayBackend(points)
    scipy_backend = ScipyDelaunayBackend(points)
    for i in range(len(points)):
        assert set(pure.neighbors(i)) == set(scipy_backend.neighbors(i))


def test_backends_identical_query_results():
    points = uniform_points(3_000, seed=11)
    pure_db = SpatialDatabase.from_points(points, backend_kind="pure").prepare()
    scipy_db = SpatialDatabase.from_points(points, backend_kind="scipy").prepare()
    rng = random.Random(13)
    for _ in range(10):
        area = random_query_polygon(0.05, rng=rng)
        assert (
            pure_db.area_query(area, "voronoi").ids
            == scipy_db.area_query(area, "voronoi").ids
        )
