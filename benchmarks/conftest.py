"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench in this directory regenerates one table or figure of the
paper's Section IV (see DESIGN.md's experiment index).  Databases are
built once per data size and cached for the whole benchmark session —
matching the paper, where the R-tree and the Voronoi diagram are
pre-existing database structures and only query time is measured.

Scale
-----
Default sizes are laptop-friendly (10k–100k points, the paper's lower
decade).  Set ``REPRO_BENCH_SCALE=paper`` to run the full 1E5–1E6 sweep of
the paper (slow: pure-Python experiments at 1E6 points).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Tuple

import numpy
import pytest

from repro.core.database import SpatialDatabase
from repro.geometry.polygon import Polygon
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"

#: Where the machine-readable per-PR benchmark record lands.  CI uploads
#: this file as a workflow artifact on every run, so the perf trajectory
#: of the acceptance speedups is recorded per commit rather than only
#: living in pass/fail asserts.
BENCH_JSON_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_pr.json")

#: Collected ``record_benchmark`` entries of this pytest session.
BENCH_RECORDS: Dict[str, Dict[str, object]] = {}


def record_benchmark(name: str, **values) -> None:
    """Record one benchmark's machine-readable outcome.

    The acceptance benchmarks call this with their measured speedup
    ratios and counts; everything recorded during the session is written
    to :data:`BENCH_JSON_PATH` at session end (see
    :func:`pytest_sessionfinish`).  Values must be JSON-serialisable.
    """
    BENCH_RECORDS[name] = values


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write the session's benchmark records as ``BENCH_pr.json``.

    Only writes when at least one benchmark recorded a result (unit-test
    sessions that happen to import this conftest stay silent).  The file
    is a single JSON object: run metadata plus one entry per recorded
    benchmark — the artifact CI uploads on every run.

    Note on module identity: pytest loads this conftest under its own
    module name while the bench files import ``benchmarks.conftest``
    directly, so two instances of :data:`BENCH_RECORDS` can exist in one
    process; the hook merges both before writing.
    """
    records = dict(BENCH_RECORDS)
    try:
        from benchmarks.conftest import BENCH_RECORDS as imported_records

        records.update(imported_records)
    except ImportError:  # pragma: no cover - benchmarks/ always importable
        pass
    if not records:
        return
    payload = {
        "schema": "repro-bench/1",
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        # The vectorized hot paths run on numpy; delta comparisons of
        # their speedups across runs are only meaningful when the numpy
        # build matches, so the record names it.
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "pytest_exit_status": int(exitstatus),
        "paper_scale": PAPER_SCALE,
        "counts": {"benchmarks_recorded": len(records)},
        "results": records,
    }
    with open(BENCH_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: Data sizes of the Table I / Figs. 4–5 sweep.
DATA_SIZES: Tuple[int, ...] = (
    tuple(100_000 * i for i in range(1, 11))
    if PAPER_SCALE
    else tuple(10_000 * i for i in range(1, 11))
)
#: Query sizes of the Table II / Figs. 6–7 sweep (the paper's exact values).
QUERY_SIZES: Tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
#: Fixed parameters of each sweep.
FIXED_QUERY_SIZE = 0.01
FIXED_DATA_SIZE = DATA_SIZES[-1] if not PAPER_SCALE else 100_000
#: Query polygons averaged per measurement (the paper uses 1000).
N_QUERY_AREAS = 100 if PAPER_SCALE else 30

_DB_CACHE: Dict[int, SpatialDatabase] = {}


def get_database(n: int) -> SpatialDatabase:
    """Session-cached database of ``n`` uniform points, fully prepared."""
    if n not in _DB_CACHE:
        db = SpatialDatabase.from_points(
            uniform_points(n, seed=2020), backend_kind="scipy"
        )
        _DB_CACHE[n] = db.prepare()
    return _DB_CACHE[n]


def get_query_areas(query_size: float, count: int = N_QUERY_AREAS) -> List[Polygon]:
    """The paper's query workload at one query size (deterministic)."""
    return QueryWorkload(
        query_size=query_size, seed=int(query_size * 1_000_000)
    ).areas(count)


def run_batch(db: SpatialDatabase, areas: List[Polygon], method: str):
    """Run one batch of area queries; returns the list of QueryResults."""
    return [db.area_query(area, method=method) for area in areas]


def summarize(results) -> Dict[str, float]:
    """Average the stats of a batch (the paper reports per-query means)."""
    n = len(results)
    return {
        "result_size": sum(r.stats.result_size for r in results) / n,
        "candidates": sum(r.stats.candidates for r in results) / n,
        "redundant": sum(r.stats.redundant_validations for r in results) / n,
        "time_ms": sum(r.stats.time_ms for r in results) / n,
    }


@pytest.fixture(scope="session")
def fixed_size_db() -> SpatialDatabase:
    """The query-size sweep's database (paper: 1E5 points)."""
    return get_database(FIXED_DATA_SIZE)
