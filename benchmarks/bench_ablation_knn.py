"""Ablation — kNN over the Voronoi graph vs best-first R-tree descent.

Beyond the paper: once the database maintains Voronoi adjacency for area
queries, kNN queries can ride the same structure (the VoR-tree idea the
paper cites as [8]).  This bench compares the two kNN implementations the
library ships and checks the structural advantage: the Voronoi expansion
evaluates O(k) candidates independent of n, while the R-tree walk pays the
tree descent.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.core.knn_query import voronoi_knn_query
from benchmarks.conftest import FIXED_DATA_SIZE, get_database

K_VALUES = (1, 10, 100)


def _queries(count=50):
    rng = random.Random(2021)
    return [Point(rng.random(), rng.random()) for _ in range(count)]


@pytest.mark.parametrize("k", K_VALUES)
def test_knn_voronoi(benchmark, k):
    db = get_database(FIXED_DATA_SIZE)
    queries = _queries()

    def run():
        return [
            voronoi_knn_query(db.index, db.backend, db.points, q, k)
            for q in queries
        ]

    results = benchmark(run)
    benchmark.extra_info["avg_candidates"] = sum(
        r.stats.candidates for r in results
    ) / len(results)


@pytest.mark.parametrize("k", K_VALUES)
def test_knn_rtree(benchmark, k):
    db = get_database(FIXED_DATA_SIZE)
    queries = _queries()

    benchmark(lambda: [db.index.k_nearest_neighbors(q, k) for q in queries])


def test_knn_equivalence_and_locality():
    db = get_database(FIXED_DATA_SIZE)
    for q in _queries(20):
        for k in K_VALUES:
            voronoi = voronoi_knn_query(db.index, db.backend, db.points, q, k)
            rtree = [i for _, i in db.index.k_nearest_neighbors(q, k)]
            assert voronoi.ids == rtree
            # Candidate locality: O(k) evaluations, nowhere near O(n).
            assert voronoi.stats.candidates <= 10 * k + 20
