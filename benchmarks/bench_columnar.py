"""Columnar store + vectorized hot paths — the acceptance speedups.

Not a paper artefact: this bench gates the columnar refactor — the
:class:`~repro.core.store.PointStore` coordinate columns, the bulk index
probes (:meth:`~repro.index.base.SpatialIndex.window_ids_array`), and
the vectorized refinement kernels (:mod:`repro.geometry.kernels`) —
against the scalar per-point fallbacks (``SpatialDatabase(
vectorized=False)``), which remain in the tree as the equivalence
oracle.

The workload is the paper's worst case for refinement cost: **large
concave polygons over 100k points**.  The MBR of an irregular star
polygon is mostly *outside* the polygon, so the traditional method's
filter step hands the refinement a candidate set dominated by redundant
validations — exactly where a per-candidate Python test hurts most and
one array kernel pays off.

Acceptance assertions, results recorded in ``BENCH_pr.json`` and
``docs/BENCHMARKS.md``:

* ``test_columnar_refinement_speedup`` — the vectorized traditional
  path answers the refinement-heavy trace at least **2x** faster than
  the scalar path, with byte-identical ids.
* ``test_columnar_voronoi_speedup`` — the wave-vectorized Algorithm 1
  (kernel refinement per BFS generation + CSR neighbour gathers) beats
  the scalar queue on the same trace (>= 1.3x), ids identical.  The
  win is smaller by design: Algorithm 1's candidate set is already
  output-proportional, so there is less redundant work to vectorize
  away — the same asymmetry the paper's Figs. 4-7 measure.

Both tests time the two databases *interleaved* (round per strategy,
min of rounds) so load spikes hit both sides equally.
"""

import time
from typing import List

import pytest

from benchmarks.conftest import record_benchmark
from repro.core.database import SpatialDatabase
from repro.query.spec import AreaQuery
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload

DATA_SIZE = 100_000
#: large concave areas: MBR fraction 0.16 of the unit square
QUERY_SIZE = 0.16
#: star polygons with this many vertices (edge count = kernel width)
N_VERTICES = 20
TRACE_LEN = 8
ROUNDS = 3

_DB_PAIR = {}


@pytest.fixture(scope="module", autouse=True)
def _release_databases():
    """Drop the two 100k-point databases once this module finishes.

    They (plus their indexes and Voronoi backends) are the biggest
    allocations of the whole bench session; keeping them resident would
    add cache/allocator pressure to every bench that runs after this
    file in ``make bench-smoke``.
    """
    yield
    _DB_PAIR.clear()


def _database_pair():
    """The vectorized database and its scalar twin (built once)."""
    if not _DB_PAIR:
        points = uniform_points(DATA_SIZE, seed=2020)
        _DB_PAIR["vectorized"] = SpatialDatabase.from_points(
            points, backend_kind="scipy"
        ).prepare()
        _DB_PAIR["scalar"] = SpatialDatabase.from_points(
            points, backend_kind="scipy", vectorized=False
        ).prepare()
    return _DB_PAIR["vectorized"], _DB_PAIR["scalar"]


def _trace():
    """The refinement-heavy trace: large irregular star polygons."""
    return QueryWorkload(
        query_size=QUERY_SIZE, n_vertices=N_VERTICES, seed=77
    ).areas(TRACE_LEN)


def _run(db: SpatialDatabase, areas, method: str):
    """One pass over the trace; returns (elapsed seconds, id lists)."""
    started = time.perf_counter()
    ids: List[List[int]] = [
        db.query(AreaQuery(area, method=method)).ids() for area in areas
    ]
    return time.perf_counter() - started, ids


def _interleaved_speedup(method: str):
    """min-of-rounds scalar/vectorized times, interleaved, ids checked."""
    db_vec, db_scalar = _database_pair()
    areas = _trace()
    _run(db_vec, areas, method)  # warm caches/kernels on both sides
    _run(db_scalar, areas, method)
    best = {"vectorized": float("inf"), "scalar": float("inf")}
    ids = {}
    for _ in range(ROUNDS):
        for label, db in (("vectorized", db_vec), ("scalar", db_scalar)):
            elapsed, ids[label] = _run(db, areas, method)
            best[label] = min(best[label], elapsed)
    assert ids["vectorized"] == ids["scalar"], (
        "vectorized and scalar paths disagree — the equivalence "
        "contract is broken"
    )
    return best["scalar"], best["vectorized"]


def test_columnar_refinement_speedup():
    """Vectorized filter-refine >= 2x the scalar path on the
    refinement-heavy trace (the acceptance bar), ids byte-identical."""
    scalar_s, vector_s = _interleaved_speedup("traditional")
    speedup = scalar_s / vector_s
    record_benchmark(
        "columnar_refinement_speedup",
        speedup=round(speedup, 3),
        threshold=2.0,
        scalar_ms=round(scalar_s * 1e3, 3),
        vectorized_ms=round(vector_s * 1e3, 3),
        data_size=DATA_SIZE,
        query_size=QUERY_SIZE,
        n_vertices=N_VERTICES,
        requests=TRACE_LEN,
    )
    assert speedup >= 2.0, (
        f"columnar refinement only {speedup:.2f}x the scalar path "
        f"(scalar {scalar_s * 1e3:.1f} ms vs vectorized "
        f"{vector_s * 1e3:.1f} ms)"
    )


def test_columnar_voronoi_speedup():
    """Wave-vectorized Algorithm 1 >= 1.3x the scalar queue on the same
    trace, ids byte-identical."""
    scalar_s, vector_s = _interleaved_speedup("voronoi")
    speedup = scalar_s / vector_s
    record_benchmark(
        "columnar_voronoi_speedup",
        speedup=round(speedup, 3),
        threshold=1.3,
        scalar_ms=round(scalar_s * 1e3, 3),
        vectorized_ms=round(vector_s * 1e3, 3),
        data_size=DATA_SIZE,
        query_size=QUERY_SIZE,
        n_vertices=N_VERTICES,
        requests=TRACE_LEN,
    )
    assert speedup >= 1.3, (
        f"wave-vectorized voronoi only {speedup:.2f}x the scalar queue "
        f"(scalar {scalar_s * 1e3:.1f} ms vs vectorized "
        f"{vector_s * 1e3:.1f} ms)"
    )
