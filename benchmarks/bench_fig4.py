"""Figure 4 — **time cost vs data size** (query size 1 %).

Paper reference: both curves grow roughly linearly in data size; the
Voronoi curve stays below the traditional one with a widening gap (time
saving 10.6 % at 1E5 growing to 31.3 % at 1E6).

The benchmarks time each method across the sweep (these are the plotted
points of the figure); the shape test asserts monotone growth and that the
Voronoi curve does not fall behind by more than a small tolerance at any
point — absolute crossover positions depend on per-validation cost, which
in our all-in-memory build is far cheaper than the paper's setup (see
EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import (
    DATA_SIZES,
    FIXED_QUERY_SIZE,
    get_database,
    get_query_areas,
    run_batch,
    summarize,
)


@pytest.mark.parametrize("n", DATA_SIZES)
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_fig4_time_series(benchmark, n, method):
    """One plotted point of Fig. 4: mean query time at one data size."""
    db = get_database(n)
    areas = get_query_areas(FIXED_QUERY_SIZE, count=5)

    results = benchmark(run_batch, db, areas, method)

    benchmark.extra_info["data_size"] = n
    benchmark.extra_info["avg_time_ms"] = summarize(results)["time_ms"]


def test_fig4_shape():
    """The figure's qualitative content: linear-ish growth, Voronoi below.

    In our all-in-memory build, per-candidate validation is ~15x cheaper
    than in the paper's setup, which moves the time crossover to roughly
    n = 5E4 at 1 % query size.  The paper's sweep (1E5–1E6) sits entirely
    above that crossover — and so does the dense end of the default
    1E4–1E5 sweep, which is what we assert here.  EXPERIMENTS.md discusses
    the crossover in detail.
    """
    from benchmarks.conftest import PAPER_SCALE

    series = {"voronoi": [], "traditional": []}
    for n in DATA_SIZES:
        db = get_database(n)
        areas = get_query_areas(FIXED_QUERY_SIZE)
        for method in series:
            series[method].append(
                summarize(run_batch(db, areas, method))["time_ms"]
            )

    for method, times in series.items():
        # Growth: the largest dataset must cost clearly more than the
        # smallest (the curves rise).
        assert times[-1] > times[0] * 2, method

    # The gap must favour Voronoi at the dense end (n = 1E5 by default:
    # the paper's first cell, where it reports a 10.6 % saving).
    assert series["voronoi"][-1] < series["traditional"][-1]

    if PAPER_SCALE:
        # Within the paper's own sweep, the Voronoi curve wins everywhere.
        for n, v, t in zip(
            DATA_SIZES, series["voronoi"], series["traditional"]
        ):
            assert v < t, f"n={n}"
