"""Figure 7 — **redundant validations vs query size** (data size fixed).

Paper reference: traditional redundancy grows linearly with query size
(area-difference effect); Voronoi redundancy grows like sqrt(query size)
(perimeter effect).  Candidate savings grow from 35.1 % to 44.9 %.
"""

import math

import pytest

from benchmarks.conftest import (
    QUERY_SIZES,
    get_query_areas,
    run_batch,
    summarize,
)


@pytest.mark.parametrize("query_size", (QUERY_SIZES[0], QUERY_SIZES[-1]))
@pytest.mark.parametrize("method", ["voronoi", "traditional"])
def test_fig7_redundancy_endpoints(benchmark, fixed_size_db, query_size, method):
    """Benchmark the sweep endpoints; extra_info carries the plotted value."""
    areas = get_query_areas(query_size, count=10)

    results = benchmark(run_batch, fixed_size_db, areas, method)

    benchmark.extra_info["query_size"] = query_size
    benchmark.extra_info["avg_redundant"] = summarize(results)["redundant"]


def test_fig7_shape(fixed_size_db):
    """Linear vs sqrt growth in query size."""
    series = {"voronoi": [], "traditional": []}
    for query_size in QUERY_SIZES:
        areas = get_query_areas(query_size)
        for method in series:
            series[method].append(
                summarize(run_batch(fixed_size_db, areas, method))[
                    "redundant"
                ]
            )

    size_ratio = QUERY_SIZES[-1] / QUERY_SIZES[0]  # 32

    traditional_growth = series["traditional"][-1] / series["traditional"][0]
    assert traditional_growth == pytest.approx(size_ratio, rel=0.35)

    voronoi_growth = series["voronoi"][-1] / series["voronoi"][0]
    # Perimeter scaling: sqrt(32) ≈ 5.7, far below 32.
    assert voronoi_growth == pytest.approx(math.sqrt(size_ratio), rel=0.6)
    assert voronoi_growth < traditional_growth * 0.5

    for v, t in zip(series["voronoi"], series["traditional"]):
        assert v < t
