"""Persistence for spatial databases and workloads.

* :func:`~repro.io.persist.save_database` /
  :func:`~repro.io.persist.load_database` — store a
  :class:`~repro.core.database.SpatialDatabase` on disk (numpy ``.npz``
  payload + embedded config) and restore it with its access structures
  rebuilt.
* :func:`~repro.io.persist.save_points` /
  :func:`~repro.io.persist.load_points` — bare point-set round-trips for
  exchanging workloads between runs.
"""

from repro.io.persist import (
    load_database,
    load_points,
    save_database,
    save_points,
)

__all__ = [
    "save_database",
    "load_database",
    "save_points",
    "load_points",
]
