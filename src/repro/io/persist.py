"""Disk round-trips for point sets and databases.

Format: a single numpy ``.npz`` archive holding

* ``xy`` — an ``(n, 2)`` float64 array, row id = array row (so ids survive
  the round-trip exactly),
* ``deleted`` — an int64 array of tombstoned row ids (present only when
  the database has deletions; their coordinates stay in ``xy`` so that
  row ids — and the Voronoi superset graph — survive exactly), and
* ``config`` — a JSON-encoded scalar with the database configuration
  (index kind, backend kind, format version).

Design choice: we persist *data + configuration*, not the index/diagram
byte layout.  Both access structures rebuild deterministically from the
data (STR bulk load; Delaunay uniqueness up to degeneracies), rebuilds are
fast relative to I/O at library scale, and the format stays readable by
plain numpy — the same trade most point-data systems make for their bulk
snapshots.
"""

from __future__ import annotations

import json
import os
from typing import List

import numpy as np

from repro.geometry.point import Point
from repro.core.database import SpatialDatabase

_FORMAT_VERSION = 1


def _written_path(path: str | os.PathLike) -> str:
    """The path numpy actually writes: ``.npz`` appended if missing.

    ``np.savez_compressed`` silently renames ``snapshot`` to
    ``snapshot.npz``; save functions return this resolved path so
    callers (the ``serve --load`` CLI round-trip) can hand it straight
    back to the loaders.
    """
    text = os.fspath(path)
    return text if text.endswith(".npz") else text + ".npz"


def _resolve_path(path: str | os.PathLike) -> str:
    """Find the file a save function produced for ``path``.

    Accepts the exact file or the extensionless name the caller passed
    to ``save_*`` (whose ``.npz`` numpy appended) — previously
    ``load_database(p)`` failed with ``FileNotFoundError`` after a
    successful ``save_database(p)`` whenever ``p`` lacked the suffix.
    """
    text = os.fspath(path)
    if os.path.exists(text):
        return text
    fallback = _written_path(text)
    if fallback != text and os.path.exists(fallback):
        return fallback
    return text  # np.load reports the FileNotFoundError with this name


def save_points(path: str | os.PathLike, points: List[Point]) -> str:
    """Write a bare point list to ``path`` (numpy ``.npz``).

    Returns the path actually written (``.npz`` appended if missing).
    """
    xy = np.asarray([(p.x, p.y) for p in points], dtype=np.float64).reshape(
        len(points), 2
    )
    np.savez_compressed(path, xy=xy)
    return _written_path(path)


def load_points(path: str | os.PathLike) -> List[Point]:
    """Read a point list written by :func:`save_points` (or a database file).

    ``path`` may be the exact file or the extensionless name passed to
    the save function.
    """
    with np.load(_resolve_path(path), allow_pickle=False) as archive:
        xy = archive["xy"]
    return [Point(float(x), float(y)) for x, y in xy]


def save_database(path: str | os.PathLike, db: SpatialDatabase) -> str:
    """Write ``db``'s points and configuration to ``path``.

    The payload comes straight off the database's columnar
    :class:`~repro.core.store.PointStore` (one numpy stack of the
    ``xs``/``ys`` columns — no per-point Python conversion; the loading
    side mirrors this through :meth:`SpatialDatabase.from_arrays
    <repro.core.database.SpatialDatabase.from_arrays>`).  Returns the
    path actually written (numpy appends the ``.npz`` extension if
    missing), so callers can pass it straight to :func:`load_database` —
    or to ``python -m repro serve --load``.
    """
    xy = db.store.as_xy()
    config = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "index_kind": db._index_kind,
            "backend_kind": db._backend_kind,
            "count": len(db.store),
        }
    )
    payload = {"xy": xy, "config": np.asarray(config)}
    deleted = db.store.deleted_rows
    if deleted:
        # Tombstoned rows keep their xy slot (ids are positional) and
        # are re-deleted on load; deletion *versions* are not persisted
        # — snapshots are an MVCC-session concept, not a disk one.
        payload["deleted"] = np.asarray(sorted(deleted), dtype=np.int64)
    np.savez_compressed(path, **payload)
    return _written_path(path)


def load_database(
    path: str | os.PathLike, *, prepare: bool = False
) -> SpatialDatabase:
    """Restore a database written by :func:`save_database`.

    Row ids are preserved exactly (row order is the id order), and
    tombstoned rows are re-deleted after the bulk load — the live point
    set, the id space, and the Voronoi superset graph all round-trip.
    The
    persisted columns are handed to the
    :class:`~repro.core.store.PointStore` as arrays — ``repro serve
    --load`` skips per-point conversion entirely.  ``path`` may be the
    exact file or the extensionless name the saver was given.  Pass
    ``prepare=True`` to rebuild the Voronoi backend eagerly; by default
    it stays lazy, like a freshly constructed database.
    """
    with np.load(_resolve_path(path), allow_pickle=False) as archive:
        xy = archive["xy"]
        config = json.loads(str(archive["config"]))
        deleted = (
            archive["deleted"].tolist() if "deleted" in archive else []
        )
    if config.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported database file version {config.get('version')!r}"
        )
    if int(config["count"]) != len(xy):
        raise ValueError(
            f"corrupt database file: header count {config['count']} != "
            f"payload rows {len(xy)}"
        )
    xy = xy.reshape(len(xy), 2)
    db = SpatialDatabase.from_arrays(
        xy[:, 0],
        xy[:, 1],
        index_kind=config["index_kind"],
        backend_kind=config["backend_kind"],
    )
    for row_id in deleted:  # replay tombstones; ids stay positional
        db.delete(int(row_id))
    if prepare:
        db.prepare()
    return db
