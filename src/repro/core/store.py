"""Columnar point storage: the database's point table as numpy columns.

:class:`PointStore` keeps the coordinates of every stored row in two
contiguous ``float64`` arrays (``xs``/``ys``, row id = array index) with
amortized-O(1) append and bulk extension.  Everything *above* the store
speaks arrays on its hot paths — the vectorized refinement kernels
(:mod:`repro.geometry.kernels`), the bulk index probes
(:meth:`repro.index.base.SpatialIndex.window_ids_array`), and the batch
engine's shared window frontiers all gather coordinates straight from
these columns by row id — while :class:`~repro.geometry.point.Point`
objects are materialized only at API edges (:meth:`PointStore.point`,
:meth:`PointStore.view`).

Design rules:

* **Append-only columns.**  Row ids are stable forever — deletes are
  *logical* (a tombstone entry in :attr:`deleted_rows`), never physical,
  so the lazily-materialized :class:`PointsView` never invalidates —
  already-built ``Point`` objects stay valid across any number of later
  inserts and deletes.
* **Version stamps.**  Every mutation (append *and* delete) bumps
  :attr:`PointStore.version`; the engine's result cache stamps entries
  with it, so mutations implicitly invalidate cached query results.
* **Zero-copy edges.**  :attr:`xs`/:attr:`ys` are read-only views of the
  filled prefix (no copy); :meth:`as_xy` hands snapshots
  (:mod:`repro.io.persist`) an ``(n, 2)`` array built with one numpy
  stack — no per-point Python conversion in either direction
  (:meth:`extend_array` is the loading mirror).
* **MVCC snapshots.**  :meth:`snapshot` captures an O(1)
  :class:`StoreSnapshot` — the admission-time row-id horizon plus a
  visibility predicate over the (append-only) tombstone map — so lazy
  readers such as the server's chunked streams keep seeing exactly the
  version that was current when they started, while writers append and
  delete underneath them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence, Tuple, Union, overload

import numpy as np

from repro.geometry.point import Point

#: Initial column capacity of a store that grows from empty.
_INITIAL_CAPACITY = 64


class PointStore:
    """Contiguous ``float64`` coordinate columns with stable row ids.

    The single source of truth for the database's point table.  Rows are
    appended (never physically removed), so a row id handed out once
    stays valid for the lifetime of the store; :meth:`delete` only marks
    a row as a tombstone, keeping its coordinates addressable for the
    Delaunay graph (deleted rows stay as transit vertices) and for any
    snapshot readers admitted before the delete.
    """

    __slots__ = (
        "_xs",
        "_ys",
        "_dead",
        "_size",
        "_version",
        "_deleted_at",
        "_n_deleted",
        "_materialized",
        "_view",
    )

    def __init__(self) -> None:
        self._xs = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._ys = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._dead = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self._size = 0
        self._version = 0
        #: append-only tombstone map: row id -> version at deletion
        self._deleted_at: Dict[int, int] = {}
        self._n_deleted = 0
        #: lazily-built Point objects for rows [0, len(_materialized))
        self._materialized: List[Point] = []
        self._view = PointsView(self)

    # -- capacity ----------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        """Grow the columns geometrically to fit ``extra`` more rows."""
        needed = self._size + extra
        capacity = self._xs.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_xs", "_ys"):
            column = getattr(self, name)
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._size] = column[: self._size]
            setattr(self, name, grown)
        dead = np.zeros(capacity, dtype=bool)
        dead[: self._size] = self._dead[: self._size]
        self._dead = dead

    # -- mutation ----------------------------------------------------------

    def append(self, x: float, y: float) -> int:
        """Add one row; returns its (stable) row id.

        Raises :class:`ValueError` on non-finite coordinates *before*
        any state changes — a rejected append leaves the store (size,
        version, columns) bit-identical.
        """
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ValueError(f"non-finite coordinate ({x!r}, {y!r})")
        self._reserve(1)
        row_id = self._size
        self._xs[row_id] = x
        self._ys[row_id] = y
        self._size = row_id + 1
        self._version += 1
        return row_id

    def extend_points(self, points: Sequence[Point]) -> range:
        """Add many :class:`Point` rows; returns their row-id range.

        Validation is atomic: every coordinate is checked finite before
        the first row is committed, so a rejected batch changes nothing.
        """
        count = len(points)
        start = self._size
        if count == 0:
            return range(start, start)
        new_xs = np.fromiter(
            (p.x for p in points), dtype=np.float64, count=count
        )
        new_ys = np.fromiter(
            (p.y for p in points), dtype=np.float64, count=count
        )
        if not (np.isfinite(new_xs).all() and np.isfinite(new_ys).all()):
            raise ValueError("non-finite coordinate in extend batch")
        self._reserve(count)
        self._xs[start : start + count] = new_xs
        self._ys[start : start + count] = new_ys
        self._size = start + count
        self._version += 1
        return range(start, self._size)

    def extend_array(
        self,
        xs: "np.ndarray",
        ys: "np.ndarray",
    ) -> range:
        """Add many rows from coordinate arrays (no Python-level loop).

        The bulk-loading mirror of :meth:`as_xy`: snapshot restores
        (``repro serve --load``) hand the persisted columns straight in,
        skipping per-point ``Point`` construction entirely.
        """
        xs = np.asarray(xs, dtype=np.float64).reshape(-1)
        ys = np.asarray(ys, dtype=np.float64).reshape(-1)
        if xs.shape[0] != ys.shape[0]:
            raise ValueError(
                f"coordinate columns disagree: {xs.shape[0]} xs "
                f"vs {ys.shape[0]} ys"
            )
        count = xs.shape[0]
        start = self._size
        if count == 0:
            return range(start, start)
        if not (np.isfinite(xs).all() and np.isfinite(ys).all()):
            raise ValueError("non-finite coordinate in extend batch")
        self._reserve(count)
        self._xs[start : start + count] = xs
        self._ys[start : start + count] = ys
        self._size = start + count
        self._version += 1
        return range(start, self._size)

    def delete(self, row_id: int) -> None:
        """Tombstone one row (logical delete; the row id stays valid).

        The coordinates remain addressable — snapshot readers admitted
        before the delete still see the row, and the Delaunay graph
        keeps it as a transit vertex — but every live read path filters
        it out.  Raises :class:`IndexError` for an out-of-range id and
        :class:`ValueError` for a row that is already deleted; either
        way a rejected delete leaves the store untouched.
        """
        if not 0 <= row_id < self._size:
            raise IndexError(f"row id {row_id} out of range")
        if row_id in self._deleted_at:
            raise ValueError(f"row {row_id} is already deleted")
        self._version += 1
        self._deleted_at[row_id] = self._version
        self._dead[row_id] = True
        self._n_deleted += 1

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def version(self) -> int:
        """Monotonic data version, bumped by every mutation."""
        return self._version

    @property
    def live_count(self) -> int:
        """Rows that are not tombstoned (``len(store) - deleted_count``)."""
        return self._size - self._n_deleted

    @property
    def deleted_count(self) -> int:
        """Number of tombstoned rows."""
        return self._n_deleted

    @property
    def deleted_rows(self) -> Dict[int, int]:
        """The live tombstone map (row id -> version at deletion).

        The store owns the dict — callers must treat it as read-only.
        It is append-only (a tombstone is never cleared or rewritten),
        which is what makes O(1) snapshots sound: a
        :class:`StoreSnapshot` shares this mapping and filters it by its
        captured version instead of copying it.
        """
        return self._deleted_at

    def is_deleted(self, row_id: int) -> bool:
        """Whether ``row_id`` is tombstoned (out-of-range ids are not)."""
        return row_id in self._deleted_at

    @property
    def dead_mask(self) -> "np.ndarray":
        """Read-only boolean column: ``True`` where the row is deleted."""
        mask = self._dead[: self._size]
        mask.flags.writeable = False
        return mask

    def snapshot(self) -> "StoreSnapshot":
        """An O(1) MVCC snapshot of the store at its current version."""
        return StoreSnapshot(self)

    @property
    def xs(self) -> "np.ndarray":
        """Read-only ``float64`` view of the x column (row id = index)."""
        view = self._xs[: self._size]
        view.flags.writeable = False
        return view

    @property
    def ys(self) -> "np.ndarray":
        """Read-only ``float64`` view of the y column (row id = index)."""
        view = self._ys[: self._size]
        view.flags.writeable = False
        return view

    def as_xy(self) -> "np.ndarray":
        """The filled table as a fresh ``(n, 2)`` float64 array.

        One numpy stack, no per-point conversion — the snapshot writers
        in :mod:`repro.io.persist` persist exactly this.
        """
        return np.stack(
            (self._xs[: self._size], self._ys[: self._size]), axis=1
        )

    def coords(self, row_id: int) -> Tuple[float, float]:
        """The raw ``(x, y)`` floats of one row."""
        if row_id < 0:
            # Normalise against the *filled* size, not the capacity
            # array (the columns over-allocate past the last row).
            row_id += self._size
        if not 0 <= row_id < self._size:
            raise IndexError(f"row id {row_id} out of range")
        return (float(self._xs[row_id]), float(self._ys[row_id]))

    # -- materializing views ------------------------------------------------

    def _materialize(self, upto: int | None = None) -> List[Point]:
        """Top the Point cache up to row ``upto`` (default: everything).

        The cache is a contiguous prefix (append-only store, so built
        prefixes never invalidate); single-row lookups extend it only as
        far as the requested row instead of paying a full-table
        materialization pass on first touch.
        """
        target = self._size if upto is None else min(upto, self._size)
        built = len(self._materialized)
        if built < target:
            xs = self._xs
            ys = self._ys
            self._materialized.extend(
                Point(float(xs[i]), float(ys[i]))
                for i in range(built, target)
            )
        return self._materialized

    def point(self, row_id: int) -> Point:
        """The row as a :class:`Point` (materialized once, then cached)."""
        return self._view[row_id]

    def rows(self) -> List[Point]:
        """The materialized ``Point`` cache list itself (row id = index).

        The hot-loop sibling of :meth:`view`: plain list indexing beats
        the view's bounds logic in tight per-row loops (the engine's
        seed walks, the scalar BFS fallback), so internal consumers take
        this.  The store owns the list — callers must treat it as
        read-only (it is topped up in place by later appends); anything
        user-facing goes through the immutable :class:`PointsView`.
        """
        return self._materialize()

    def view(self) -> "PointsView":
        """The store's immutable, lazily-materializing sequence view.

        This is what :attr:`SpatialDatabase.points
        <repro.core.database.SpatialDatabase.points>` returns: a live
        read-only window onto the point table.  It supports indexing,
        slicing, iteration, ``len`` and sequence equality, but offers no
        mutators — callers cannot desynchronise the table from the
        spatial index by poking at it.
        """
        return self._view


class StoreSnapshot:
    """An immutable O(1) view of a :class:`PointStore` version.

    Captures the row-id horizon (``size``), the data ``version``, and
    read-only coordinate views at snapshot time, and *shares* the
    store's append-only tombstone map instead of copying it.  A row is
    :meth:`visible` when it existed at snapshot time and was not yet
    deleted then — deletes that happen after capture carry a larger
    version stamp and are ignored, appends land beyond ``size``.  The
    coordinate views are safe against later writers because the store's
    columns are append-only: rows below ``size`` are never rewritten,
    and a capacity reallocation leaves this snapshot holding the old
    buffer.
    """

    __slots__ = ("version", "size", "xs", "ys", "_deleted_at", "_live")

    def __init__(self, store: PointStore) -> None:
        #: store version at capture time
        self.version = store.version
        #: row-id horizon: rows ``>= size`` were appended after capture
        self.size = len(store)
        #: read-only x column as of capture (length ``size``)
        self.xs = store.xs
        #: read-only y column as of capture (length ``size``)
        self.ys = store.ys
        self._deleted_at = store.deleted_rows
        self._live: Union[int, None] = None

    def visible(self, row_id: int) -> bool:
        """Whether ``row_id`` was live at the snapshot's version."""
        if not 0 <= row_id < self.size:
            return False
        when = self._deleted_at.get(row_id)
        return when is None or when > self.version

    @property
    def live_count(self) -> int:
        """Rows visible in this snapshot (computed once, then cached)."""
        if self._live is None:
            self._live = self.size - sum(
                1
                for row, when in self._deleted_at.items()
                if row < self.size and when <= self.version
            )
        return self._live

    def __repr__(self) -> str:
        return f"StoreSnapshot(version={self.version}, size={self.size})"


class PointsView(Sequence):
    """Immutable sequence view over a :class:`PointStore`.

    ``Point`` objects are built lazily on first access and cached — the
    store is append-only, so cached prefixes never invalidate.  The view
    is *live*: rows appended to the store become visible immediately,
    but there is no way to mutate the underlying table through it.
    """

    __slots__ = ("_store",)

    def __init__(self, store: PointStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store)

    @overload
    def __getitem__(self, item: int) -> Point: ...

    @overload
    def __getitem__(self, item: slice) -> List[Point]: ...

    def __getitem__(self, item: Union[int, slice]):
        """Row lookup (negative indices and slices as for a list)."""
        size = len(self._store)
        if isinstance(item, slice):
            start, stop, step = item.indices(size)
            # Positive-step slices only need the prefix through `stop`;
            # negative steps start from their highest touched row.
            upto = stop if step > 0 else start + 1
            materialized = self._store._materialize(upto)
            return materialized[item]
        row = item
        if row < 0:
            row += size
        if not 0 <= row < size:
            raise IndexError(f"row id {item} out of range for {size} rows")
        materialized = self._store._materialized
        if row >= len(materialized):
            materialized = self._store._materialize(row + 1)
        return materialized[row]

    def __iter__(self) -> Iterator[Point]:
        return iter(self._store._materialize())

    def __eq__(self, other: object) -> bool:
        """Element-wise equality against any sequence of points."""
        if isinstance(other, PointsView) and other._store is self._store:
            return True
        if not isinstance(other, (PointsView, list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(a == b for a, b in zip(self, other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable-underneath (live view): unhashable, like list

    def __repr__(self) -> str:
        return f"PointsView({len(self)} rows)"
