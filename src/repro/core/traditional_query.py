"""Traditional filter–refine area query (the paper's baseline, Fig. 1a).

Two steps:

1. **Filter** — a window query on the spatial index with the query
   polygon's MBR.  Cheap (no exact geometry), but returns every point in
   the MBR, so for an irregular polygon most of the candidates are outside
   the polygon itself.
2. **Refine** — an exact point-in-polygon test on each candidate.  This is
   the expensive stage the paper targets: every candidate outside the
   polygon is a *redundant validation*.

The expected redundancy is ``data_size * (MBR_area - polygon_area)`` /
``space_area`` — proportional to the *area difference*, which is what the
experiments confirm (Figs. 5 and 7).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.region import QueryRegion
from repro.index.base import SpatialIndex
from repro.core.stats import QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import PointStore


def traditional_area_query(
    index: SpatialIndex,
    area: QueryRegion,
    *,
    contains: Callable[[QueryRegion, Point], bool] | None = None,
    store: Optional["PointStore"] = None,
) -> QueryResult:
    """Run the filter–refine area query on ``index``.

    Parameters
    ----------
    index:
        Any :class:`~repro.index.base.SpatialIndex` holding the database
        points (the paper uses an R-tree).
    area:
        The query region ``A`` (any :class:`QueryRegion`, e.g. a
        :class:`~repro.geometry.polygon.Polygon` or
        :class:`~repro.geometry.circle.Circle`).
    contains:
        Override for the refinement predicate, used by tests to inject
        failures; defaults to the exact :meth:`Polygon.contains_point`.
        Forces the scalar path (the override is a per-point callable).
    store:
        The database's columnar :class:`~repro.core.store.PointStore`.
        When given (and the region provides a vectorized
        ``contains_many``), the filter runs as a bulk id probe
        (:meth:`~repro.index.base.SpatialIndex.window_ids_array`) and
        the refinement as one array kernel over the store's coordinate
        columns — the index's item ids must be the store's row ids, as
        they are inside :class:`~repro.core.database.SpatialDatabase`.
        Result ids are byte-identical to the scalar path (the kernels
        certify every edge decision or re-answer the candidate with the
        scalar test itself).

    Returns
    -------
    QueryResult
        Result ids (ascending) and a :class:`QueryStats` with
        ``method="traditional"``.
    """
    contains_many = (
        getattr(area, "contains_many", None)
        if store is not None and contains is None
        else None
    )
    if contains_many is not None:
        return _traditional_vectorized(index, area, store, contains_many)
    if contains is not None:
        def refine(p: Point) -> bool:
            return contains(area, p)
    else:
        refine = area.contains_point
    stats = QueryStats(method="traditional")
    nodes_before = index.stats.node_accesses

    started = time.perf_counter()
    candidates = index.window_query(area.mbr)
    stats.candidates = len(candidates)

    results: List[int] = []
    for point, item_id in candidates:
        stats.validations += 1
        if refine(point):
            results.append(item_id)
        else:
            stats.redundant_validations += 1
    stats.time_ms = (time.perf_counter() - started) * 1000.0

    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(results)
    results.sort()
    return QueryResult(ids=results, stats=stats)


def _traditional_vectorized(
    index: SpatialIndex,
    area: QueryRegion,
    store: "PointStore",
    contains_many,
) -> QueryResult:
    """Filter–refine over row-id arrays: bulk probe + one refine kernel."""
    import numpy as np

    stats = QueryStats(method="traditional")
    nodes_before = index.stats.node_accesses

    started = time.perf_counter()
    candidate_ids = index.window_ids_array(area.mbr)
    count = int(candidate_ids.shape[0])
    stats.candidates = count
    stats.validations = count
    if count:
        xs = store.xs
        ys = store.ys
        mask = contains_many(xs[candidate_ids], ys[candidate_ids])
        results = np.sort(candidate_ids[mask]).tolist()
        stats.redundant_validations = count - len(results)
    else:
        results = []
    stats.time_ms = (time.perf_counter() - started) * 1000.0

    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(results)
    return QueryResult(ids=results, stats=stats)


def traditional_area_query_points(
    points: Sequence[Tuple[Point, int]], area: Polygon
) -> QueryResult:
    """Index-free variant: linear scan + refine.

    The degenerate baseline (no filter step at all); used in tests as the
    simplest possible oracle and in the ablation bench as the "no index"
    row.
    """
    stats = QueryStats(method="scan")
    started = time.perf_counter()
    results: List[int] = []
    mbr = area.mbr
    for point, item_id in points:
        if not mbr.contains_point(point):
            continue
        stats.candidates += 1
        stats.validations += 1
        if area.contains_point(point):
            results.append(item_id)
        else:
            stats.redundant_validations += 1
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.result_size = len(results)
    results.sort()
    return QueryResult(ids=results, stats=stats)
