"""Traditional filter–refine area query (the paper's baseline, Fig. 1a).

Two steps:

1. **Filter** — a window query on the spatial index with the query
   polygon's MBR.  Cheap (no exact geometry), but returns every point in
   the MBR, so for an irregular polygon most of the candidates are outside
   the polygon itself.
2. **Refine** — an exact point-in-polygon test on each candidate.  This is
   the expensive stage the paper targets: every candidate outside the
   polygon is a *redundant validation*.

The expected redundancy is ``data_size * (MBR_area - polygon_area)`` /
``space_area`` — proportional to the *area difference*, which is what the
experiments confirm (Figs. 5 and 7).
"""

from __future__ import annotations

import time
from typing import Callable, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.region import QueryRegion
from repro.index.base import SpatialIndex
from repro.core.stats import QueryResult, QueryStats


def traditional_area_query(
    index: SpatialIndex,
    area: QueryRegion,
    *,
    contains: Callable[[QueryRegion, Point], bool] | None = None,
) -> QueryResult:
    """Run the filter–refine area query on ``index``.

    Parameters
    ----------
    index:
        Any :class:`~repro.index.base.SpatialIndex` holding the database
        points (the paper uses an R-tree).
    area:
        The query region ``A`` (any :class:`QueryRegion`, e.g. a
        :class:`~repro.geometry.polygon.Polygon` or
        :class:`~repro.geometry.circle.Circle`).
    contains:
        Override for the refinement predicate, used by tests to inject
        failures; defaults to the exact :meth:`Polygon.contains_point`.

    Returns
    -------
    QueryResult
        Result ids (ascending) and a :class:`QueryStats` with
        ``method="traditional"``.
    """
    if contains is not None:
        def refine(p: Point) -> bool:
            return contains(area, p)
    else:
        refine = area.contains_point
    stats = QueryStats(method="traditional")
    nodes_before = index.stats.node_accesses

    started = time.perf_counter()
    candidates = index.window_query(area.mbr)
    stats.candidates = len(candidates)

    results: List[int] = []
    for point, item_id in candidates:
        stats.validations += 1
        if refine(point):
            results.append(item_id)
        else:
            stats.redundant_validations += 1
    stats.time_ms = (time.perf_counter() - started) * 1000.0

    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(results)
    results.sort()
    return QueryResult(ids=results, stats=stats)


def traditional_area_query_points(
    points: Sequence[Tuple[Point, int]], area: Polygon
) -> QueryResult:
    """Index-free variant: linear scan + refine.

    The degenerate baseline (no filter step at all); used in tests as the
    simplest possible oracle and in the ablation bench as the "no index"
    row.
    """
    stats = QueryStats(method="scan")
    started = time.perf_counter()
    results: List[int] = []
    mbr = area.mbr
    for point, item_id in points:
        if not mbr.contains_point(point):
            continue
        stats.candidates += 1
        stats.validations += 1
        if area.contains_point(point):
            results.append(item_id)
        else:
            stats.redundant_validations += 1
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.result_size = len(results)
    results.sort()
    return QueryResult(ids=results, stats=stats)
