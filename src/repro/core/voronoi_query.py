"""Algorithm 1: the Voronoi-diagram-based area query (the paper's Fig. 1b).

The candidate set is *grown*, not filtered:

1. **Seed** — pick any position inside the query area (we use the polygon
   centroid when it is interior, else a point on an interior diagonal) and
   find its nearest database point with the spatial index's NN search.  By
   Property 3 the seed's Voronoi cell contains that position, so the seed is
   an internal point or lies just outside near the boundary.
2. **Expand** — BFS over Voronoi neighbours.  An *internal* candidate (it
   passes the refinement test) enqueues all its unvisited neighbours; a
   non-internal candidate enqueues only the neighbours ``pn`` whose segment
   ``p -> pn`` intersects the area — exactly the pseudo-code of Algorithm 1.
   Properties 7–9 guarantee this reaches every internal point while visiting
   only internal points plus a one-cell-thick shell around the boundary.

Cost model: every dequeued candidate pays one refinement test, so redundant
validations equal the shell size, which scales with the polygon's
*perimeter* — compare the traditional method's scaling with the MBR/polygon
*area difference*.  That asymmetry is the entire empirical story of the
paper (Figs. 4–7).
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.region import QueryRegion
from repro.index.base import SpatialIndex
from repro.delaunay.backends import DelaunayBackend
from repro.core.exceptions import InvalidQueryAreaError
from repro.core.stats import QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import PointStore


def interior_position(area: Polygon) -> Point:
    """An arbitrary position strictly usable as the paper's ``pA``.

    The centroid works for convex and most concave polygons; when it falls
    outside (strongly concave shapes) or on the boundary, fall back to the
    ear-clipping triangulation: the centroid of the largest triangle is
    strictly interior for any simple polygon with positive area.
    """
    centroid = area.centroid
    if area.contains_point(centroid) and not area.point_on_boundary(centroid):
        return centroid
    try:
        return area.interior_point()
    except ValueError as error:
        raise InvalidQueryAreaError(
            "could not find an interior position of the query area; "
            "is the polygon degenerate?"
        ) from error


def graph_nearest(
    neighbor_table: Sequence[Sequence[int]],
    points: Sequence[Point],
    start: int,
    x: float,
    y: float,
) -> int:
    """The row whose Voronoi cell contains ``(x, y)``, by greedy descent.

    Walks the Delaunay neighbour graph from ``start``, stepping to the
    neighbour strictly closest to the target each round; over a Delaunay
    triangulation the distance-to-target has no non-global local minima,
    so the walk terminates exactly at the graph's nearest vertex.  Used
    to correct a *live*-index seed into the *graph* nearest neighbour
    when tombstones exist: the spatial index forgets deleted rows, but
    Algorithm 1's seed must own the Voronoi cell of the query position
    over the full graph point set (tombstones included), otherwise the
    expansion may start in the wrong cell and miss results.  No hop cap
    is needed — strict improvement bounds the walk by the vertex count.
    """
    current = start
    p = points[current]
    best = (p.x - x) ** 2 + (p.y - y) ** 2
    improved = True
    while improved:
        improved = False
        for neighbor in neighbor_table[current]:
            q = points[neighbor]
            d = (q.x - x) ** 2 + (q.y - y) ** 2
            if d < best:
                best = d
                current = neighbor
                improved = True
    return current


def voronoi_area_query(
    index: SpatialIndex,
    backend: DelaunayBackend,
    points: List[Point],
    area: QueryRegion,
    *,
    seed_position: Optional[Point] = None,
    seed_id: Optional[int] = None,
    contains: Callable[[QueryRegion, Point], bool] | None = None,
    store: Optional["PointStore"] = None,
    deleted: Optional[Dict[int, int]] = None,
) -> QueryResult:
    """Run Algorithm 1.

    Parameters
    ----------
    index:
        Spatial index used **only** for the seed nearest-neighbour lookup
        (the paper deliberately uses the same R-tree as the baseline).
    backend:
        Voronoi-neighbour provider over ``points``.
    points:
        The database point table; ``backend`` must have been built on it.
    area:
        The query polygon ``A``.
    seed_position:
        Override for the arbitrary interior position ``pA`` (defaults to
        :func:`interior_position`).
    seed_id:
        Row id of an already-known seed point — the nearest database point
        to a position inside ``area``.  When given, the index NN search
        (and the interior-position computation) is skipped entirely; the
        batch engine uses this to reuse seeds between nearby queries by
        walking the Voronoi neighbour graph instead of descending the
        index (see :mod:`repro.engine.batch`).
    contains:
        Override for the refinement predicate (test hook); defaults to the
        exact :meth:`Polygon.contains_point`.  Forces the scalar path.
    store:
        The database's columnar :class:`~repro.core.store.PointStore`.
        When given (and the region provides ``contains_many``), the BFS
        runs *wave by wave*: every frontier generation is refined with
        one vectorized kernel call over coordinates gathered from the
        store's columns instead of one Python ``contains_point`` per
        candidate.  The visited closure — and therefore the result id
        list — is identical to the scalar queue's (the expansion rule
        depends only on per-point/per-segment predicates, never on
        order), and the kernels are bitwise-exact against the scalar
        refinement; ``segment_tests`` is the one counter whose value may
        differ, since which external point first reaches a shared
        neighbour is order-dependent.
    deleted:
        The store's tombstone map (:attr:`PointStore.deleted_rows`), or
        ``None``/empty when nothing was ever deleted.  Tombstoned rows
        stay in the Delaunay graph as *transit* vertices: the expansion
        traverses through them (the paper's coverage argument holds over
        the superset point set) but they are filtered from the result,
        and the seed — which the live-only spatial index produced — is
        first corrected to the graph nearest neighbour via
        :func:`graph_nearest`.

    Returns
    -------
    QueryResult
        Result ids (ascending), with ``method="voronoi"`` stats.

    Notes
    -----
    If the seed's nearest neighbour is not an internal point (possible when
    the area contains *no* database points at all, or the NN sits just
    outside the boundary), the expansion still proceeds from it using the
    external-point rule, and correctly returns the internal points (or an
    empty result).
    """
    if contains is not None:
        def refine(p: Point) -> bool:
            return contains(area, p)
    else:
        refine = area.contains_point
    stats = QueryStats(method="voronoi")
    nodes_before = index.stats.node_accesses

    started = time.perf_counter()
    position = seed_position
    if seed_id is None:
        if position is None:
            from repro.geometry.region import interior_seed_position

            position = interior_seed_position(area)
        seed_entry = index.nearest_neighbor(position)
        if seed_entry is None:
            stats.time_ms = (time.perf_counter() - started) * 1000.0
            return QueryResult(ids=[], stats=stats)
        seed_id = seed_entry[1]
    if deleted:
        # The seed came from the live-only spatial index (directly above,
        # or from the engine's seed-reuse walk whose fallback is the same
        # index lookup); with tombstones in the graph it may not own the
        # Voronoi cell containing pA — correct it before expanding.
        if position is None:
            from repro.geometry.region import interior_seed_position

            position = interior_seed_position(area)
        seed_id = graph_nearest(
            backend.neighbor_table(), points, seed_id, position.x, position.y
        )

    contains_many = (
        getattr(area, "contains_many", None)
        if store is not None and contains is None
        else None
    )
    if contains_many is not None:
        return _expand_vectorized(
            index, backend, area, contains_many, store, points, seed_id,
            nodes_before, started, stats, deleted,
        )

    candidate_queue: deque[int] = deque([seed_id])
    # A bytearray visited-set: O(1) no-hash membership, one byte per row.
    visited = bytearray(len(points))
    visited[seed_id] = 1
    results: List[int] = []

    # Local bindings for the BFS inner loop.
    pop = candidate_queue.popleft
    push = candidate_queue.append
    neighbor_table = backend.neighbor_table()
    crosses = area.crosses_boundary_xy
    candidates = 1
    validations = 0
    redundant = 0
    segment_tests = 0

    tombstoned = deleted if deleted else ()
    while candidate_queue:
        current = pop()
        current_point = points[current]
        validations += 1
        if refine(current_point):
            if current not in tombstoned:
                results.append(current)
            for neighbor in neighbor_table[current]:
                if not visited[neighbor]:
                    visited[neighbor] = 1
                    push(neighbor)
                    candidates += 1
        else:
            # ``current`` is outside the closed area, so the paper's
            # Intersects(line(p, pn), A) reduces to a boundary-crossing
            # test (a segment starting outside meets the region only
            # through its boundary).
            redundant += 1
            cx, cy = current_point.x, current_point.y
            for neighbor in neighbor_table[current]:
                if not visited[neighbor]:
                    segment_tests += 1
                    neighbor_point = points[neighbor]
                    if crosses(cx, cy, neighbor_point.x, neighbor_point.y):
                        visited[neighbor] = 1
                        push(neighbor)
                        candidates += 1
    stats.candidates = candidates
    stats.validations = validations
    stats.redundant_validations = redundant
    stats.segment_tests = segment_tests
    stats.time_ms = (time.perf_counter() - started) * 1000.0

    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(results)
    results.sort()
    return QueryResult(ids=results, stats=stats)


#: Frontier size below which a wave is processed scalar: numpy dispatch
#: overhead beats the kernel's throughput on tiny waves (small query
#: regions never leave this regime and run exactly the classic loop).
_WAVE_MIN = 48


def _expand_vectorized(
    index: SpatialIndex,
    backend: DelaunayBackend,
    area: QueryRegion,
    contains_many,
    store: "PointStore",
    points: Sequence[Point],
    seed_id: int,
    nodes_before: int,
    started: float,
    stats: QueryStats,
    deleted: Optional[Dict[int, int]] = None,
) -> QueryResult:
    """Algorithm 1's expansion, refined one BFS *wave* at a time.

    Identical closure to the scalar queue (see the ``store`` parameter
    note on :func:`voronoi_area_query`): each generation of the frontier
    is gathered into a row-id array and refined with one
    ``contains_many`` kernel call over the store's coordinate columns.
    Internal members then enqueue all their unvisited neighbours in one
    CSR gather (:meth:`~repro.delaunay.backends.DelaunayBackend.neighbor_csr`)
    — no Python loop over (candidate, neighbour) pairs — while external
    members (the one-cell shell around the boundary) run the per-segment
    crossing rule in the scalar loop, exactly as before.  Waves smaller
    than :data:`_WAVE_MIN` are processed entirely scalar (numpy dispatch
    would cost more than it saves); since the kernel is bitwise-exact
    against ``contains_point``, mixing regimes cannot change the
    closure.  Whether a point joins it depends only on per-point /
    per-segment predicates, never on visit order, so the result ids
    match the scalar queue's; ``segment_tests`` is the one
    order-dependent counter.
    """
    import numpy as np

    xs = store.xs
    ys = store.ys
    visited = np.zeros(len(store), dtype=bool)
    visited[seed_id] = True
    wave: List[int] = [seed_id]
    results: List[int] = []
    result_arrays: List[np.ndarray] = []
    indptr, indices = backend.neighbor_csr()
    neighbor_table = backend.neighbor_table()
    refine = area.contains_point
    crosses = area.crosses_boundary_xy
    candidates = 1
    validations = 0
    redundant = 0
    segment_tests = 0
    tombstoned = deleted if deleted else ()
    dead = store.dead_mask if deleted else None

    while wave:
        validations += len(wave)
        if len(wave) < _WAVE_MIN:
            # Scalar wave: the classic per-candidate loop.
            next_wave: List[int] = []
            push = next_wave.append
            for current in wave:
                if refine(points[current]):
                    if current not in tombstoned:
                        results.append(current)
                    for neighbor in neighbor_table[current]:
                        if not visited[neighbor]:
                            visited[neighbor] = True
                            push(neighbor)
                            candidates += 1
                else:
                    redundant += 1
                    current_point = points[current]
                    cx, cy = current_point.x, current_point.y
                    for neighbor in neighbor_table[current]:
                        if not visited[neighbor]:
                            segment_tests += 1
                            neighbor_point = points[neighbor]
                            if crosses(
                                cx, cy, neighbor_point.x, neighbor_point.y
                            ):
                                visited[neighbor] = True
                                push(neighbor)
                                candidates += 1
            wave = next_wave
            continue
        # Wide wave: one refine kernel + one CSR neighbour gather.
        wave_array = np.asarray(wave, dtype=np.int64)
        inside = contains_many(xs[wave_array], ys[wave_array])
        internal = wave_array[inside]
        if internal.size:
            if dead is None:
                result_arrays.append(internal)
            else:
                # Tombstones expand (transit vertices) but never report.
                result_arrays.append(internal[~dead[internal]])
            # One gather for every internal member's adjacency row:
            # repeat each row start over its length, offset by the
            # position within the concatenated output.
            starts = indptr[internal]
            counts = indptr[internal + 1] - starts
            total = int(counts.sum())
            base = np.repeat(starts, counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            neighbors = indices[base + offsets]
            fresh = np.unique(neighbors[~visited[neighbors]])
            visited[fresh] = True
            candidates += int(fresh.size)
        else:
            fresh = np.empty(0, dtype=np.int64)
        shell_admitted: List[int] = []
        external = wave_array[~inside]
        redundant += int(external.size)
        for current in external.tolist():
            cx = xs[current]
            cy = ys[current]
            for neighbor in neighbor_table[current]:
                if not visited[neighbor]:
                    segment_tests += 1
                    if crosses(cx, cy, xs[neighbor], ys[neighbor]):
                        visited[neighbor] = True
                        shell_admitted.append(neighbor)
                        candidates += 1
        wave = fresh.tolist()
        wave.extend(shell_admitted)

    stats.candidates = candidates
    stats.validations = validations
    stats.redundant_validations = redundant
    stats.segment_tests = segment_tests
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    if result_arrays:
        merged = np.concatenate(
            result_arrays
            + [np.asarray(results, dtype=np.int64)]
        )
        ids = np.sort(merged).tolist()
    else:
        results.sort()
        ids = results
    stats.result_size = len(ids)
    return QueryResult(ids=ids, stats=stats)
