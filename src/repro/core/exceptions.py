"""Library exception hierarchy.

All repro-specific failures derive from :class:`ReproError`, so callers can
catch one type; the concrete subclasses state *what* was wrong with which
input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EmptyDatabaseError(ReproError):
    """A query was issued against a database with no points."""


class InvalidQueryAreaError(ReproError):
    """The query area polygon is unusable (degenerate or self-intersecting)."""


class BackendUnavailableError(ReproError):
    """The requested Delaunay backend cannot be constructed (e.g. no scipy)."""
