"""The user-facing spatial database.

:class:`SpatialDatabase` owns the pieces every query strategy shares:

* the **point table** — a columnar :class:`~repro.core.store.PointStore`
  (contiguous float64 ``xs``/``ys``, row id = array index); the hot
  paths gather coordinates straight from its arrays, while
  :attr:`SpatialDatabase.points` / :meth:`SpatialDatabase.point`
  materialize :class:`Point` objects at the API edge (see the
  conversion-boundary note in :mod:`repro.geometry.point`),
* a **spatial index** (R-tree by default — the paper's choice for both the
  window query of the baseline and the NN seed of the Voronoi method),
* a **Voronoi neighbour backend** (built lazily on first use, since the
  traditional method never needs it), and
* a **batch query engine** (also lazy — see :mod:`repro.engine`) holding
  the cost-based planner and the spec-keyed result cache.

Queries are issued as declarative spec objects (:mod:`repro.query`)
through the single entry point :meth:`SpatialDatabase.query` (or
:meth:`SpatialDatabase.query_batch` for heterogeneous batches)::

    from repro import SpatialDatabase, AreaQuery, KnnQuery, random_query_polygon

    db = SpatialDatabase.from_points(points)
    area = random_query_polygon(query_size=0.01)
    result = db.query(AreaQuery(area))          # planner picks the method
    print(result.ids(), result.stats.candidates)
    print(result.explain().render())            # predicted vs measured
    near = db.query(KnnQuery((0.5, 0.5), 8)).points()

Specs compose: ``UnionQuery`` / ``IntersectionQuery`` /
``DifferenceQuery`` combine region queries with set semantics (the batch
engine decomposes them so sibling leaves share work), and
``KnnQuery(point, k=None)`` streams the distance ranking incrementally —
``db.query(spec).first(10)`` examines only ~10 candidates::

    ring = db.query(DifferenceQuery((AreaQuery(outer), AreaQuery(inner))))
    closest = db.query(KnnQuery((0.5, 0.5), None)).first(10)

The pre-spec methods (``area_query``, ``window_query``,
``k_nearest_neighbors``, ...) remain as thin deprecation shims that
delegate to the spec path and return identical results; see
``docs/QUERY_API.md`` for the migration table.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion
from repro.index import make_index
from repro.index.base import SpatialIndex
from repro.delaunay.backends import DelaunayBackend, make_backend
from repro.core.exceptions import EmptyDatabaseError
from repro.core.stats import QueryResult
from repro.core.store import PointStore, PointsView
from repro.query.result import BatchQueryResults
from repro.query.result import QueryResult as LazyQueryResult
from repro.query.spec import (
    AreaQuery,
    KnnQuery,
    NearestQuery,
    Query,
    WindowQuery,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.batch import BatchQueryEngine, BatchResult
    from repro.engine.planner import PlanExplanation

_METHODS = ("traditional", "voronoi", "auto")


def _warn_deprecated(old: str, new: str) -> None:
    """Emit the standard deprecation warning for a legacy query method."""
    warnings.warn(
        f"SpatialDatabase.{old} is deprecated; use {new} instead "
        "(see docs/QUERY_API.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


class SpatialDatabase:
    """A point database answering area queries by either paper method.

    Parameters
    ----------
    index_kind:
        Registry name of the spatial index (default ``"rtree"``, as in the
        paper).  See :data:`repro.index.INDEX_REGISTRY`.
    backend_kind:
        Voronoi-neighbour backend: ``"pure"`` (our Bowyer–Watson, default)
        or ``"scipy"`` (Qhull-accelerated, identical neighbour sets).
    vectorized:
        When ``True`` (the default) queries run the columnar hot paths —
        array refinement kernels, bulk index probes, batched distances —
        over the :class:`~repro.core.store.PointStore` columns.
        ``False`` forces the scalar per-point fallbacks everywhere; the
        two modes return byte-identical results (pinned by
        ``tests/core/test_columnar_equivalence.py``), so the flag exists
        as the equivalence oracle and for debugging, not as a tuning
        knob.
    index_kwargs:
        Extra constructor arguments for the index (e.g. ``max_entries``).
    """

    def __init__(
        self,
        index_kind: str = "rtree",
        backend_kind: str = "pure",
        *,
        vectorized: bool = True,
        **index_kwargs,
    ) -> None:
        self._store = PointStore()
        self._index: SpatialIndex = make_index(index_kind, **index_kwargs)
        self._index_kind = index_kind
        self._backend_kind = backend_kind
        self._backend: Optional[DelaunayBackend] = None
        self._engine: Optional["BatchQueryEngine"] = None
        #: run the columnar/vectorized hot paths (scalar oracle if False)
        self.vectorized = bool(vectorized)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        points: Iterable[Point] | Iterable[Tuple[float, float]],
        *,
        index_kind: str = "rtree",
        backend_kind: str = "pure",
        vectorized: bool = True,
        **index_kwargs,
    ) -> "SpatialDatabase":
        """Bulk-build a database from an iterable of points or (x, y) pairs."""
        db = cls(
            index_kind, backend_kind, vectorized=vectorized, **index_kwargs
        )
        db.extend(points)
        return db

    @classmethod
    def from_arrays(
        cls,
        xs,
        ys,
        *,
        index_kind: str = "rtree",
        backend_kind: str = "pure",
        vectorized: bool = True,
        **index_kwargs,
    ) -> "SpatialDatabase":
        """Bulk-build from coordinate arrays (row id = array index).

        The columnar loading edge: the arrays land in the
        :class:`~repro.core.store.PointStore` with one numpy copy each —
        no per-point Python conversion — and only the index bulk load
        materializes :class:`Point` objects (once, via the store's
        cached view).  Snapshot restores
        (:func:`repro.io.persist.load_database`, ``repro serve --load``)
        come through here.
        """
        db = cls(
            index_kind, backend_kind, vectorized=vectorized, **index_kwargs
        )
        rows = db._store.extend_array(xs, ys)
        view = db._store.view()
        db._index.bulk_load((view[row], row) for row in rows)
        db._backend = None
        return db

    def insert(self, point: Point | Tuple[float, float]) -> int:
        """Add one point; returns its row id.

        The paper treats the Voronoi diagram as a precomputed structure
        over a static dataset; we go one step further: when the (pure)
        backend is already built, the diagram is maintained *incrementally*
        (expected O(1) cavity work per insert).  The scipy backend, and
        points falling far outside the original extent, fall back to
        lazy rebuild-on-next-use.
        """
        p = point if isinstance(point, Point) else Point(*map(float, point))
        row_id = self._store.append(p.x, p.y)
        self._index.insert(p, row_id)
        backend = self._backend
        if backend is not None:
            add_point = getattr(backend, "add_point", None)
            if add_point is not None:
                try:
                    add_point(p)
                    return row_id
                except ValueError:
                    pass  # outside the incremental-safe extent
            self._backend = None
        return row_id

    def extend(
        self, points: Iterable[Point] | Iterable[Tuple[float, float]]
    ) -> List[int]:
        """Add many points via the index's bulk loader; returns their row ids.

        Like :meth:`insert`, an already-built pure backend is maintained
        *incrementally* (one cavity insertion per point) instead of being
        discarded for a full rebuild; the scipy backend, and points far
        outside the original extent, fall back to lazy rebuild-on-next-use.
        """
        normalized = [
            p if isinstance(p, Point) else Point(float(p[0]), float(p[1]))
            for p in points
        ]
        rows = self._store.extend_points(normalized)
        self._index.bulk_load(
            (p, row) for p, row in zip(normalized, rows)
        )
        backend = self._backend
        if backend is not None and normalized:
            add_point = getattr(backend, "add_point", None)
            if add_point is None or backend.size != rows.start:
                self._backend = None
            else:
                try:
                    for p in normalized:
                        add_point(p)
                except ValueError:  # outside the incremental-safe extent
                    self._backend = None
        return list(rows)

    def delete(self, row_id: int) -> None:
        """Tombstone one row: remove it from every live read path.

        The row is deleted *physically* from the spatial index (window,
        traditional and index-kNN paths never see it again) and
        *logically* from the point table — its coordinates stay
        addressable so the Delaunay graph keeps the vertex as a transit
        node (the Voronoi expansions traverse through it but filter it
        from results; the paper's coverage argument holds over the
        superset point set) and so MVCC snapshot readers admitted before
        the delete still see it.  Raises :class:`IndexError` for an
        out-of-range id, :class:`ValueError` if already deleted; a
        rejected delete changes nothing.
        """
        point = self._store.point(row_id)  # IndexError when out of range
        self._store.delete(row_id)  # ValueError when already deleted
        self._index.delete(point, row_id)

    def __len__(self) -> int:
        """The number of *live* rows (inserted minus deleted).

        Tombstoned rows keep their ids (``db.store`` still addresses
        them) but no longer count — this is the cardinality every query
        answer is drawn from.
        """
        return self._store.live_count

    @property
    def version(self) -> int:
        """Monotonic data version, bumped by every mutation.

        The engine's result cache stamps entries with this value, so any
        ``insert``/``extend`` implicitly invalidates cached query results.
        (Delegates to the :class:`~repro.core.store.PointStore` stamp —
        the store is the single source of truth for the table.)
        """
        return self._store.version

    def point(self, row_id: int) -> Point:
        """The point stored at ``row_id`` (materialized once, then cached)."""
        return self._store.point(row_id)

    @property
    def points(self) -> PointsView:
        """The full point table as an immutable view (row id = index).

        A live, read-only :class:`~repro.core.store.PointsView` over the
        columnar store: indexing, slicing, iteration and equality behave
        like the list this property used to return, but there are no
        mutators — callers cannot desynchronise the table from the
        spatial index (or the engine's version-stamped cache) by
        appending to what they were handed.  ``Point`` objects
        materialize lazily on first access and stay cached (the store is
        append-only, so they never invalidate).
        """
        return self._store.view()

    @property
    def store(self) -> PointStore:
        """The columnar coordinate store (the hot paths' data plane)."""
        return self._store

    @property
    def index(self) -> SpatialIndex:
        """The underlying spatial index."""
        return self._index

    @property
    def backend(self) -> DelaunayBackend:
        """The Voronoi neighbour backend (built on first access)."""
        if self._backend is None:
            if not len(self._store):
                raise EmptyDatabaseError(
                    "cannot build a Voronoi diagram over an empty database"
                )
            self._backend = make_backend(
                self._backend_kind, self._store.view()
            )
        return self._backend

    def prepare(self) -> "SpatialDatabase":
        """Force-build the Voronoi backend now (otherwise lazy); returns self.

        Experiments call this so that backend construction is excluded from
        per-query timings, matching the paper's setting where the Voronoi
        diagram is a precomputed database structure like the R-tree.
        """
        self.backend.neighbor_table()
        return self

    # -- queries -----------------------------------------------------------

    @property
    def engine(self) -> "BatchQueryEngine":
        """The batch query engine over this database (built on first use).

        One engine (and thus one result cache and one planner) is shared
        by every :meth:`batch_area_query` / :meth:`explain` call and by
        ``area_query(method="auto")``.
        """
        if self._engine is None:
            from repro.engine.batch import BatchQueryEngine

            self._engine = BatchQueryEngine(self)
        return self._engine

    def query(self, spec: Query) -> LazyQueryResult:
        """The single entry point: answer any declarative query spec.

        ``spec`` is an :class:`~repro.query.spec.AreaQuery`,
        :class:`~repro.query.spec.WindowQuery`,
        :class:`~repro.query.spec.KnnQuery`,
        :class:`~repro.query.spec.NearestQuery`, or a composite
        (:class:`~repro.query.spec.UnionQuery` /
        :class:`~repro.query.spec.IntersectionQuery` /
        :class:`~repro.query.spec.DifferenceQuery`).  Returns a **lazy**
        :class:`~repro.query.result.QueryResult` immediately; execution
        happens on first consumption (iteration, ``.ids()``,
        ``.points()``, ``.stats``, ...) and is memoised on the handle.
        ``spec.method="auto"`` routes through the cost-based planner;
        ``result.explain()`` shows the decision with predicted (and, once
        executed, measured) costs — for a composite, one nested
        explanation per part.  Streaming-capable specs (composites,
        ``KnnQuery(k=None)``) additionally support lazy consumption:
        ``result.first(n)`` / plain iteration produce rows on demand
        without materialising the full result.
        """
        return LazyQueryResult(self, spec)

    def query_batch(
        self, specs: Sequence[Query], *, use_cache: bool = True
    ) -> BatchQueryResults:
        """Answer a (possibly heterogeneous) batch of query specs.

        Executes eagerly through the batch engine — that is where
        cross-query sharing lives: Hilbert-ordered tours, shared window
        frontiers, Voronoi seed reuse, intra-batch dedup, and the
        spec-keyed LRU result cache (disable with ``use_cache=False``).
        Composite specs are decomposed into the same job pool, so their
        leaves share work with each other *and* with the rest of the
        batch (see :mod:`repro.engine.batch`).
        Returns a :class:`~repro.query.result.BatchQueryResults` of
        already-executed lazy handles in submission order, id-identical
        to calling :meth:`query` per spec, plus batch-level
        :class:`~repro.engine.batch.BatchStats` in ``.stats``.
        """
        batch = self.engine.run_specs(specs, use_cache=use_cache)
        handles = [
            LazyQueryResult(self, spec, record=record)
            for spec, record in zip(specs, batch.results)
        ]
        return BatchQueryResults(handles, batch.stats)

    def explain(
        self, target: "Query | QueryRegion", *, execute: bool = False
    ) -> "PlanExplanation":
        """The planner's cost breakdown and method choice for ``target``.

        ``target`` is a query spec (any kind) or a bare query region
        (treated as ``AreaQuery(region)``).  With ``execute=True`` every
        executable method is also run and its measured costs reported
        next to the predictions (``EXPLAIN ANALYZE``).
        """
        if isinstance(target, Query):
            return self.engine.planner.explain_spec(target, execute=execute)
        return self.engine.planner.explain(target, execute=execute)

    # -- deprecated pre-spec query methods ---------------------------------

    def area_query(
        self, area: QueryRegion, method: str = "voronoi"
    ) -> QueryResult:
        """All points inside the closed region ``area``.

        .. deprecated:: 1.1
            Use ``db.query(AreaQuery(area, method=...))`` instead; this
            shim delegates to the spec path and returns the identical
            eager record.

        ``area`` is any :class:`~repro.geometry.region.QueryRegion` — a
        (possibly concave) :class:`~repro.geometry.polygon.Polygon` as in
        the paper, or a :class:`~repro.geometry.circle.Circle` for
        radius-bounded queries.  ``method`` selects the paper's algorithm
        (``"voronoi"``), the filter–refine baseline (``"traditional"``),
        or the cost-based planner's per-query choice between the two
        (``"auto"``).  All return identical id lists; they differ in the
        :class:`QueryStats` they report.
        """
        _warn_deprecated(
            "area_query(area, method)", "query(AreaQuery(area, method=...))"
        )
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; choose from {_METHODS}"
            )
        return self.query(AreaQuery(area, method=method)).record

    def batch_area_query(
        self,
        regions: Sequence[QueryRegion],
        method: str = "auto",
        *,
        use_cache: bool = True,
    ) -> "BatchResult":
        """Answer many area queries at once (see :mod:`repro.engine.batch`).

        .. deprecated:: 1.1
            Use ``db.query_batch([AreaQuery(r, method=...) for r in
            regions])`` instead; this shim delegates to the same engine
            and returns the identical records.

        Returns a :class:`~repro.engine.batch.BatchResult` — a sequence of
        :class:`QueryResult` in submission order, id-identical to looping
        :meth:`area_query`, plus batch-level sharing statistics in
        ``.stats``.  ``method="auto"`` lets the cost-based planner pick
        the cheaper method per query.
        """
        _warn_deprecated(
            "batch_area_query(regions, method)",
            "query_batch([AreaQuery(region, method=...), ...])",
        )
        return self.engine.batch_area_query(
            regions, method, use_cache=use_cache
        )

    def window_query(self, window: Rect) -> List[int]:
        """Row ids of points inside an axis-aligned rectangle (sorted).

        .. deprecated:: 1.1
            Use ``db.query(WindowQuery(window))`` instead; this shim runs
            ``WindowQuery(window, method="index")`` — byte-identical to
            the old direct index call.
        """
        _warn_deprecated("window_query(window)", "query(WindowQuery(window))")
        return self.query(WindowQuery(window, method="index")).ids()

    def nearest_neighbor(self, query: Point) -> Optional[int]:
        """Row id of the closest point to ``query`` (None when empty).

        .. deprecated:: 1.1
            Use ``db.query(NearestQuery(query))`` instead.
        """
        _warn_deprecated("nearest_neighbor(query)", "query(NearestQuery(query))")
        ids = self.query(NearestQuery(query)).ids()
        return ids[0] if ids else None

    def k_nearest_neighbors(
        self, query: Point, k: int, method: str = "index"
    ) -> List[int]:
        """Row ids of the ``k`` closest points, nearest first.

        .. deprecated:: 1.1
            Use ``db.query(KnnQuery(query, k, method=...))`` instead.

        ``method="index"`` runs the best-first search of the spatial index;
        ``method="voronoi"`` runs the incremental expansion over the Voronoi
        neighbour graph (see :mod:`repro.core.knn_query`) — same results,
        different access pattern.
        """
        _warn_deprecated(
            "k_nearest_neighbors(query, k, method)",
            "query(KnnQuery(query, k, method=...))",
        )
        if method not in ("index", "voronoi"):
            raise ValueError(
                f"unknown method {method!r}; choose 'index' or 'voronoi'"
            )
        return self.query(KnnQuery(query, k, method=method)).ids()

    def voronoi_neighbors(self, row_id: int) -> Tuple[int, ...]:
        """Row ids of the Voronoi neighbours of ``row_id``.

        Not a query in the spec sense — it exposes the database's Voronoi
        adjacency *structure* (Algorithm 1's substrate) and therefore has
        no deprecation shim.
        """
        return self.backend.neighbors(row_id)

    # -- maintenance ---------------------------------------------------------

    def classify_against(
        self, area: QueryRegion
    ) -> Dict[str, List[int]]:
        """Partition all rows into the paper's three classes w.r.t. ``area``.

        Returns a dict with keys ``internal`` (inside the area), ``boundary``
        (outside but Voronoi-adjacent to an internal point or crossing the
        boundary along an adjacency edge), and ``external`` (everything
        else).  Used by tests for Properties 7–9 and by examples for
        visualisation.
        """
        internal: List[int] = []
        boundary: List[int] = []
        external: List[int] = []
        points = self._store.view()
        contains_many = (
            getattr(area, "contains_many", None) if self.vectorized else None
        )
        if contains_many is not None:
            mask = contains_many(self._store.xs, self._store.ys)
            inside = set(map(int, mask.nonzero()[0]))
        else:
            inside = {
                row_id
                for row_id, p in enumerate(points)
                if area.contains_point(p)
            }
        deleted = self._store.deleted_rows
        if deleted:
            inside -= deleted.keys()
        from repro.geometry.segment import Segment

        for row_id, p in enumerate(points):
            if row_id in deleted:
                continue  # tombstones are transit vertices, not members
            if row_id in inside:
                internal.append(row_id)
                continue
            adjacent = False
            for neighbor in self.backend.neighbors(row_id):
                if neighbor in inside or area.intersects_segment(
                    Segment(p, points[neighbor])
                ):
                    adjacent = True
                    break
            if adjacent:
                boundary.append(row_id)
            else:
                external.append(row_id)
        return {
            "internal": internal,
            "boundary": boundary,
            "external": external,
        }
