"""The paper's primary contribution: area queries over a spatial database.

Two interchangeable implementations of "find all points inside polygon A":

* :func:`~repro.core.traditional_query.traditional_area_query` — the
  filter–refine baseline (Fig. 1a): window query with the polygon's MBR on a
  spatial index, then exact point-in-polygon refinement of every candidate.
* :func:`~repro.core.voronoi_query.voronoi_area_query` — Algorithm 1
  (Fig. 1b): seed with a nearest-neighbour lookup, then breadth-first
  expansion over Voronoi neighbours with boundary-crossing checks.

Both are wrapped by :class:`~repro.core.database.SpatialDatabase`, the
user-facing entry point that owns the point table (the columnar
:class:`~repro.core.store.PointStore`), the R-tree, and the Voronoi
neighbour backend, and reports per-query
:class:`~repro.core.stats.QueryStats`.  Both query functions accept the
store to run their refinement over coordinate arrays (the vectorized hot
paths); without it they fall back to the scalar per-point loops with
byte-identical results.
"""

from repro.core.database import SpatialDatabase
from repro.core.exceptions import (
    EmptyDatabaseError,
    InvalidQueryAreaError,
    ReproError,
)
from repro.core.stats import QueryResult, QueryStats
from repro.core.store import PointStore, PointsView
from repro.core.traditional_query import traditional_area_query
from repro.core.voronoi_query import voronoi_area_query

__all__ = [
    "SpatialDatabase",
    "PointStore",
    "PointsView",
    "QueryStats",
    "QueryResult",
    "traditional_area_query",
    "voronoi_area_query",
    "ReproError",
    "EmptyDatabaseError",
    "InvalidQueryAreaError",
]
