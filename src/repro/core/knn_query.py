"""Voronoi-diagram-based k-nearest-neighbour queries.

The paper's related work leans on Sharifzadeh & Shahabi's VoR-tree (its
reference [8]): once a database maintains Voronoi adjacency, other spatial
queries besides area queries can ride the same structure.  This module
implements the classical incremental kNN over the Voronoi graph:

* **Theorem (Okabe et al., Property 2 generalised).**  The (i+1)-th nearest
  neighbour of a query position q is a Voronoi neighbour of one of the
  first i nearest neighbours.

So the algorithm seeds with the 1-NN (one index lookup, exactly like
Algorithm 1) and then repeatedly pops the closest unvisited point from a
frontier heap that only ever contains Voronoi neighbours of already-
confirmed results.  Each confirmation touches ~6 neighbours, so a kNN query
costs O(k log k) heap work after the seed — independent of the database
size, versus the O(log n + k) node inspections of a best-first R-tree
descent (the baseline we compare against in the bench).

When the caller passes the database's columnar
:class:`~repro.core.store.PointStore`, each confirmation's neighbour
distances are computed as one batched kernel call over the store's
coordinate columns (:func:`repro.geometry.kernels.squared_distances`)
instead of one ``Point.squared_distance_to`` per neighbour.  The batched
values are bitwise identical to the scalar ones (same IEEE operations in
the same order), so heap order — and therefore the ranking — cannot
drift between the two paths.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.delaunay.backends import DelaunayBackend
from repro.core.stats import QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import PointStore


def _batched_expand(store: "PointStore", query: Point):
    """A closure pushing one confirmation's frontier additions, batched.

    Returns ``expand(current, visited, frontier, neighbor_table) ->
    fresh-count`` computing every unvisited neighbour's squared distance
    in one :func:`~repro.geometry.kernels.squared_distances` call.
    """
    import numpy as np

    from repro.geometry.kernels import squared_distances

    xs = store.xs
    ys = store.ys
    qx = query.x
    qy = query.y

    def expand(current, visited, frontier, neighbor_table) -> int:
        fresh = [
            neighbor
            for neighbor in neighbor_table[current]
            if not visited[neighbor]
        ]
        if not fresh:
            return 0
        ids = np.fromiter(fresh, dtype=np.intp, count=len(fresh))
        distances = squared_distances(xs[ids], ys[ids], qx, qy).tolist()
        for neighbor, distance in zip(fresh, distances):
            visited[neighbor] = 1
            heapq.heappush(frontier, (distance, neighbor))
        return len(fresh)

    return expand


def _scalar_expand(points: Sequence[Point], query: Point):
    """The scalar sibling of :func:`_batched_expand` (one call per row)."""

    def expand(current, visited, frontier, neighbor_table) -> int:
        fresh = 0
        for neighbor in neighbor_table[current]:
            if not visited[neighbor]:
                visited[neighbor] = 1
                fresh += 1
                heapq.heappush(
                    frontier,
                    (points[neighbor].squared_distance_to(query), neighbor),
                )
        return fresh

    return expand


def voronoi_knn_query(
    index: SpatialIndex,
    backend: DelaunayBackend,
    points: Sequence[Point],
    query: Point,
    k: int,
    *,
    seed_id: int | None = None,
    store: Optional["PointStore"] = None,
) -> QueryResult:
    """The ``k`` nearest rows to ``query``, nearest first.

    Parameters mirror :func:`repro.core.voronoi_query.voronoi_area_query`:
    the spatial index supplies only the seed 1-NN; all further expansion is
    over the Voronoi neighbour graph.  ``seed_id`` optionally injects an
    already-known seed — it **must** be the row id of the nearest point to
    ``query`` (the batch engine guarantees this by walking the Delaunay
    neighbour graph) — in which case the index NN search is skipped.
    ``store`` switches the expansion to batched distance kernels over the
    columnar coordinate arrays (identical ranking, see the module
    docstring).

    Returns a :class:`QueryResult` whose ``ids`` are ordered by distance
    (ties broken by row id) — note this differs from the area query, whose
    ids are sorted ascending.  ``stats.candidates`` counts every point
    whose distance was evaluated.
    """
    stats = QueryStats(method="voronoi")
    started = time.perf_counter()
    if k <= 0 or not points:
        stats.time_ms = (time.perf_counter() - started) * 1000.0
        return QueryResult(ids=[], stats=stats)

    nodes_before = index.stats.node_accesses
    if seed_id is None:
        seed_entry = index.nearest_neighbor(query)
        assert seed_entry is not None  # points is non-empty
        _, seed_id = seed_entry

    neighbor_table = backend.neighbor_table()
    visited = bytearray(len(points))
    visited[seed_id] = 1
    frontier: List[Tuple[float, int]] = [
        (points[seed_id].squared_distance_to(query), seed_id)
    ]
    stats.candidates = 1
    results: List[int] = []
    expand = (
        _batched_expand(store, query)
        if store is not None
        else _scalar_expand(points, query)
    )

    while frontier and len(results) < k:
        _, current = heapq.heappop(frontier)
        results.append(current)
        stats.candidates += expand(
            current, visited, frontier, neighbor_table
        )

    stats.result_size = len(results)
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    return QueryResult(ids=results, stats=stats)


def incremental_nearest(
    index: SpatialIndex,
    backend: DelaunayBackend,
    points: Sequence[Point],
    query: Point,
    *,
    store: Optional["PointStore"] = None,
):
    """Generator yielding rows in increasing distance order, lazily.

    The streaming form of :func:`voronoi_knn_query` — callers can stop at
    any rank without choosing ``k`` up front (distance browsing).
    ``store`` batches each confirmation's neighbour distances exactly as
    in the eager form; the yielded order is identical either way.
    """
    if not points:
        return
    seed_entry = index.nearest_neighbor(query)
    assert seed_entry is not None
    _, seed_id = seed_entry

    neighbor_table = backend.neighbor_table()
    visited = bytearray(len(points))
    visited[seed_id] = 1
    frontier: List[Tuple[float, int]] = [
        (points[seed_id].squared_distance_to(query), seed_id)
    ]
    expand = (
        _batched_expand(store, query)
        if store is not None
        else _scalar_expand(points, query)
    )
    while frontier:
        _, current = heapq.heappop(frontier)
        yield current
        expand(current, visited, frontier, neighbor_table)
