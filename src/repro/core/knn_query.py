"""Voronoi-diagram-based k-nearest-neighbour queries.

The paper's related work leans on Sharifzadeh & Shahabi's VoR-tree (its
reference [8]): once a database maintains Voronoi adjacency, other spatial
queries besides area queries can ride the same structure.  This module
implements the classical incremental kNN over the Voronoi graph:

* **Theorem (Okabe et al., Property 2 generalised).**  The (i+1)-th nearest
  neighbour of a query position q is a Voronoi neighbour of one of the
  first i nearest neighbours.

So the algorithm seeds with the 1-NN (one index lookup, exactly like
Algorithm 1) and then repeatedly pops the closest unvisited point from a
frontier heap that only ever contains Voronoi neighbours of already-
confirmed results.  Each confirmation touches ~6 neighbours, so a kNN query
costs O(k log k) heap work after the seed — independent of the database
size, versus the O(log n + k) node inspections of a best-first R-tree
descent (the baseline we compare against in the bench).

When the caller passes the database's columnar
:class:`~repro.core.store.PointStore`, each confirmation's neighbour
distances are computed as one batched kernel call over the store's
coordinate columns (:func:`repro.geometry.kernels.squared_distances`)
instead of one ``Point.squared_distance_to`` per neighbour.  The batched
values are bitwise identical to the scalar ones (same IEEE operations in
the same order), so heap order — and therefore the ranking — cannot
drift between the two paths.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.delaunay.backends import DelaunayBackend
from repro.core.stats import QueryResult, QueryStats
from repro.core.voronoi_query import graph_nearest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import PointStore, StoreSnapshot


def _batched_expand(store: "PointStore", query: Point):
    """A closure pushing one confirmation's frontier additions, batched.

    Returns ``expand(current, visited, frontier, neighbor_table) ->
    fresh-count`` computing every unvisited neighbour's squared distance
    in one :func:`~repro.geometry.kernels.squared_distances` call.
    """
    import numpy as np

    from repro.geometry.kernels import squared_distances

    xs = store.xs
    ys = store.ys
    qx = query.x
    qy = query.y

    def expand(current, visited, frontier, neighbor_table) -> int:
        fresh = [
            neighbor
            for neighbor in neighbor_table[current]
            if not visited[neighbor]
        ]
        if not fresh:
            return 0
        ids = np.fromiter(fresh, dtype=np.intp, count=len(fresh))
        distances = squared_distances(xs[ids], ys[ids], qx, qy).tolist()
        for neighbor, distance in zip(fresh, distances):
            visited[neighbor] = 1
            heapq.heappush(frontier, (distance, neighbor))
        return len(fresh)

    return expand


def _scalar_expand(points: Sequence[Point], query: Point):
    """The scalar sibling of :func:`_batched_expand` (one call per row)."""

    def expand(current, visited, frontier, neighbor_table) -> int:
        fresh = 0
        for neighbor in neighbor_table[current]:
            if not visited[neighbor]:
                visited[neighbor] = 1
                fresh += 1
                heapq.heappush(
                    frontier,
                    (points[neighbor].squared_distance_to(query), neighbor),
                )
        return fresh

    return expand


def voronoi_knn_query(
    index: SpatialIndex,
    backend: DelaunayBackend,
    points: Sequence[Point],
    query: Point,
    k: int,
    *,
    seed_id: int | None = None,
    store: Optional["PointStore"] = None,
    deleted: Optional[Dict[int, int]] = None,
) -> QueryResult:
    """The ``k`` nearest rows to ``query``, nearest first.

    Parameters mirror :func:`repro.core.voronoi_query.voronoi_area_query`:
    the spatial index supplies only the seed 1-NN; all further expansion is
    over the Voronoi neighbour graph.  ``seed_id`` optionally injects an
    already-known seed — it **must** be the row id of the nearest point to
    ``query`` (the batch engine guarantees this by walking the Delaunay
    neighbour graph) — in which case the index NN search is skipped.
    ``store`` switches the expansion to batched distance kernels over the
    columnar coordinate arrays (identical ranking, see the module
    docstring).  ``deleted`` (the store's tombstone map) makes popped
    tombstones expand without counting toward ``k`` — the heap walk runs
    over the superset graph, where Okabe's theorem holds, and the seed is
    corrected from the live index's answer to the graph nearest
    neighbour first (see
    :func:`repro.core.voronoi_query.graph_nearest`).

    Returns a :class:`QueryResult` whose ``ids`` are ordered by distance
    (ties broken by row id) — note this differs from the area query, whose
    ids are sorted ascending.  ``stats.candidates`` counts every point
    whose distance was evaluated.
    """
    stats = QueryStats(method="voronoi")
    started = time.perf_counter()
    if k <= 0 or not points:
        stats.time_ms = (time.perf_counter() - started) * 1000.0
        return QueryResult(ids=[], stats=stats)

    nodes_before = index.stats.node_accesses
    if seed_id is None:
        seed_entry = index.nearest_neighbor(query)
        assert seed_entry is not None  # points is non-empty
        _, seed_id = seed_entry

    neighbor_table = backend.neighbor_table()
    if deleted:
        seed_id = graph_nearest(
            neighbor_table, points, seed_id, query.x, query.y
        )
    tombstoned = deleted if deleted else ()
    visited = bytearray(len(points))
    visited[seed_id] = 1
    frontier: List[Tuple[float, int]] = [
        (points[seed_id].squared_distance_to(query), seed_id)
    ]
    stats.candidates = 1
    results: List[int] = []
    expand = (
        _batched_expand(store, query)
        if store is not None
        else _scalar_expand(points, query)
    )

    while frontier and len(results) < k:
        _, current = heapq.heappop(frontier)
        if current not in tombstoned:
            results.append(current)
        stats.candidates += expand(
            current, visited, frontier, neighbor_table
        )

    stats.result_size = len(results)
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    return QueryResult(ids=results, stats=stats)


def incremental_nearest(
    index: SpatialIndex,
    backend: DelaunayBackend,
    points: Sequence[Point],
    query: Point,
    *,
    store: Optional["PointStore"] = None,
    deleted: Optional[Dict[int, int]] = None,
    snapshot: Optional["StoreSnapshot"] = None,
):
    """Generator yielding rows in increasing distance order, lazily.

    The streaming form of :func:`voronoi_knn_query` — callers can stop at
    any rank without choosing ``k`` up front (distance browsing).
    ``store`` batches each confirmation's neighbour distances exactly as
    in the eager form; the yielded order is identical either way.

    ``deleted`` (the store's tombstone map) filters tombstoned rows from
    the yields while still expanding through them, after correcting the
    live-index seed to the graph nearest neighbour — for synchronous
    consumers that drain the generator before the next mutation.

    ``snapshot`` (a :class:`~repro.core.store.StoreSnapshot`) gives the
    generator full MVCC isolation for consumers that stay suspended
    across mutations (the server's chunked streams): the Delaunay
    adjacency list is frozen with one O(n) pointer copy — incremental
    inserts patch the live table's rows *in place*, so the copy pins the
    admission-time graph (rows are immutable tuples) and, as a
    consequence, bounds the walk to admission-time row ids — and yields
    are filtered by :meth:`~repro.core.store.StoreSnapshot.visible`, so
    rows deleted after admission still appear and rows inserted after
    admission never do.  Distances read the snapshot's column views,
    which later appends cannot touch.
    """
    if snapshot is not None:
        bound = snapshot.size
        if bound == 0:
            return
        # Freeze the admission-time graph: a shallow copy keeps the old
        # (immutable) adjacency tuples even as add_point patches the
        # live list in place, and its length excludes later inserts.
        neighbor_table = backend.neighbor_table()[:bound]
        visible = snapshot.visible
    else:
        bound = len(points)
        if bound == 0:
            return
        neighbor_table = backend.neighbor_table()
        visible = None
    seed_entry = index.nearest_neighbor(query)
    assert seed_entry is not None
    _, seed_id = seed_entry
    if seed_id >= bound or deleted:
        # The live index may answer a row beyond the frozen horizon, or
        # (with tombstones) one that does not own the query's Voronoi
        # cell over the full graph point set — re-seed with the walk.
        seed_id = graph_nearest(
            neighbor_table, points, min(seed_id, bound - 1), query.x, query.y
        )
    tombstoned = deleted if deleted else ()

    visited = bytearray(bound)
    visited[seed_id] = 1
    frontier: List[Tuple[float, int]] = [
        (points[seed_id].squared_distance_to(query), seed_id)
    ]
    expand = (
        _batched_expand(store, query)
        if store is not None
        else _scalar_expand(points, query)
    )
    while frontier:
        _, current = heapq.heappop(frontier)
        if visible is not None:
            if visible(current):
                yield current
        elif current not in tombstoned:
            yield current
        expand(current, visited, frontier, neighbor_table)
