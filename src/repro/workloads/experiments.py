"""The paper's experiment harness: Tables I–II, Figures 4–7, batch throughput.

Two sweeps, exactly as in Section IV of the paper:

* **data-size sweep** (Table I; Figs. 4 and 5): query size fixed at 1 %,
  database size swept (paper: 1E5 … 1E6 in steps of 1E5);
* **query-size sweep** (Table II; Figs. 6 and 7): database size fixed at
  1E5, query size doubling 1 % … 32 %.

Each cell averages ``repetitions`` random 10-vertex query polygons (the
paper averages 1000).  Every repetition asserts that both methods return
identical result sets, so the harness doubles as a large-scale correctness
check.

Scale defaults are laptop-friendly (paper-scale runs take tens of minutes in
pure Python — pass ``--paper-scale`` or a custom config to reproduce the
full 1E6 sweep).  The figures are the same series as the tables plotted
against the sweep parameter; :func:`render_figure` prints them as aligned
series so the trend/crossover shapes can be read off directly.

Run from the command line::

    python -m repro.workloads.experiments table1
    python -m repro.workloads.experiments all --repetitions 20
    python -m repro.workloads.experiments table2 --paper-scale
    python -m repro.workloads.experiments batch

The ``batch`` target goes beyond the paper: it measures the throughput of
the batch query engine (:mod:`repro.engine`) against the one-query-at-a-time
loop on a production-style trace where hot regions repeat.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.random_shapes import random_query_polygon
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
)
from repro.workloads.generators import bursty_arrivals, uniform_points, zipf_ranks
from repro.workloads.queries import QueryWorkload

#: The paper's sweep values.
PAPER_DATA_SIZES = tuple(100_000 * i for i in range(1, 11))
PAPER_QUERY_SIZES = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
PAPER_REPETITIONS = 1000

#: Laptop-scale defaults: same *structure* (10 data-size steps, 6 doubling
#: query sizes), an order of magnitude fewer points and repetitions.
DEFAULT_DATA_SIZES = tuple(10_000 * i for i in range(1, 11))
DEFAULT_QUERY_SIZES = PAPER_QUERY_SIZES
DEFAULT_REPETITIONS = 15


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the two sweeps."""

    data_sizes: Tuple[int, ...] = DEFAULT_DATA_SIZES
    query_sizes: Tuple[float, ...] = DEFAULT_QUERY_SIZES
    #: query size used by the data-size sweep (paper: 1 %)
    fixed_query_size: float = 0.01
    #: data size used by the query-size sweep (paper: 1E5)
    fixed_data_size: int = 100_000
    repetitions: int = DEFAULT_REPETITIONS
    seed: int = 0
    index_kind: str = "rtree"
    #: "scipy" builds the neighbour graph via Qhull — identical neighbour
    #: sets, much faster construction for paper-scale datasets.  The pure
    #: backend is the default everywhere else in the library.
    backend_kind: str = "scipy"

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        """The full configuration of the paper's Section IV."""
        return ExperimentConfig(
            data_sizes=PAPER_DATA_SIZES,
            query_sizes=PAPER_QUERY_SIZES,
            fixed_data_size=100_000,
            repetitions=PAPER_REPETITIONS,
        )


@dataclass
class SweepRow:
    """One averaged cell of a sweep (one row of Table I or Table II)."""

    parameter: float  # data size, or query size fraction
    result_size: float
    traditional_candidates: float
    traditional_time_ms: float
    traditional_redundant: float
    voronoi_candidates: float
    voronoi_time_ms: float
    voronoi_redundant: float
    repetitions: int = 0

    @property
    def candidate_saving(self) -> float:
        """Fraction of candidates removed by the Voronoi method.

        The paper's "number of candidates saved": at 1E5/1 % it reports
        ``1 - 648.47/999.2 = 35.1 %``, i.e. the ratio of the *full*
        candidate sets.
        """
        if self.traditional_candidates == 0:
            return 0.0
        return 1.0 - self.voronoi_candidates / self.traditional_candidates

    @property
    def redundant_saving(self) -> float:
        """Fraction of redundant validations removed (Figs. 5 and 7 series)."""
        if self.traditional_redundant == 0:
            return 0.0
        return 1.0 - self.voronoi_redundant / self.traditional_redundant

    @property
    def time_saving(self) -> float:
        """Fraction of query time removed: ``1 - t_voronoi / t_traditional``."""
        if self.traditional_time_ms == 0:
            return 0.0
        return 1.0 - self.voronoi_time_ms / self.traditional_time_ms


def _measure_cell(
    db: SpatialDatabase,
    query_size: float,
    repetitions: int,
    seed: int,
    parameter: float,
) -> SweepRow:
    """Average both methods over ``repetitions`` random query polygons."""
    workload = QueryWorkload(query_size=query_size, seed=seed)
    areas = workload.areas(repetitions)
    totals = {
        "result": 0.0,
        "t_cand": 0.0,
        "t_time": 0.0,
        "t_red": 0.0,
        "v_cand": 0.0,
        "v_time": 0.0,
        "v_red": 0.0,
    }
    for area in areas:
        voronoi = db.query(AreaQuery(area, method="voronoi")).record
        traditional = db.query(AreaQuery(area, method="traditional")).record
        if voronoi.ids != traditional.ids:
            raise AssertionError(
                "methods disagree: the harness found a correctness bug "
                f"(|voronoi|={len(voronoi.ids)}, "
                f"|traditional|={len(traditional.ids)})"
            )
        totals["result"] += voronoi.stats.result_size
        totals["t_cand"] += traditional.stats.candidates
        totals["t_time"] += traditional.stats.time_ms
        totals["t_red"] += traditional.stats.redundant_validations
        totals["v_cand"] += voronoi.stats.candidates
        totals["v_time"] += voronoi.stats.time_ms
        totals["v_red"] += voronoi.stats.redundant_validations
    n = float(len(areas))
    return SweepRow(
        parameter=parameter,
        result_size=totals["result"] / n,
        traditional_candidates=totals["t_cand"] / n,
        traditional_time_ms=totals["t_time"] / n,
        traditional_redundant=totals["t_red"] / n,
        voronoi_candidates=totals["v_cand"] / n,
        voronoi_time_ms=totals["v_time"] / n,
        voronoi_redundant=totals["v_red"] / n,
        repetitions=int(n),
    )


def _build_database(
    n: int, config: ExperimentConfig
) -> SpatialDatabase:
    points = uniform_points(n, seed=config.seed)
    db = SpatialDatabase.from_points(
        points,
        index_kind=config.index_kind,
        backend_kind=config.backend_kind,
    )
    return db.prepare()


def run_data_size_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRow]:
    """Table I / Fig. 4 / Fig. 5: vary data size at fixed 1 % query size."""
    rows: List[SweepRow] = []
    for n in config.data_sizes:
        if progress is not None:
            progress(f"data size {n:,}: building database...")
        db = _build_database(n, config)
        row = _measure_cell(
            db,
            config.fixed_query_size,
            config.repetitions,
            seed=config.seed + n,
            parameter=float(n),
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"data size {n:,}: voronoi {row.voronoi_time_ms:.1f} ms vs "
                f"traditional {row.traditional_time_ms:.1f} ms"
            )
    return rows


def run_query_size_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRow]:
    """Table II / Fig. 6 / Fig. 7: vary query size at fixed data size."""
    if progress is not None:
        progress(
            f"building database of {config.fixed_data_size:,} points..."
        )
    db = _build_database(config.fixed_data_size, config)
    rows: List[SweepRow] = []
    for query_size in config.query_sizes:
        row = _measure_cell(
            db,
            query_size,
            config.repetitions,
            seed=config.seed + int(query_size * 10_000),
            parameter=query_size,
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"query size {query_size:.0%}: voronoi "
                f"{row.voronoi_time_ms:.1f} ms vs traditional "
                f"{row.traditional_time_ms:.1f} ms"
            )
    return rows


# -- batch-throughput experiment ---------------------------------------------


@dataclass
class BatchThroughputRow:
    """One execution strategy's throughput on the shared query trace."""

    strategy: str
    total_ms: float
    queries_per_second: float
    #: throughput relative to the single-query voronoi loop baseline
    speedup: float
    #: repeated regions answered once per batch (intra-batch dedup); the
    #: cross-batch LRU cache never fires here because each strategy
    #: submits the trace as one batch call
    duplicate_hits: int = 0
    method_counts: Dict[str, int] = field(default_factory=dict)


#: The strategies measured by :func:`run_batch_throughput_experiment`,
#: in reporting order.
TRACE_STRATEGIES = (
    "loop/voronoi",
    "loop/traditional",
    "batch/voronoi",
    "batch/traditional",
    "batch/auto",
)

#: Strategies meaningful for heterogeneous (mixed-kind) traces, where a
#: single forced area method does not exist.
MIXED_TRACE_STRATEGIES = (
    "loop/auto",
    "batch/auto",
)

#: Strategies for composite traces: leaves executed independently (one
#: :meth:`SpatialDatabase.query` per leaf, set-merged in Python — the
#: baseline the acceptance bar compares against) vs the engine's
#: batch-decomposition (sibling leaves share frontiers/seed walks).
COMPOSITE_TRACE_STRATEGIES = (
    "leaves/loop",
    "composite/batch",
)


def run_trace_strategy(db: SpatialDatabase, trace: List[Query], strategy: str):
    """Answer a spec ``trace`` with one strategy; returns per-request ids.

    Shared by the experiment harness and ``benchmarks/bench_batch_engine.py``
    so both measure exactly the same execution paths.  ``loop/<method>``
    issues one :meth:`SpatialDatabase.query` per spec; ``batch/<method>``
    uses :meth:`SpatialDatabase.query_batch` with the cross-batch cache
    disabled (isolating the sharing machinery); ``*/auto`` keeps each
    spec's own method field (the planner routes), and ``batch/auto`` is
    the full engine — planner plus LRU cache, cleared first so repeats
    within the trace are served by intra-batch dedup, not by earlier
    runs.  A non-auto method is applied via ``spec.with_method`` and only
    makes sense for kind-homogeneous traces.  Composite traces use
    ``leaves/loop`` (every leaf answered independently, set-merged in
    Python — the no-sharing baseline) vs ``composite/batch`` (the
    engine's batch-decomposition, cross-batch cache disabled).
    """
    if strategy == "leaves/loop":
        return [composite_reference_ids(db, spec) for spec in trace]
    if strategy == "composite/batch":
        db.engine.cache.clear()
        return [
            r.ids() for r in db.query_batch(trace, use_cache=False)
        ]
    kind, _, method = strategy.partition("/")
    if kind == "loop":
        if method == "auto":
            return [db.query(spec).ids() for spec in trace]
        return [
            db.query(spec.with_method(method)).ids() for spec in trace
        ]
    if kind != "batch":
        raise ValueError(f"unknown strategy {strategy!r}")
    if method == "auto":
        db.engine.cache.clear()
        return [r.ids() for r in db.query_batch(trace)]
    return [
        r.ids()
        for r in db.query_batch(
            [spec.with_method(method) for spec in trace], use_cache=False
        )
    ]


def make_query_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
) -> List[AreaQuery]:
    """A production-style trace: ``distinct`` area specs, each hit
    ``repeat`` times, shuffled deterministically.

    Real area-query traffic repeats itself (hot map tiles, dashboards,
    geofence monitors); ``repeat`` controls how hot the trace is.
    ``repeat=1`` gives an all-distinct trace.
    """
    areas = QueryWorkload(query_size=query_size, seed=seed).areas(distinct)
    specs = [AreaQuery(area) for area in areas]
    trace = [spec for spec in specs for _ in range(repeat)]
    random.Random(seed + 1).shuffle(trace)
    return trace


def make_mixed_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
    max_k: int = 16,
) -> List[Query]:
    """A heterogeneous trace cycling through all four query kinds.

    ``distinct`` specs are generated round-robin — area (a random query
    polygon), window (a same-scale rectangle), kNN (random position,
    random ``k`` up to ``max_k``), nearest — then each is repeated
    ``repeat`` times and the whole trace deterministically shuffled.
    This is the acceptance workload for heterogeneous batching: the
    engine must group the kinds back together to share work.
    """
    rng = random.Random(seed)
    areas = QueryWorkload(query_size=query_size, seed=seed).areas(distinct)
    specs: List[Query] = []
    for i, area in enumerate(areas):
        variant = i % 4
        if variant == 0:
            specs.append(AreaQuery(area))
        elif variant == 1:
            specs.append(WindowQuery(area.mbr))
        elif variant == 2:
            specs.append(
                KnnQuery(
                    Point(rng.random(), rng.random()),
                    1 + rng.randrange(max_k),
                )
            )
        else:
            specs.append(NearestQuery(Point(rng.random(), rng.random())))
    trace = [spec for spec in specs for _ in range(repeat)]
    random.Random(seed + 1).shuffle(trace)
    return trace


def make_composite_trace(
    query_size: float,
    distinct: int,
    seed: int = 0,
    parts: int = 4,
    method: str = "voronoi",
    kinds: Tuple[type, ...] = (
        UnionQuery,
        IntersectionQuery,
        DifferenceQuery,
    ),
) -> List[CompositeQuery]:
    """``distinct`` composite specs, each over ``parts`` sibling regions.

    Each composite models a hot-spot dashboard panel: ``parts`` random
    query polygons (each of ``query_size`` area fraction) clustered
    around a random centre — jittered by ~10 % of their side so siblings
    overlap heavily — combined round-robin over ``kinds``.  The
    clustering is what the engine's decomposition exploits: with
    ``method="voronoi"`` (the paper's algorithm, the default here) every
    sibling after the first gets its expansion seed by *walking* the
    previous seed across the Delaunay graph instead of descending the
    index, which is where the measured composite speedup comes from.
    """
    rng = random.Random(seed)
    specs: List[CompositeQuery] = []
    for i in range(distinct):
        cx = rng.uniform(0.15, 0.85)
        cy = rng.uniform(0.15, 0.85)
        leaves = []
        for _ in range(parts):
            polygon = random_query_polygon(query_size, rng=rng)
            mbr = polygon.mbr
            side = max(mbr.max_x - mbr.min_x, mbr.max_y - mbr.min_y)
            dx = (
                cx
                - (mbr.min_x + mbr.max_x) / 2.0
                + rng.uniform(-0.1, 0.1) * side
            )
            dy = (
                cy
                - (mbr.min_y + mbr.max_y) / 2.0
                + rng.uniform(-0.1, 0.1) * side
            )
            leaves.append(
                AreaQuery(
                    Polygon(
                        [
                            Point(p.x + dx, p.y + dy)
                            for p in polygon.vertices
                        ]
                    ),
                    method=method,
                )
            )
        specs.append(kinds[i % len(kinds)](tuple(leaves)))
    return specs


def composite_reference_ids(
    db: SpatialDatabase, spec: Query
) -> List[int]:
    """Answer ``spec`` by executing every leaf *independently*.

    The no-sharing baseline for the composite acceptance bar: each leaf
    runs as its own :meth:`SpatialDatabase.query`, the id sets merge
    with Python set operations, and the composite's own options apply on
    top — semantically identical to the engine's decomposition, without
    any cross-leaf sharing.  Non-composite specs fall through to a
    plain single query.
    """
    if not isinstance(spec, CompositeQuery):
        return db.query(spec).ids()
    part_ids = [composite_reference_ids(db, part) for part in spec.parts]
    if isinstance(spec, UnionQuery):
        merged = set().union(*part_ids)
    elif isinstance(spec, IntersectionQuery):
        merged = set(part_ids[0]).intersection(*part_ids[1:])
    else:
        merged = set(part_ids[0]).difference(*part_ids[1:])
    ids = sorted(merged)
    if spec.predicate is not None:
        predicate = spec.predicate
        point = db.point
        ids = [i for i in ids if predicate(point(i))]
    if spec.limit is not None:
        ids = ids[: spec.limit]
    return ids


def run_composite_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 24,
    parts: int = 4,
    query_size: float = 0.001,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Composite decomposition vs independent leaf execution.

    Same protocol as :func:`run_batch_throughput_experiment`: one shared
    trace of composite specs (:func:`make_composite_trace`), each
    strategy best-of-``rounds``, ids asserted identical.  The
    acceptance criterion of the composite algebra is that
    ``composite/batch`` beats ``leaves/loop`` on unions of four or more
    sibling regions (the benchmark asserts >= 1.3x).
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_composite_trace(
        query_size, distinct, seed=config.seed, parts=parts
    )
    if progress is not None:
        progress(
            f"composite trace: {len(trace)} specs x {parts} sibling "
            f"regions each"
        )
    expected = [composite_reference_ids(db, spec) for spec in trace]
    return _time_strategies(
        db, trace, COMPOSITE_TRACE_STRATEGIES, expected, rounds, progress
    )


def make_serve_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
    cluster: int = 4,
    shape: str = "mixed",
    limit: Optional[int] = None,
) -> List[Query]:
    """A multi-tenant trace: clustered hot-spot specs, repeated.

    Models N tenants watching a few hot areas *at the same time* (a
    live event, a dashboard auto-refresh tick): ``distinct`` specs are
    generated in clusters of ``cluster`` near-coincident regions around
    shared centres, emitted cluster by cluster, and the whole trace is
    repeated ``repeat`` times.  Submission order is deliberately
    cluster-contiguous: when the trace is dealt round-robin to N
    concurrent connections, each coalescing wave carries one cluster's
    near-coincident members from *different* clients — the traffic
    shape cross-client batching exists for.  Clusters alternate between
    the two sharing-friendly shapes of real map traffic:

    * **hot tiles** — jittered same-size :class:`WindowQuery` rectangles
      (one viewport, nudged per tenant): batched, the engine's window
      grouping answers the whole cluster with **one** shared index
      traversal;
    * **hot regions** — jittered voronoi-method :class:`AreaQuery`
      polygons: batched, expansion seeds chain across the cluster by
      Delaunay-graph walks instead of per-query index descents.

    Sequential round-trips (batches of one) can exploit neither, which
    is exactly the gap the served-throughput experiment measures; exact
    repeats (the ``repeat`` rounds) hit the LRU result cache in *both*
    settings, so they do not skew the comparison.  ``shape`` restricts
    the mix: ``"tiles"`` (all window clusters — the tile-server
    workload ``benchmarks/bench_server.py`` asserts on), ``"regions"``
    (all voronoi-method polygon clusters), or ``"mixed"`` (alternating,
    the default).  ``limit`` caps every spec's result rows (the
    paginated "first page per viewport" pattern of real dashboard
    traffic): execution still scans the full window — only the
    response payload is bounded — so the served-throughput comparison
    keeps measuring execution coalescing rather than per-request id
    transport once queries themselves are fast.
    """
    if shape not in ("mixed", "tiles", "regions"):
        raise ValueError(
            f"shape must be 'mixed', 'tiles', or 'regions', got {shape!r}"
        )
    rng = random.Random(seed)
    specs: List[Query] = []
    tile = shape != "regions"
    while len(specs) < distinct:
        cx = rng.uniform(0.15, 0.85)
        cy = rng.uniform(0.15, 0.85)
        members = min(cluster, distinct - len(specs))
        if tile:
            side = math.sqrt(query_size)
            for _ in range(members):
                jx = rng.uniform(-0.02, 0.02) * side
                jy = rng.uniform(-0.02, 0.02) * side
                specs.append(
                    WindowQuery(
                        (
                            cx - side / 2 + jx,
                            cy - side / 2 + jy,
                            cx + side / 2 + jx,
                            cy + side / 2 + jy,
                        ),
                        limit=limit,
                    )
                )
        else:
            for _ in range(members):
                polygon = random_query_polygon(query_size, rng=rng)
                mbr = polygon.mbr
                side = max(mbr.max_x - mbr.min_x, mbr.max_y - mbr.min_y)
                dx = (
                    cx
                    - (mbr.min_x + mbr.max_x) / 2.0
                    + rng.uniform(-0.1, 0.1) * side
                )
                dy = (
                    cy
                    - (mbr.min_y + mbr.max_y) / 2.0
                    + rng.uniform(-0.1, 0.1) * side
                )
                specs.append(
                    AreaQuery(
                        Polygon(
                            [
                                Point(p.x + dx, p.y + dy)
                                for p in polygon.vertices
                            ]
                        ),
                        method="voronoi",
                        limit=limit,
                    )
                )
        if shape == "mixed":
            tile = not tile
    return [spec for _ in range(repeat) for spec in specs]


def serve_trace_sequential(host: str, port: int, trace: List[Query]):
    """Answer ``trace`` over the wire, one blocking round-trip at a time.

    The no-concurrency baseline of the served-throughput experiment: a
    single :class:`~repro.server.client.QueryClient` submits each spec
    and waits for its result before sending the next, so every request
    is its own admission window (a batch of one — no cross-client
    sharing, though the server's LRU cache still sees the repeats).
    Returns the per-request id lists in trace order.
    """
    from repro.server.client import QueryClient

    with QueryClient(host, port) as client:
        return [client.query(spec).ids for spec in trace]


def serve_trace_concurrent(
    host: str, port: int, trace: List[Query], clients: int
):
    """Answer ``trace`` over the wire from ``clients`` concurrent clients.

    The trace is split round-robin over ``clients`` threads, each
    holding its own blocking connection; a barrier releases them
    together, so their requests land inside shared admission windows
    and the server coalesces them into cross-client engine batches.
    Returns the per-request id lists re-assembled in trace order (plus
    raising any client thread's failure).
    """
    import threading

    from repro.server.client import QueryClient

    shards = [trace[i::clients] for i in range(clients)]
    results: List[Optional[List[List[int]]]] = [None] * clients
    failures: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def worker(position: int) -> None:
        try:
            with QueryClient(host, port) as client:
                barrier.wait()
                results[position] = [
                    client.query(spec).ids for spec in shards[position]
                ]
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    merged: List[Optional[List[int]]] = [None] * len(trace)
    for position, shard_ids in enumerate(results):
        assert shard_ids is not None
        for offset, ids in enumerate(shard_ids):
            merged[position + offset * clients] = ids
    return merged


def run_serve_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    clients: int = 8,
    distinct: int = 16,
    repeat: int = 4,
    query_size: float = 0.002,
    rounds: int = 3,
    window_ms: float = 5.0,
    cluster: int = 8,
    shape: str = "mixed",
    limit: Optional[int] = None,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Served throughput: N coalesced clients vs sequential round-trips.

    Two server phases over the same database and the same repeated trace
    (:func:`make_serve_trace`), results asserted id-identical:

    * ``serve/sequential`` — one client, one blocking round-trip per
      request, against a server with ``window_ms=0`` (every request
      flushes immediately: the *strongest* sequential configuration,
      with no admission latency to unfairly pad the baseline);
    * ``serve/coalesced`` — ``clients`` concurrent connections against a
      server with the given ``window_ms``, so requests from different
      connections land in shared admission windows and execute as one
      cross-client engine batch.

    The engine's LRU cache is cleared before every timed round of both
    phases, so each round pays the same cold-cache cost and the ratio
    isolates what coalescing adds: shared execution, intra-batch dedup,
    and round-trip overlap.  Each phase reports its best of ``rounds``.
    """
    from repro.server.app import ServerThread

    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_serve_trace(
        query_size,
        distinct,
        repeat,
        seed=config.seed,
        cluster=cluster,
        shape=shape,
        limit=limit,
    )
    if progress is not None:
        progress(
            f"served trace: {len(trace)} requests over {distinct} distinct "
            f"regions, {clients} clients"
        )
    expected = [db.query(spec).ids() for spec in trace]

    rows: List[BatchThroughputRow] = []
    phases = (
        ("serve/sequential", 0.0, 1),
        (f"serve/coalesced x{clients}", window_ms, clients),
    )
    for label, phase_window, phase_clients in phases:
        with ServerThread(db, window_ms=phase_window) as server:
            best = float("inf")
            for _ in range(rounds):
                db.engine.cache.clear()
                totals_before = db.engine.totals.duplicate_hits
                started = time.perf_counter()
                if phase_clients == 1:
                    ids = serve_trace_sequential(
                        server.host, server.port, trace
                    )
                else:
                    ids = serve_trace_concurrent(
                        server.host, server.port, trace, phase_clients
                    )
                elapsed = time.perf_counter() - started
                if ids != expected:
                    raise AssertionError(
                        "served strategy returned different ids than "
                        "local execution"
                    )
                best = min(best, elapsed)
            duplicate_hits = db.engine.totals.duplicate_hits - totals_before
            coalescer_stats = server.server.coalescer.stats
        total_ms = best * 1000.0
        rows.append(
            BatchThroughputRow(
                strategy=label,
                total_ms=total_ms,
                queries_per_second=len(trace) / (total_ms / 1000.0),
                speedup=1.0,
                duplicate_hits=duplicate_hits,
                method_counts={},
            )
        )
        if progress is not None:
            progress(
                f"{label}: {total_ms:.1f} ms "
                f"(batches: {coalescer_stats.batch_sizes})"
            )
    baseline = rows[0].total_ms
    for row in rows:
        row.speedup = baseline / row.total_ms if row.total_ms else 0.0
    return rows


def run_batch_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 30,
    repeat: int = 3,
    query_size: float = 0.01,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Measure single-query vs batched throughput on one trace.

    ``database`` lets callers reuse an already-built database (the CLI
    does, to avoid paying the build twice); when given, ``data_size`` is
    ignored.

    Strategies (all answering the identical trace, results asserted
    id-identical):

    * ``loop/voronoi`` — the baseline: one :meth:`SpatialDatabase.query`
      per spec, forced to the paper's method;
    * ``loop/traditional`` — same loop with the filter–refine baseline;
    * ``batch/voronoi``, ``batch/traditional`` — the batch engine with the
      method fixed and the result cache disabled (isolates the sharing
      machinery: Hilbert ordering, shared windows, seed reuse);
    * ``batch/auto`` — the full engine: planner-chosen methods plus the
      LRU result cache (cleared before each round, so repeats within the
      trace are answered by intra-batch dedup — reported as
      ``duplicate_hits``).

    Each strategy runs ``rounds`` times; the fastest round is reported
    (standard practice to suppress scheduler noise).
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_query_trace(
        query_size, distinct, repeat, seed=config.seed
    )
    if progress is not None:
        progress(
            f"trace: {len(trace)} requests over {distinct} distinct regions"
        )

    expected = [
        db.query(spec.with_method("voronoi")).ids() for spec in trace
    ]
    return _time_strategies(
        db, trace, TRACE_STRATEGIES, expected, rounds, progress
    )


def run_mixed_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 32,
    repeat: int = 3,
    query_size: float = 0.01,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Heterogeneous-batch throughput: mixed kinds, loop vs batch.

    Same protocol as :func:`run_batch_throughput_experiment`, but the
    trace mixes all four query kinds (:func:`make_mixed_trace`) and only
    the planner-routed strategies are meaningful
    (:data:`MIXED_TRACE_STRATEGIES`).  Ids are asserted identical between
    loop and batch execution for every request.
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_mixed_trace(
        query_size, distinct, repeat, seed=config.seed
    )
    if progress is not None:
        kinds = sorted({spec.kind for spec in trace})
        progress(
            f"mixed trace: {len(trace)} requests over {distinct} distinct "
            f"specs ({', '.join(kinds)})"
        )
    expected = [db.query(spec).ids() for spec in trace]
    return _time_strategies(
        db, trace, MIXED_TRACE_STRATEGIES, expected, rounds, progress
    )


def _time_strategies(
    db: SpatialDatabase,
    trace: List[Query],
    strategies: Sequence[str],
    expected: List[List[int]],
    rounds: int,
    progress: Optional[Callable[[str], None]],
) -> List[BatchThroughputRow]:
    """Best-of-``rounds`` timing of each strategy on one shared trace."""

    def timed(run) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            ids = run()
            best = min(best, time.perf_counter() - started)
            if ids != expected:
                raise AssertionError(
                    "batch strategy returned different ids than the loop"
                )
        return best * 1000.0

    rows: List[BatchThroughputRow] = []
    for strategy in strategies:
        total = timed(lambda s=strategy: run_trace_strategy(db, trace, s))
        batch_stats = (
            db.engine.last_batch_stats
            if strategy.startswith("batch/")
            else None
        )
        rows.append(
            BatchThroughputRow(
                strategy=strategy,
                total_ms=total,
                queries_per_second=len(trace) / (total / 1000.0),
                speedup=1.0,
                duplicate_hits=(
                    batch_stats.duplicate_hits if batch_stats else 0
                ),
                method_counts=(
                    dict(batch_stats.method_counts) if batch_stats else {}
                ),
            )
        )
        if progress is not None:
            progress(f"{strategy}: {total:.1f} ms")

    baseline = rows[0].total_ms
    for row in rows:
        row.speedup = baseline / row.total_ms if row.total_ms else 0.0
    return rows


def render_batch_table(rows: Sequence[BatchThroughputRow]) -> str:
    """Render the batch-throughput strategies as an aligned table."""
    header = (
        f"{'strategy':>18} | {'total ms':>9} | {'queries/s':>10} | "
        f"{'speedup':>8} | notes"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        notes = []
        if row.duplicate_hits:
            notes.append(f"{row.duplicate_hits} dedup hits")
        # method_counts is informative only where the planner chose; on
        # fixed-method rows it would just echo the forced method
        if row.method_counts and row.strategy.endswith("/auto"):
            chosen = ", ".join(
                f"{count} {method}"
                for method, count in sorted(row.method_counts.items())
            )
            notes.append(f"planner: {chosen}")
        lines.append(
            f"{row.strategy:>18} | {row.total_ms:>9.1f} | "
            f"{row.queries_per_second:>10.0f} | {row.speedup:>7.2f}x | "
            f"{'; '.join(notes)}"
        )
    return "\n".join(lines)


# -- rendering ----------------------------------------------------------------


def _format_parameter(value: float, as_query_size: bool) -> str:
    if as_query_size:
        return f"{value:.0%}"
    return f"{value:,.0f}"


def render_table(
    rows: Sequence[SweepRow],
    *,
    parameter_label: str,
    as_query_size: bool = False,
) -> str:
    """Render a sweep in the layout of the paper's Tables I and II."""
    header = (
        f"{parameter_label:>12} | {'Result size':>11} | "
        f"{'Trad. cand':>10} {'Trad. ms':>9} | "
        f"{'Vor. cand':>10} {'Vor. ms':>9} | "
        f"{'cand. saved':>11} {'time saved':>10}"
    )
    separator = "-" * len(header)
    lines = [header, separator]
    for row in rows:
        lines.append(
            f"{_format_parameter(row.parameter, as_query_size):>12} | "
            f"{row.result_size:>11.2f} | "
            f"{row.traditional_candidates:>10.2f} "
            f"{row.traditional_time_ms:>9.3f} | "
            f"{row.voronoi_candidates:>10.2f} "
            f"{row.voronoi_time_ms:>9.3f} | "
            f"{row.candidate_saving:>10.1%} "
            f"{row.time_saving:>10.1%}"
        )
    return "\n".join(lines)


def render_figure(
    rows: Sequence[SweepRow],
    *,
    value: str,
    title: str,
    as_query_size: bool = False,
    width: int = 60,
) -> str:
    """ASCII rendering of one of the paper's figures.

    ``value`` selects the y-series: ``"time"`` (Figs. 4 and 6) or
    ``"redundant"`` (Figs. 5 and 7).  Both methods are drawn as horizontal
    bars per sweep point, so the gap and its growth are visible in a
    terminal.
    """
    if value == "time":
        series = [
            (row.voronoi_time_ms, row.traditional_time_ms) for row in rows
        ]
        unit = "ms"
    elif value == "redundant":
        series = [
            (row.voronoi_redundant, row.traditional_redundant) for row in rows
        ]
        unit = "validations"
    else:
        raise ValueError(
            f"value must be 'time' or 'redundant', got {value!r}"
        )
    peak = max(max(pair) for pair in series) or 1.0
    lines = [title, f"(bar unit: {unit}; V = Voronoi method, T = traditional)"]
    for row, (v_value, t_value) in zip(rows, series):
        label = _format_parameter(row.parameter, as_query_size)
        v_bar = "#" * max(1, int(round(v_value / peak * width)))
        t_bar = "#" * max(1, int(round(t_value / peak * width)))
        lines.append(f"{label:>12} V |{v_bar:<{width}}| {v_value:,.1f}")
        lines.append(f"{'':>12} T |{t_bar:<{width}}| {t_value:,.1f}")
    return "\n".join(lines)


# -- command line ---------------------------------------------------------------

# ---------------------------------------------------------------------------
# Production traffic realism: skewed sessions, tail latency, overload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionOp:
    """One operation of a production session, tagged with its session.

    ``kind`` is ``window``/``area``/``knn`` (reads), ``insert`` (a
    write), or ``subscribe``/``unsubscribe`` (live queries); ``payload``
    is the matching :class:`~repro.query.spec.Query` spec or the insert
    coordinate pair.  The ``session`` tag routes every op of one tenant
    to the same connection when the trace is driven over the wire.
    """

    kind: str
    payload: object
    session: int


def make_production_sessions(
    *,
    sessions: int = 24,
    ops_per_session: int = 12,
    tiles: int = 12,
    alpha: float = 1.1,
    query_size: float = 0.002,
    write_fraction: float = 0.08,
    subscribe_fraction: float = 0.25,
    knn_fraction: float = 0.15,
    area_fraction: float = 0.1,
    limit: Optional[int] = 64,
    seed: int = 0,
) -> List[SessionOp]:
    """A skewed mixed read/write/subscribe trace of tenant sessions.

    The unit square is cut into a ``tiles`` x ``tiles`` grid whose
    popularity follows a Zipf law (:func:`~repro.workloads.generators.zipf_ranks`
    with exponent ``alpha``, ranks scattered spatially): every session
    picks its *home tile* by popularity, so a handful of hot tiles
    absorb most sessions while the long tail stays sparsely touched —
    the defining skew of production map traffic, and the access pattern
    the server's LRU cache and coalescer actually face.

    Each session issues ``ops_per_session`` operations against its home
    tile: mostly jittered viewport :class:`WindowQuery` reads (capped at
    ``limit`` rows, the first-page pattern), a ``knn_fraction`` of
    k-nearest probes and an ``area_fraction`` of Voronoi-method polygon
    reads at the tile centre, and a ``write_fraction`` of point inserts
    (a vehicle reporting in).  With probability ``subscribe_fraction`` a
    session brackets its reads in a standing subscription on its
    viewport — opened first, torn down last — so live-query fan-out
    rides the same trace.  Ops are interleaved round-robin across
    sessions (concurrent tenants, not one after another).  Deterministic
    in ``seed``.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if ops_per_session < 2:
        raise ValueError(
            f"ops_per_session must be >= 2, got {ops_per_session}"
        )
    if tiles < 1:
        raise ValueError(f"tiles must be >= 1, got {tiles}")
    rng = random.Random(seed)
    side = 1.0 / tiles
    # Scatter popularity ranks over the grid so hot tiles are not
    # spatially adjacent (hot spots in a city are not one contiguous
    # blob) — rank r of the Zipf draw maps to a shuffled tile.
    order = list(range(tiles * tiles))
    rng.shuffle(order)
    homes = [
        order[rank]
        for rank in zipf_ranks(
            tiles * tiles, sessions, alpha=alpha, seed=rng.randrange(2**31)
        )
    ]

    def tile_rect(tile: int) -> Tuple[float, float, float, float]:
        """The bounding rectangle of grid tile ``tile``."""
        tx, ty = divmod(tile, tiles)
        return (tx * side, ty * side, (tx + 1) * side, (ty + 1) * side)

    per_session: List[List[SessionOp]] = []
    for session, tile in enumerate(homes):
        min_x, min_y, max_x, max_y = tile_rect(tile)
        cx = (min_x + max_x) / 2.0
        cy = (min_y + max_y) / 2.0
        view = math.sqrt(query_size)
        ops: List[SessionOp] = []
        subscribed = rng.random() < subscribe_fraction
        if subscribed:
            ops.append(
                SessionOp(
                    "subscribe",
                    WindowQuery((min_x, min_y, max_x, max_y)),
                    session,
                )
            )
        body = ops_per_session - (2 if subscribed else 0)
        for _ in range(max(1, body)):
            draw = rng.random()
            jx = rng.uniform(-0.3, 0.3) * side
            jy = rng.uniform(-0.3, 0.3) * side
            if draw < write_fraction:
                ops.append(
                    SessionOp(
                        "insert",
                        (
                            min(max(cx + jx, 0.0), 1.0),
                            min(max(cy + jy, 0.0), 1.0),
                        ),
                        session,
                    )
                )
            elif draw < write_fraction + knn_fraction:
                ops.append(
                    SessionOp(
                        "knn", KnnQuery((cx + jx, cy + jy), 8), session
                    )
                )
            elif draw < write_fraction + knn_fraction + area_fraction:
                polygon = random_query_polygon(query_size, rng=rng)
                mbr = polygon.mbr
                dx = cx - (mbr.min_x + mbr.max_x) / 2.0
                dy = cy - (mbr.min_y + mbr.max_y) / 2.0
                ops.append(
                    SessionOp(
                        "area",
                        AreaQuery(
                            Polygon(
                                [
                                    Point(p.x + dx, p.y + dy)
                                    for p in polygon.vertices
                                ]
                            ),
                            method="voronoi",
                            limit=limit,
                        ),
                        session,
                    )
                )
            else:
                ops.append(
                    SessionOp(
                        "window",
                        WindowQuery(
                            (
                                cx + jx - view / 2,
                                cy + jy - view / 2,
                                cx + jx + view / 2,
                                cy + jy + view / 2,
                            ),
                            limit=limit,
                        ),
                        session,
                    )
                )
        if subscribed:
            ops.append(SessionOp("unsubscribe", None, session))
        per_session.append(ops)
    # Round-robin interleave: tenants are concurrent, so their ops mix
    # on the wire instead of running session after session.
    interleaved: List[SessionOp] = []
    cursor = 0
    while any(per_session):
        ops = per_session[cursor % sessions]
        if ops:
            interleaved.append(ops.pop(0))
        cursor += 1
    return interleaved


@dataclass
class OpenLoopReport:
    """What an open-loop drive observed, client-side and server-side.

    ``client_latency_ms`` maps op kind to the sorted client-observed
    round-trip milliseconds of successful responses; ``errors`` counts
    error frames by code; ``stats_frame`` is the server's closing
    ``stats`` response (with the ``latency`` section recorded by the
    server itself).
    """

    offered: int
    answered: int
    duration_s: float
    client_latency_ms: Dict[str, List[float]]
    errors: Dict[str, int]
    notifications: int
    stats_frame: Dict


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def drive_open_loop(
    host: str,
    port: int,
    ops: Sequence[SessionOp],
    arrivals: Sequence[float],
    *,
    connections: int = 6,
    time_scale: float = 1.0,
) -> OpenLoopReport:
    """Send ``ops`` at their ``arrivals`` timestamps; measure what comes back.

    The *open-loop* load model: operation ``i`` goes out at
    ``arrivals[i] * time_scale`` seconds after the drive starts,
    whether or not earlier responses have arrived — exactly how
    production traffic behaves (users do not politely wait for each
    other), and the only model under which queueing delay and overload
    are observable at all.  A closed loop self-throttles: it can never
    offer more than the server absorbs, so its latencies look flat
    right up to collapse.

    Sessions are dealt to ``connections`` sockets (every op of one
    session stays on its session's connection); each connection runs a
    paced writer thread and a reader thread that timestamps responses.
    Error frames are counted by code, never raised — shed requests are
    data here, not failures.  Returns an :class:`OpenLoopReport` whose
    ``stats_frame`` is fetched over a fresh connection after the drive.
    """
    import json as _json
    import socket as _socket
    import threading

    if len(ops) != len(arrivals):
        raise ValueError(
            f"ops and arrivals must pair up, got {len(ops)} ops "
            f"and {len(arrivals)} arrivals"
        )
    from repro.query.serialize import spec_to_dict

    per_connection: List[List[Tuple[float, SessionOp]]] = [
        [] for _ in range(connections)
    ]
    for op, arrival in zip(ops, arrivals):
        per_connection[op.session % connections].append(
            (arrival * time_scale, op)
        )

    latencies: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    notifications = [0]
    answered = [0]
    guard = threading.Lock()
    failures: List[BaseException] = []

    def run_connection(plan: List[Tuple[float, SessionOp]]) -> None:
        if not plan:
            return
        sock = _socket.create_connection((host, port), timeout=60)
        reader = sock.makefile("rb")
        try:
            hello = _json.loads(reader.readline())
            assert hello["type"] == "hello"
            # Per-id FIFO: an unsubscribe reuses its subscription's wire
            # id, and the open loop may send it while the subscribed ack
            # is still in flight — a plain dict entry would be
            # overwritten and one response would find nothing to match.
            pending: Dict[int, List[Tuple[str, float]]] = {}
            subscription_ids: Dict[int, int] = {}
            local_notifications = 0
            local_latencies: Dict[str, List[float]] = {}
            local_errors: Dict[str, int] = {}
            done = threading.Event()

            def read_responses() -> None:
                expected = len(plan)
                seen = 0
                nonlocal local_notifications
                while seen < expected:
                    frame = _json.loads(reader.readline())
                    received = time.perf_counter()
                    if frame["type"] == "notify":
                        # A notification reuses its subscription's id:
                        # never pop the pending entry for it.
                        local_notifications += 1
                        continue
                    queue = pending.get(frame.get("id"))
                    kind_latency = queue.pop(0) if queue else None
                    seen += 1
                    if frame["type"] == "error":
                        code = frame["code"]
                        local_errors[code] = (
                            local_errors.get(code, 0) + 1
                        )
                        continue
                    if kind_latency is None:
                        continue  # pragma: no cover - defensive
                    kind, sent = kind_latency
                    local_latencies.setdefault(kind, []).append(
                        (received - sent) * 1000.0
                    )
                done.set()

            collector = threading.Thread(target=read_responses)
            collector.start()
            started = time.perf_counter()
            next_id = 0
            for offset, op in plan:
                next_id += 1
                frame: Dict = {"id": next_id}
                if op.kind in ("window", "area", "knn"):
                    frame["type"] = "query"
                    frame["spec"] = spec_to_dict(op.payload)
                elif op.kind == "insert":
                    x, y = op.payload
                    frame.update(type="insert", x=x, y=y)
                elif op.kind == "subscribe":
                    frame["type"] = "subscribe"
                    frame["spec"] = spec_to_dict(op.payload)
                    subscription_ids[op.session] = next_id
                else:  # "unsubscribe"
                    frame["type"] = "unsubscribe"
                    frame["id"] = subscription_ids.pop(
                        op.session, next_id
                    )
                delay = started + offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                pending.setdefault(frame["id"], []).append(
                    (op.kind, time.perf_counter())
                )
                sock.sendall(
                    (_json.dumps(frame) + "\n").encode("utf-8")
                )
            done.wait(timeout=120)
            collector.join(timeout=1)
            with guard:
                notifications[0] += local_notifications
                for kind, values in local_latencies.items():
                    latencies.setdefault(kind, []).extend(values)
                    answered[0] += len(values)
                for code, count in local_errors.items():
                    errors[code] = errors.get(code, 0) + count
                    answered[0] += count
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)
        finally:
            sock.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=run_connection, args=(plan,))
        for plan in per_connection
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    if failures:
        raise failures[0]

    from repro.server.client import QueryClient

    with QueryClient(host, port) as monitor:
        stats_frame = monitor.stats()
    for values in latencies.values():
        values.sort()
    return OpenLoopReport(
        offered=len(ops),
        answered=answered[0],
        duration_s=duration,
        client_latency_ms=latencies,
        errors=errors,
        notifications=notifications[0],
        stats_frame=stats_frame,
    )


@dataclass
class TailLatencyReport:
    """Per-kind tail latencies of one skewed-traffic drive."""

    report: OpenLoopReport
    rate: float

    def kind_percentiles(self) -> Dict[str, Dict[str, float]]:
        """Client-observed p50/p95/p99 (ms) per op kind, sorted."""
        out: Dict[str, Dict[str, float]] = {}
        for kind in sorted(self.report.client_latency_ms):
            ordered = self.report.client_latency_ms[kind]
            out[kind] = {
                "count": float(len(ordered)),
                "p50_ms": _percentile(ordered, 0.50),
                "p95_ms": _percentile(ordered, 0.95),
                "p99_ms": _percentile(ordered, 0.99),
            }
        return out

    def server_latency(self) -> Dict:
        """The server's own ``latency`` stats section."""
        return self.report.stats_frame["latency"]


def run_tail_latency_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 20_000,
    sessions: int = 24,
    ops_per_session: int = 12,
    tiles: int = 12,
    alpha: float = 1.1,
    rate: float = 600.0,
    connections: int = 6,
    burst_probability: float = 0.08,
    burst_size: int = 8,
    window_ms: float = 2.0,
    max_batch: int = 32,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> TailLatencyReport:
    """Drive skewed bursty sessions open-loop; report tail latencies.

    The traffic is :func:`make_production_sessions` (Zipf tile
    popularity, mixed reads/writes/subscriptions) paced by
    :func:`~repro.workloads.generators.bursty_arrivals` (Poisson gaps
    with a diurnal wave compressed into the trace and occasional
    thundering-herd bursts) at a mean of ``rate`` ops/second — brisk
    but below capacity, so what the percentiles expose is *queueing
    texture* (bursts stacking into the admission window) rather than
    overload.  Returns a :class:`TailLatencyReport` combining
    client-observed and server-recorded (histogram) percentiles.

    Pass a ``database`` built on the **pure (incremental) backend**
    for the realistic numbers: the scipy backend discards its Delaunay
    structure on every insert and rebuilds it (hundreds of ms at 2E4
    points) on the next voronoi/knn read, so under a mixed read/write
    trace every write detonates a rebuild storm and the tail no longer
    measures queueing at all.  The CLI ``tail`` target defaults to the
    pure backend for exactly this reason (``--backend`` overrides).
    """
    from repro.server.app import ServerThread

    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    ops = make_production_sessions(
        sessions=sessions,
        ops_per_session=ops_per_session,
        tiles=tiles,
        alpha=alpha,
        seed=config.seed,
    )
    arrivals = bursty_arrivals(
        len(ops),
        rate,
        seed=config.seed,
        diurnal_period_s=len(ops) / rate,
        diurnal_amplitude=0.5,
        burst_probability=burst_probability,
        burst_size=burst_size,
    )
    if progress is not None:
        progress(
            f"open-loop drive: {len(ops)} ops, {sessions} sessions, "
            f"{rate:g}/s offered over {connections} connections"
        )
    with ServerThread(
        db, window_ms=window_ms, max_batch=max_batch, max_inflight=512
    ) as server:
        report = drive_open_loop(
            server.host,
            server.port,
            ops,
            arrivals,
            connections=connections,
        )
    return TailLatencyReport(report=report, rate=rate)


def render_tail_table(result: TailLatencyReport) -> str:
    """Aligned text table of per-kind client and server percentiles."""
    lines = [
        f"{'kind':<12} {'count':>6} {'p50 ms':>9} "
        f"{'p95 ms':>9} {'p99 ms':>9}"
    ]
    for kind, row in result.kind_percentiles().items():
        lines.append(
            f"{kind:<12} {int(row['count']):>6} {row['p50_ms']:>9.2f} "
            f"{row['p95_ms']:>9.2f} {row['p99_ms']:>9.2f}"
        )
    wait = result.server_latency()["admission_wait"]
    lines.append(
        f"{'admission':<12} {wait['count']:>6} {wait['p50_ms']:>9.2f} "
        f"{wait['p95_ms']:>9.2f} {wait['p99_ms']:>9.2f}"
    )
    return "\n".join(lines)


@dataclass
class OverloadReport:
    """Outcome of a sustained 2x-capacity overload drive."""

    #: sustainable throughput measured in the calibration phase (req/s)
    capacity_rps: float
    #: offered rate of the overload phase (req/s)
    offered_rps: float
    #: requests admitted and answered with a result
    admitted: int
    #: requests shed with an ``overloaded`` error
    shed: int
    #: client-observed p99 of *admitted* window queries (ms)
    admitted_p99_ms: float
    #: the duration-independent bound the p99 must stay under (ms)
    p99_bound_ms: float
    #: the server's closing stats frame
    stats_frame: Dict

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries shed (0.0 when none offered)."""
        offered = self.admitted + self.shed
        return self.shed / offered if offered else 0.0


def run_overload_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 20_000,
    query_size: float = 0.002,
    calibration_requests: int = 400,
    calibration_clients: int = 4,
    overload_factor: float = 2.0,
    duration_s: float = 2.0,
    connections: int = 8,
    window_ms: float = 1.0,
    max_batch: int = 8,
    max_queue: int = 32,
    bound_slack: float = 8.0,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> OverloadReport:
    """Prove bounded tail latency under sustained overload.

    Phase 1 *calibrates capacity*: ``calibration_clients`` closed-loop
    clients hammer the server as fast as round-trips allow; their
    aggregate throughput is what this host can actually sustain.
    Phase 2 *offers ``overload_factor`` times that* open-loop for
    ``duration_s`` seconds against a server with a deliberately small
    admission queue (``max_queue``).  Without backpressure the queue —
    and with it the latency of every admitted request — would grow
    linearly for the whole duration; with the bounded queue the server
    sheds the excess (``overloaded`` + retry hint) and an admitted
    request waits at most ``max_queue`` service times.  The report's
    ``p99_bound_ms`` is exactly that product (times ``bound_slack``
    for scheduling noise, plus the admission window): a
    **duration-independent** ceiling — the observable that load
    shedding works — while ``shed_rate`` rises with the overload.
    """
    from repro.server.app import ServerThread

    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    def distinct_windows(count: int, seed: int) -> List[WindowQuery]:
        """``count`` all-distinct small windows (no result-cache hits).

        Calibration must measure real execution throughput, so its
        trace has the same shape as the overload phase: every window
        unique.  A repeated trace would calibrate the LRU result cache
        instead and overstate capacity several-fold.
        """
        rng = random.Random(seed)
        side = math.sqrt(query_size)
        out = []
        for _ in range(count):
            cx = rng.uniform(0.1, 0.9)
            cy = rng.uniform(0.1, 0.9)
            out.append(
                WindowQuery(
                    (
                        cx - side / 2,
                        cy - side / 2,
                        cx + side / 2,
                        cy + side / 2,
                    ),
                    limit=64,
                )
            )
        return out

    trace = distinct_windows(calibration_requests, config.seed + 1)

    with ServerThread(
        db, window_ms=window_ms, max_batch=max_batch
    ) as server:
        started = time.perf_counter()
        serve_trace_concurrent(
            server.host, server.port, trace, calibration_clients
        )
        calibration_s = time.perf_counter() - started
    capacity_rps = len(trace) / calibration_s
    service_ms = 1000.0 / capacity_rps
    if progress is not None:
        progress(
            f"calibrated capacity: {capacity_rps:,.0f} req/s "
            f"({service_ms:.3f} ms/request)"
        )

    offered_rps = capacity_rps * overload_factor
    count = int(offered_rps * duration_s)
    ops = [
        SessionOp("window", spec, session=i)
        for i, spec in enumerate(
            distinct_windows(count, config.seed)
        )
    ]
    arrivals = bursty_arrivals(
        count,
        offered_rps,
        seed=config.seed,
        burst_probability=0.05,
        burst_size=max_batch,
    )
    if progress is not None:
        progress(
            f"overload drive: {count} requests at {offered_rps:,.0f}/s "
            f"({overload_factor:g}x capacity), max_queue={max_queue}"
        )
    with ServerThread(
        db,
        window_ms=window_ms,
        max_batch=max_batch,
        max_queue=max_queue,
        max_inflight=10_000,
    ) as server:
        report = drive_open_loop(
            server.host,
            server.port,
            ops,
            arrivals,
            connections=connections,
        )
    admitted_latencies = report.client_latency_ms.get("window", [])
    admitted_p99 = _percentile(admitted_latencies, 0.99)
    shed = report.errors.get("overloaded", 0)
    p99_bound_ms = window_ms + max_queue * service_ms * bound_slack
    return OverloadReport(
        capacity_rps=capacity_rps,
        offered_rps=offered_rps,
        admitted=len(admitted_latencies),
        shed=shed,
        admitted_p99_ms=admitted_p99,
        p99_bound_ms=p99_bound_ms,
        stats_frame=report.stats_frame,
    )


def render_overload_table(result: OverloadReport) -> str:
    """Aligned text summary of one overload drive."""
    coalescer = result.stats_frame["coalescer"]
    rows = [
        ("capacity (calibrated)", f"{result.capacity_rps:,.0f} req/s"),
        ("offered", f"{result.offered_rps:,.0f} req/s"),
        ("admitted", f"{result.admitted}"),
        ("shed (overloaded)", f"{result.shed}"),
        ("shed rate", f"{result.shed_rate:.1%}"),
        ("admitted p99", f"{result.admitted_p99_ms:.2f} ms"),
        ("p99 bound", f"{result.p99_bound_ms:.2f} ms"),
        ("queue peak", f"{coalescer['queue_peak']}"),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(
        f"{label:<{width}}  {value}" for label, value in rows
    )


_TARGETS = (
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "batch",
    "mixed",
    "composite",
    "serve",
    "tail",
    "overload",
    "all",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line driver: regenerate the requested tables/figures."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=_TARGETS)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (1E5..1E6 points, 1000 reps); "
        "slow in pure Python",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="override repetitions"
    )
    parser.add_argument(
        "--backend",
        choices=("pure", "scipy"),
        default=None,
        help="Delaunay backend (default scipy for speed; results identical)",
    )
    parser.add_argument(
        "--data-size",
        type=int,
        default=None,
        help="fixed data size for the query-size sweep",
    )
    parser.add_argument(
        "--batch-distinct",
        type=int,
        default=30,
        help="batch target: distinct regions in the trace",
    )
    parser.add_argument(
        "--batch-repeat",
        type=int,
        default=3,
        help="batch target: repetitions of each region in the trace",
    )
    parser.add_argument(
        "--batch-query-size",
        type=float,
        default=0.01,
        help="batch target: query size of the trace regions",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="serve target: concurrent client connections",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="serve target: cross-client coalescing window",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=24,
        help="tail target: concurrent tenant sessions in the trace",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=600.0,
        help="tail target: mean offered ops/second",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="overload target: coalescer admission-queue bound",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="overload target: seconds of sustained 2x-capacity load",
    )
    args = parser.parse_args(argv)

    config = (
        ExperimentConfig.paper_scale()
        if args.paper_scale
        else ExperimentConfig()
    )
    if args.repetitions is not None:
        config = replace(config, repetitions=args.repetitions)
    if args.backend is not None:
        config = replace(config, backend_kind=args.backend)
    if args.data_size is not None:
        config = replace(config, fixed_data_size=args.data_size)

    def progress(message: str) -> None:
        print(f"  [{message}]", file=sys.stderr)

    if args.target in ("batch", "all"):
        batch_rows = run_batch_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            progress=progress,
        )
        print(
            "\nBatch engine throughput "
            f"({args.batch_distinct} regions x {args.batch_repeat} hits, "
            f"query size {args.batch_query_size:.0%}):"
        )
        print(render_batch_table(batch_rows))
        if args.target == "batch":
            return 0

    if args.target in ("mixed", "all"):
        mixed_rows = run_mixed_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            progress=progress,
        )
        print(
            "\nHeterogeneous batch throughput (mixed area/window/knn/"
            f"nearest specs, {args.batch_distinct} distinct x "
            f"{args.batch_repeat} hits):"
        )
        print(render_batch_table(mixed_rows))
        if args.target == "mixed":
            return 0

    if args.target in ("serve", "all"):
        serve_rows = run_serve_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            clients=args.clients,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            window_ms=args.window_ms,
            progress=progress,
        )
        print(
            f"\nServed throughput over the NDJSON wire ({args.clients} "
            f"coalesced clients vs one sequential client, "
            f"{args.batch_distinct} regions x {args.batch_repeat} hits):"
        )
        print(render_batch_table(serve_rows))
        if args.target == "serve":
            return 0

    if args.target in ("composite", "all"):
        composite_rows = run_composite_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            query_size=min(args.batch_query_size, 0.001),
            progress=progress,
        )
        print(
            "\nComposite decomposition throughput (unions/intersections/"
            f"differences of 4 sibling regions, {args.batch_distinct} "
            "distinct specs):"
        )
        print(render_batch_table(composite_rows))
        if args.target == "composite":
            return 0

    if args.target == "tail":
        # Mixed read/write serving needs the incremental backend: the
        # scipy backend rebuilds its whole Delaunay structure on the
        # first voronoi/knn read after every write, and that rebuild
        # storm would drown the queueing behaviour this target shows.
        tail_config = (
            config
            if args.backend is not None
            else replace(config, backend_kind="pure")
        )
        tail = run_tail_latency_experiment(
            tail_config,
            data_size=args.data_size or 20_000,
            sessions=args.sessions,
            rate=args.rate,
            window_ms=min(args.window_ms, 2.0),
            progress=progress,
        )
        print(
            f"\nTail latency under skewed bursty traffic "
            f"({args.sessions} sessions, {args.rate:g} ops/s offered):"
        )
        print(render_tail_table(tail))
        return 0

    if args.target == "overload":
        overload = run_overload_experiment(
            config,
            data_size=args.data_size or 20_000,
            max_queue=args.max_queue,
            duration_s=args.duration,
            progress=progress,
        )
        print(
            f"\nOverload shedding at "
            f"{overload.offered_rps / overload.capacity_rps:.1f}x "
            f"calibrated capacity (max_queue={args.max_queue}):"
        )
        print(render_overload_table(overload))
        return 0

    need_data = args.target in ("table1", "fig4", "fig5", "all")
    need_query = args.target in ("table2", "fig6", "fig7", "all")

    data_rows = (
        run_data_size_sweep(config, progress=progress) if need_data else []
    )
    query_rows = (
        run_query_size_sweep(config, progress=progress) if need_query else []
    )

    if args.target in ("table1", "all"):
        print("\nTable I — data-size sweep "
              f"(query size {config.fixed_query_size:.0%}):")
        print(render_table(data_rows, parameter_label="Data size"))
    if args.target in ("fig4", "all"):
        print()
        print(
            render_figure(
                data_rows, value="time", title="Fig. 4 — time vs data size"
            )
        )
    if args.target in ("fig5", "all"):
        print()
        print(
            render_figure(
                data_rows,
                value="redundant",
                title="Fig. 5 — redundant validations vs data size",
            )
        )
    if args.target in ("table2", "all"):
        print(f"\nTable II — query-size sweep "
              f"(data size {config.fixed_data_size:,}):")
        print(
            render_table(
                query_rows, parameter_label="Query size", as_query_size=True
            )
        )
    if args.target in ("fig6", "all"):
        print()
        print(
            render_figure(
                query_rows,
                value="time",
                title="Fig. 6 — time vs query size",
                as_query_size=True,
            )
        )
    if args.target in ("fig7", "all"):
        print()
        print(
            render_figure(
                query_rows,
                value="redundant",
                title="Fig. 7 — redundant validations vs query size",
                as_query_size=True,
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
