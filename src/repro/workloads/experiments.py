"""The paper's experiment harness: Tables I–II, Figures 4–7, batch throughput.

Two sweeps, exactly as in Section IV of the paper:

* **data-size sweep** (Table I; Figs. 4 and 5): query size fixed at 1 %,
  database size swept (paper: 1E5 … 1E6 in steps of 1E5);
* **query-size sweep** (Table II; Figs. 6 and 7): database size fixed at
  1E5, query size doubling 1 % … 32 %.

Each cell averages ``repetitions`` random 10-vertex query polygons (the
paper averages 1000).  Every repetition asserts that both methods return
identical result sets, so the harness doubles as a large-scale correctness
check.

Scale defaults are laptop-friendly (paper-scale runs take tens of minutes in
pure Python — pass ``--paper-scale`` or a custom config to reproduce the
full 1E6 sweep).  The figures are the same series as the tables plotted
against the sweep parameter; :func:`render_figure` prints them as aligned
series so the trend/crossover shapes can be read off directly.

Run from the command line::

    python -m repro.workloads.experiments table1
    python -m repro.workloads.experiments all --repetitions 20
    python -m repro.workloads.experiments table2 --paper-scale
    python -m repro.workloads.experiments batch

The ``batch`` target goes beyond the paper: it measures the throughput of
the batch query engine (:mod:`repro.engine`) against the one-query-at-a-time
loop on a production-style trace where hot regions repeat.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.database import SpatialDatabase
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.random_shapes import random_query_polygon
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
)
from repro.workloads.generators import uniform_points
from repro.workloads.queries import QueryWorkload

#: The paper's sweep values.
PAPER_DATA_SIZES = tuple(100_000 * i for i in range(1, 11))
PAPER_QUERY_SIZES = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
PAPER_REPETITIONS = 1000

#: Laptop-scale defaults: same *structure* (10 data-size steps, 6 doubling
#: query sizes), an order of magnitude fewer points and repetitions.
DEFAULT_DATA_SIZES = tuple(10_000 * i for i in range(1, 11))
DEFAULT_QUERY_SIZES = PAPER_QUERY_SIZES
DEFAULT_REPETITIONS = 15


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the two sweeps."""

    data_sizes: Tuple[int, ...] = DEFAULT_DATA_SIZES
    query_sizes: Tuple[float, ...] = DEFAULT_QUERY_SIZES
    #: query size used by the data-size sweep (paper: 1 %)
    fixed_query_size: float = 0.01
    #: data size used by the query-size sweep (paper: 1E5)
    fixed_data_size: int = 100_000
    repetitions: int = DEFAULT_REPETITIONS
    seed: int = 0
    index_kind: str = "rtree"
    #: "scipy" builds the neighbour graph via Qhull — identical neighbour
    #: sets, much faster construction for paper-scale datasets.  The pure
    #: backend is the default everywhere else in the library.
    backend_kind: str = "scipy"

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        """The full configuration of the paper's Section IV."""
        return ExperimentConfig(
            data_sizes=PAPER_DATA_SIZES,
            query_sizes=PAPER_QUERY_SIZES,
            fixed_data_size=100_000,
            repetitions=PAPER_REPETITIONS,
        )


@dataclass
class SweepRow:
    """One averaged cell of a sweep (one row of Table I or Table II)."""

    parameter: float  # data size, or query size fraction
    result_size: float
    traditional_candidates: float
    traditional_time_ms: float
    traditional_redundant: float
    voronoi_candidates: float
    voronoi_time_ms: float
    voronoi_redundant: float
    repetitions: int = 0

    @property
    def candidate_saving(self) -> float:
        """Fraction of candidates removed by the Voronoi method.

        The paper's "number of candidates saved": at 1E5/1 % it reports
        ``1 - 648.47/999.2 = 35.1 %``, i.e. the ratio of the *full*
        candidate sets.
        """
        if self.traditional_candidates == 0:
            return 0.0
        return 1.0 - self.voronoi_candidates / self.traditional_candidates

    @property
    def redundant_saving(self) -> float:
        """Fraction of redundant validations removed (Figs. 5 and 7 series)."""
        if self.traditional_redundant == 0:
            return 0.0
        return 1.0 - self.voronoi_redundant / self.traditional_redundant

    @property
    def time_saving(self) -> float:
        """Fraction of query time removed: ``1 - t_voronoi / t_traditional``."""
        if self.traditional_time_ms == 0:
            return 0.0
        return 1.0 - self.voronoi_time_ms / self.traditional_time_ms


def _measure_cell(
    db: SpatialDatabase,
    query_size: float,
    repetitions: int,
    seed: int,
    parameter: float,
) -> SweepRow:
    """Average both methods over ``repetitions`` random query polygons."""
    workload = QueryWorkload(query_size=query_size, seed=seed)
    areas = workload.areas(repetitions)
    totals = {
        "result": 0.0,
        "t_cand": 0.0,
        "t_time": 0.0,
        "t_red": 0.0,
        "v_cand": 0.0,
        "v_time": 0.0,
        "v_red": 0.0,
    }
    for area in areas:
        voronoi = db.query(AreaQuery(area, method="voronoi")).record
        traditional = db.query(AreaQuery(area, method="traditional")).record
        if voronoi.ids != traditional.ids:
            raise AssertionError(
                "methods disagree: the harness found a correctness bug "
                f"(|voronoi|={len(voronoi.ids)}, "
                f"|traditional|={len(traditional.ids)})"
            )
        totals["result"] += voronoi.stats.result_size
        totals["t_cand"] += traditional.stats.candidates
        totals["t_time"] += traditional.stats.time_ms
        totals["t_red"] += traditional.stats.redundant_validations
        totals["v_cand"] += voronoi.stats.candidates
        totals["v_time"] += voronoi.stats.time_ms
        totals["v_red"] += voronoi.stats.redundant_validations
    n = float(len(areas))
    return SweepRow(
        parameter=parameter,
        result_size=totals["result"] / n,
        traditional_candidates=totals["t_cand"] / n,
        traditional_time_ms=totals["t_time"] / n,
        traditional_redundant=totals["t_red"] / n,
        voronoi_candidates=totals["v_cand"] / n,
        voronoi_time_ms=totals["v_time"] / n,
        voronoi_redundant=totals["v_red"] / n,
        repetitions=int(n),
    )


def _build_database(
    n: int, config: ExperimentConfig
) -> SpatialDatabase:
    points = uniform_points(n, seed=config.seed)
    db = SpatialDatabase.from_points(
        points,
        index_kind=config.index_kind,
        backend_kind=config.backend_kind,
    )
    return db.prepare()


def run_data_size_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRow]:
    """Table I / Fig. 4 / Fig. 5: vary data size at fixed 1 % query size."""
    rows: List[SweepRow] = []
    for n in config.data_sizes:
        if progress is not None:
            progress(f"data size {n:,}: building database...")
        db = _build_database(n, config)
        row = _measure_cell(
            db,
            config.fixed_query_size,
            config.repetitions,
            seed=config.seed + n,
            parameter=float(n),
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"data size {n:,}: voronoi {row.voronoi_time_ms:.1f} ms vs "
                f"traditional {row.traditional_time_ms:.1f} ms"
            )
    return rows


def run_query_size_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRow]:
    """Table II / Fig. 6 / Fig. 7: vary query size at fixed data size."""
    if progress is not None:
        progress(
            f"building database of {config.fixed_data_size:,} points..."
        )
    db = _build_database(config.fixed_data_size, config)
    rows: List[SweepRow] = []
    for query_size in config.query_sizes:
        row = _measure_cell(
            db,
            query_size,
            config.repetitions,
            seed=config.seed + int(query_size * 10_000),
            parameter=query_size,
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"query size {query_size:.0%}: voronoi "
                f"{row.voronoi_time_ms:.1f} ms vs traditional "
                f"{row.traditional_time_ms:.1f} ms"
            )
    return rows


# -- batch-throughput experiment ---------------------------------------------


@dataclass
class BatchThroughputRow:
    """One execution strategy's throughput on the shared query trace."""

    strategy: str
    total_ms: float
    queries_per_second: float
    #: throughput relative to the single-query voronoi loop baseline
    speedup: float
    #: repeated regions answered once per batch (intra-batch dedup); the
    #: cross-batch LRU cache never fires here because each strategy
    #: submits the trace as one batch call
    duplicate_hits: int = 0
    method_counts: Dict[str, int] = field(default_factory=dict)


#: The strategies measured by :func:`run_batch_throughput_experiment`,
#: in reporting order.
TRACE_STRATEGIES = (
    "loop/voronoi",
    "loop/traditional",
    "batch/voronoi",
    "batch/traditional",
    "batch/auto",
)

#: Strategies meaningful for heterogeneous (mixed-kind) traces, where a
#: single forced area method does not exist.
MIXED_TRACE_STRATEGIES = (
    "loop/auto",
    "batch/auto",
)

#: Strategies for composite traces: leaves executed independently (one
#: :meth:`SpatialDatabase.query` per leaf, set-merged in Python — the
#: baseline the acceptance bar compares against) vs the engine's
#: batch-decomposition (sibling leaves share frontiers/seed walks).
COMPOSITE_TRACE_STRATEGIES = (
    "leaves/loop",
    "composite/batch",
)


def run_trace_strategy(db: SpatialDatabase, trace: List[Query], strategy: str):
    """Answer a spec ``trace`` with one strategy; returns per-request ids.

    Shared by the experiment harness and ``benchmarks/bench_batch_engine.py``
    so both measure exactly the same execution paths.  ``loop/<method>``
    issues one :meth:`SpatialDatabase.query` per spec; ``batch/<method>``
    uses :meth:`SpatialDatabase.query_batch` with the cross-batch cache
    disabled (isolating the sharing machinery); ``*/auto`` keeps each
    spec's own method field (the planner routes), and ``batch/auto`` is
    the full engine — planner plus LRU cache, cleared first so repeats
    within the trace are served by intra-batch dedup, not by earlier
    runs.  A non-auto method is applied via ``spec.with_method`` and only
    makes sense for kind-homogeneous traces.  Composite traces use
    ``leaves/loop`` (every leaf answered independently, set-merged in
    Python — the no-sharing baseline) vs ``composite/batch`` (the
    engine's batch-decomposition, cross-batch cache disabled).
    """
    if strategy == "leaves/loop":
        return [composite_reference_ids(db, spec) for spec in trace]
    if strategy == "composite/batch":
        db.engine.cache.clear()
        return [
            r.ids() for r in db.query_batch(trace, use_cache=False)
        ]
    kind, _, method = strategy.partition("/")
    if kind == "loop":
        if method == "auto":
            return [db.query(spec).ids() for spec in trace]
        return [
            db.query(spec.with_method(method)).ids() for spec in trace
        ]
    if kind != "batch":
        raise ValueError(f"unknown strategy {strategy!r}")
    if method == "auto":
        db.engine.cache.clear()
        return [r.ids() for r in db.query_batch(trace)]
    return [
        r.ids()
        for r in db.query_batch(
            [spec.with_method(method) for spec in trace], use_cache=False
        )
    ]


def make_query_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
) -> List[AreaQuery]:
    """A production-style trace: ``distinct`` area specs, each hit
    ``repeat`` times, shuffled deterministically.

    Real area-query traffic repeats itself (hot map tiles, dashboards,
    geofence monitors); ``repeat`` controls how hot the trace is.
    ``repeat=1`` gives an all-distinct trace.
    """
    areas = QueryWorkload(query_size=query_size, seed=seed).areas(distinct)
    specs = [AreaQuery(area) for area in areas]
    trace = [spec for spec in specs for _ in range(repeat)]
    random.Random(seed + 1).shuffle(trace)
    return trace


def make_mixed_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
    max_k: int = 16,
) -> List[Query]:
    """A heterogeneous trace cycling through all four query kinds.

    ``distinct`` specs are generated round-robin — area (a random query
    polygon), window (a same-scale rectangle), kNN (random position,
    random ``k`` up to ``max_k``), nearest — then each is repeated
    ``repeat`` times and the whole trace deterministically shuffled.
    This is the acceptance workload for heterogeneous batching: the
    engine must group the kinds back together to share work.
    """
    rng = random.Random(seed)
    areas = QueryWorkload(query_size=query_size, seed=seed).areas(distinct)
    specs: List[Query] = []
    for i, area in enumerate(areas):
        variant = i % 4
        if variant == 0:
            specs.append(AreaQuery(area))
        elif variant == 1:
            specs.append(WindowQuery(area.mbr))
        elif variant == 2:
            specs.append(
                KnnQuery(
                    Point(rng.random(), rng.random()),
                    1 + rng.randrange(max_k),
                )
            )
        else:
            specs.append(NearestQuery(Point(rng.random(), rng.random())))
    trace = [spec for spec in specs for _ in range(repeat)]
    random.Random(seed + 1).shuffle(trace)
    return trace


def make_composite_trace(
    query_size: float,
    distinct: int,
    seed: int = 0,
    parts: int = 4,
    method: str = "voronoi",
    kinds: Tuple[type, ...] = (
        UnionQuery,
        IntersectionQuery,
        DifferenceQuery,
    ),
) -> List[CompositeQuery]:
    """``distinct`` composite specs, each over ``parts`` sibling regions.

    Each composite models a hot-spot dashboard panel: ``parts`` random
    query polygons (each of ``query_size`` area fraction) clustered
    around a random centre — jittered by ~10 % of their side so siblings
    overlap heavily — combined round-robin over ``kinds``.  The
    clustering is what the engine's decomposition exploits: with
    ``method="voronoi"`` (the paper's algorithm, the default here) every
    sibling after the first gets its expansion seed by *walking* the
    previous seed across the Delaunay graph instead of descending the
    index, which is where the measured composite speedup comes from.
    """
    rng = random.Random(seed)
    specs: List[CompositeQuery] = []
    for i in range(distinct):
        cx = rng.uniform(0.15, 0.85)
        cy = rng.uniform(0.15, 0.85)
        leaves = []
        for _ in range(parts):
            polygon = random_query_polygon(query_size, rng=rng)
            mbr = polygon.mbr
            side = max(mbr.max_x - mbr.min_x, mbr.max_y - mbr.min_y)
            dx = (
                cx
                - (mbr.min_x + mbr.max_x) / 2.0
                + rng.uniform(-0.1, 0.1) * side
            )
            dy = (
                cy
                - (mbr.min_y + mbr.max_y) / 2.0
                + rng.uniform(-0.1, 0.1) * side
            )
            leaves.append(
                AreaQuery(
                    Polygon(
                        [
                            Point(p.x + dx, p.y + dy)
                            for p in polygon.vertices
                        ]
                    ),
                    method=method,
                )
            )
        specs.append(kinds[i % len(kinds)](tuple(leaves)))
    return specs


def composite_reference_ids(
    db: SpatialDatabase, spec: Query
) -> List[int]:
    """Answer ``spec`` by executing every leaf *independently*.

    The no-sharing baseline for the composite acceptance bar: each leaf
    runs as its own :meth:`SpatialDatabase.query`, the id sets merge
    with Python set operations, and the composite's own options apply on
    top — semantically identical to the engine's decomposition, without
    any cross-leaf sharing.  Non-composite specs fall through to a
    plain single query.
    """
    if not isinstance(spec, CompositeQuery):
        return db.query(spec).ids()
    part_ids = [composite_reference_ids(db, part) for part in spec.parts]
    if isinstance(spec, UnionQuery):
        merged = set().union(*part_ids)
    elif isinstance(spec, IntersectionQuery):
        merged = set(part_ids[0]).intersection(*part_ids[1:])
    else:
        merged = set(part_ids[0]).difference(*part_ids[1:])
    ids = sorted(merged)
    if spec.predicate is not None:
        predicate = spec.predicate
        point = db.point
        ids = [i for i in ids if predicate(point(i))]
    if spec.limit is not None:
        ids = ids[: spec.limit]
    return ids


def run_composite_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 24,
    parts: int = 4,
    query_size: float = 0.001,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Composite decomposition vs independent leaf execution.

    Same protocol as :func:`run_batch_throughput_experiment`: one shared
    trace of composite specs (:func:`make_composite_trace`), each
    strategy best-of-``rounds``, ids asserted identical.  The
    acceptance criterion of the composite algebra is that
    ``composite/batch`` beats ``leaves/loop`` on unions of four or more
    sibling regions (the benchmark asserts >= 1.3x).
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_composite_trace(
        query_size, distinct, seed=config.seed, parts=parts
    )
    if progress is not None:
        progress(
            f"composite trace: {len(trace)} specs x {parts} sibling "
            f"regions each"
        )
    expected = [composite_reference_ids(db, spec) for spec in trace]
    return _time_strategies(
        db, trace, COMPOSITE_TRACE_STRATEGIES, expected, rounds, progress
    )


def make_serve_trace(
    query_size: float,
    distinct: int,
    repeat: int,
    seed: int = 0,
    cluster: int = 4,
    shape: str = "mixed",
    limit: Optional[int] = None,
) -> List[Query]:
    """A multi-tenant trace: clustered hot-spot specs, repeated.

    Models N tenants watching a few hot areas *at the same time* (a
    live event, a dashboard auto-refresh tick): ``distinct`` specs are
    generated in clusters of ``cluster`` near-coincident regions around
    shared centres, emitted cluster by cluster, and the whole trace is
    repeated ``repeat`` times.  Submission order is deliberately
    cluster-contiguous: when the trace is dealt round-robin to N
    concurrent connections, each coalescing wave carries one cluster's
    near-coincident members from *different* clients — the traffic
    shape cross-client batching exists for.  Clusters alternate between
    the two sharing-friendly shapes of real map traffic:

    * **hot tiles** — jittered same-size :class:`WindowQuery` rectangles
      (one viewport, nudged per tenant): batched, the engine's window
      grouping answers the whole cluster with **one** shared index
      traversal;
    * **hot regions** — jittered voronoi-method :class:`AreaQuery`
      polygons: batched, expansion seeds chain across the cluster by
      Delaunay-graph walks instead of per-query index descents.

    Sequential round-trips (batches of one) can exploit neither, which
    is exactly the gap the served-throughput experiment measures; exact
    repeats (the ``repeat`` rounds) hit the LRU result cache in *both*
    settings, so they do not skew the comparison.  ``shape`` restricts
    the mix: ``"tiles"`` (all window clusters — the tile-server
    workload ``benchmarks/bench_server.py`` asserts on), ``"regions"``
    (all voronoi-method polygon clusters), or ``"mixed"`` (alternating,
    the default).  ``limit`` caps every spec's result rows (the
    paginated "first page per viewport" pattern of real dashboard
    traffic): execution still scans the full window — only the
    response payload is bounded — so the served-throughput comparison
    keeps measuring execution coalescing rather than per-request id
    transport once queries themselves are fast.
    """
    if shape not in ("mixed", "tiles", "regions"):
        raise ValueError(
            f"shape must be 'mixed', 'tiles', or 'regions', got {shape!r}"
        )
    rng = random.Random(seed)
    specs: List[Query] = []
    tile = shape != "regions"
    while len(specs) < distinct:
        cx = rng.uniform(0.15, 0.85)
        cy = rng.uniform(0.15, 0.85)
        members = min(cluster, distinct - len(specs))
        if tile:
            side = math.sqrt(query_size)
            for _ in range(members):
                jx = rng.uniform(-0.02, 0.02) * side
                jy = rng.uniform(-0.02, 0.02) * side
                specs.append(
                    WindowQuery(
                        (
                            cx - side / 2 + jx,
                            cy - side / 2 + jy,
                            cx + side / 2 + jx,
                            cy + side / 2 + jy,
                        ),
                        limit=limit,
                    )
                )
        else:
            for _ in range(members):
                polygon = random_query_polygon(query_size, rng=rng)
                mbr = polygon.mbr
                side = max(mbr.max_x - mbr.min_x, mbr.max_y - mbr.min_y)
                dx = (
                    cx
                    - (mbr.min_x + mbr.max_x) / 2.0
                    + rng.uniform(-0.1, 0.1) * side
                )
                dy = (
                    cy
                    - (mbr.min_y + mbr.max_y) / 2.0
                    + rng.uniform(-0.1, 0.1) * side
                )
                specs.append(
                    AreaQuery(
                        Polygon(
                            [
                                Point(p.x + dx, p.y + dy)
                                for p in polygon.vertices
                            ]
                        ),
                        method="voronoi",
                        limit=limit,
                    )
                )
        if shape == "mixed":
            tile = not tile
    return [spec for _ in range(repeat) for spec in specs]


def serve_trace_sequential(host: str, port: int, trace: List[Query]):
    """Answer ``trace`` over the wire, one blocking round-trip at a time.

    The no-concurrency baseline of the served-throughput experiment: a
    single :class:`~repro.server.client.QueryClient` submits each spec
    and waits for its result before sending the next, so every request
    is its own admission window (a batch of one — no cross-client
    sharing, though the server's LRU cache still sees the repeats).
    Returns the per-request id lists in trace order.
    """
    from repro.server.client import QueryClient

    with QueryClient(host, port) as client:
        return [client.query(spec).ids for spec in trace]


def serve_trace_concurrent(
    host: str, port: int, trace: List[Query], clients: int
):
    """Answer ``trace`` over the wire from ``clients`` concurrent clients.

    The trace is split round-robin over ``clients`` threads, each
    holding its own blocking connection; a barrier releases them
    together, so their requests land inside shared admission windows
    and the server coalesces them into cross-client engine batches.
    Returns the per-request id lists re-assembled in trace order (plus
    raising any client thread's failure).
    """
    import threading

    from repro.server.client import QueryClient

    shards = [trace[i::clients] for i in range(clients)]
    results: List[Optional[List[List[int]]]] = [None] * clients
    failures: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def worker(position: int) -> None:
        try:
            with QueryClient(host, port) as client:
                barrier.wait()
                results[position] = [
                    client.query(spec).ids for spec in shards[position]
                ]
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    merged: List[Optional[List[int]]] = [None] * len(trace)
    for position, shard_ids in enumerate(results):
        assert shard_ids is not None
        for offset, ids in enumerate(shard_ids):
            merged[position + offset * clients] = ids
    return merged


def run_serve_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    clients: int = 8,
    distinct: int = 16,
    repeat: int = 4,
    query_size: float = 0.002,
    rounds: int = 3,
    window_ms: float = 5.0,
    cluster: int = 8,
    shape: str = "mixed",
    limit: Optional[int] = None,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Served throughput: N coalesced clients vs sequential round-trips.

    Two server phases over the same database and the same repeated trace
    (:func:`make_serve_trace`), results asserted id-identical:

    * ``serve/sequential`` — one client, one blocking round-trip per
      request, against a server with ``window_ms=0`` (every request
      flushes immediately: the *strongest* sequential configuration,
      with no admission latency to unfairly pad the baseline);
    * ``serve/coalesced`` — ``clients`` concurrent connections against a
      server with the given ``window_ms``, so requests from different
      connections land in shared admission windows and execute as one
      cross-client engine batch.

    The engine's LRU cache is cleared before every timed round of both
    phases, so each round pays the same cold-cache cost and the ratio
    isolates what coalescing adds: shared execution, intra-batch dedup,
    and round-trip overlap.  Each phase reports its best of ``rounds``.
    """
    from repro.server.app import ServerThread

    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_serve_trace(
        query_size,
        distinct,
        repeat,
        seed=config.seed,
        cluster=cluster,
        shape=shape,
        limit=limit,
    )
    if progress is not None:
        progress(
            f"served trace: {len(trace)} requests over {distinct} distinct "
            f"regions, {clients} clients"
        )
    expected = [db.query(spec).ids() for spec in trace]

    rows: List[BatchThroughputRow] = []
    phases = (
        ("serve/sequential", 0.0, 1),
        (f"serve/coalesced x{clients}", window_ms, clients),
    )
    for label, phase_window, phase_clients in phases:
        with ServerThread(db, window_ms=phase_window) as server:
            best = float("inf")
            for _ in range(rounds):
                db.engine.cache.clear()
                totals_before = db.engine.totals.duplicate_hits
                started = time.perf_counter()
                if phase_clients == 1:
                    ids = serve_trace_sequential(
                        server.host, server.port, trace
                    )
                else:
                    ids = serve_trace_concurrent(
                        server.host, server.port, trace, phase_clients
                    )
                elapsed = time.perf_counter() - started
                if ids != expected:
                    raise AssertionError(
                        "served strategy returned different ids than "
                        "local execution"
                    )
                best = min(best, elapsed)
            duplicate_hits = db.engine.totals.duplicate_hits - totals_before
            coalescer_stats = server.server.coalescer.stats
        total_ms = best * 1000.0
        rows.append(
            BatchThroughputRow(
                strategy=label,
                total_ms=total_ms,
                queries_per_second=len(trace) / (total_ms / 1000.0),
                speedup=1.0,
                duplicate_hits=duplicate_hits,
                method_counts={},
            )
        )
        if progress is not None:
            progress(
                f"{label}: {total_ms:.1f} ms "
                f"(batches: {coalescer_stats.batch_sizes})"
            )
    baseline = rows[0].total_ms
    for row in rows:
        row.speedup = baseline / row.total_ms if row.total_ms else 0.0
    return rows


def run_batch_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 30,
    repeat: int = 3,
    query_size: float = 0.01,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Measure single-query vs batched throughput on one trace.

    ``database`` lets callers reuse an already-built database (the CLI
    does, to avoid paying the build twice); when given, ``data_size`` is
    ignored.

    Strategies (all answering the identical trace, results asserted
    id-identical):

    * ``loop/voronoi`` — the baseline: one :meth:`SpatialDatabase.query`
      per spec, forced to the paper's method;
    * ``loop/traditional`` — same loop with the filter–refine baseline;
    * ``batch/voronoi``, ``batch/traditional`` — the batch engine with the
      method fixed and the result cache disabled (isolates the sharing
      machinery: Hilbert ordering, shared windows, seed reuse);
    * ``batch/auto`` — the full engine: planner-chosen methods plus the
      LRU result cache (cleared before each round, so repeats within the
      trace are answered by intra-batch dedup — reported as
      ``duplicate_hits``).

    Each strategy runs ``rounds`` times; the fastest round is reported
    (standard practice to suppress scheduler noise).
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_query_trace(
        query_size, distinct, repeat, seed=config.seed
    )
    if progress is not None:
        progress(
            f"trace: {len(trace)} requests over {distinct} distinct regions"
        )

    expected = [
        db.query(spec.with_method("voronoi")).ids() for spec in trace
    ]
    return _time_strategies(
        db, trace, TRACE_STRATEGIES, expected, rounds, progress
    )


def run_mixed_throughput_experiment(
    config: ExperimentConfig = ExperimentConfig(),
    *,
    data_size: int = 10_000,
    distinct: int = 32,
    repeat: int = 3,
    query_size: float = 0.01,
    rounds: int = 3,
    database: Optional[SpatialDatabase] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BatchThroughputRow]:
    """Heterogeneous-batch throughput: mixed kinds, loop vs batch.

    Same protocol as :func:`run_batch_throughput_experiment`, but the
    trace mixes all four query kinds (:func:`make_mixed_trace`) and only
    the planner-routed strategies are meaningful
    (:data:`MIXED_TRACE_STRATEGIES`).  Ids are asserted identical between
    loop and batch execution for every request.
    """
    if database is not None:
        db = database
    else:
        if progress is not None:
            progress(f"building database of {data_size:,} points...")
        db = _build_database(data_size, config)
    trace = make_mixed_trace(
        query_size, distinct, repeat, seed=config.seed
    )
    if progress is not None:
        kinds = sorted({spec.kind for spec in trace})
        progress(
            f"mixed trace: {len(trace)} requests over {distinct} distinct "
            f"specs ({', '.join(kinds)})"
        )
    expected = [db.query(spec).ids() for spec in trace]
    return _time_strategies(
        db, trace, MIXED_TRACE_STRATEGIES, expected, rounds, progress
    )


def _time_strategies(
    db: SpatialDatabase,
    trace: List[Query],
    strategies: Sequence[str],
    expected: List[List[int]],
    rounds: int,
    progress: Optional[Callable[[str], None]],
) -> List[BatchThroughputRow]:
    """Best-of-``rounds`` timing of each strategy on one shared trace."""

    def timed(run) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            ids = run()
            best = min(best, time.perf_counter() - started)
            if ids != expected:
                raise AssertionError(
                    "batch strategy returned different ids than the loop"
                )
        return best * 1000.0

    rows: List[BatchThroughputRow] = []
    for strategy in strategies:
        total = timed(lambda s=strategy: run_trace_strategy(db, trace, s))
        batch_stats = (
            db.engine.last_batch_stats
            if strategy.startswith("batch/")
            else None
        )
        rows.append(
            BatchThroughputRow(
                strategy=strategy,
                total_ms=total,
                queries_per_second=len(trace) / (total / 1000.0),
                speedup=1.0,
                duplicate_hits=(
                    batch_stats.duplicate_hits if batch_stats else 0
                ),
                method_counts=(
                    dict(batch_stats.method_counts) if batch_stats else {}
                ),
            )
        )
        if progress is not None:
            progress(f"{strategy}: {total:.1f} ms")

    baseline = rows[0].total_ms
    for row in rows:
        row.speedup = baseline / row.total_ms if row.total_ms else 0.0
    return rows


def render_batch_table(rows: Sequence[BatchThroughputRow]) -> str:
    """Render the batch-throughput strategies as an aligned table."""
    header = (
        f"{'strategy':>18} | {'total ms':>9} | {'queries/s':>10} | "
        f"{'speedup':>8} | notes"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        notes = []
        if row.duplicate_hits:
            notes.append(f"{row.duplicate_hits} dedup hits")
        # method_counts is informative only where the planner chose; on
        # fixed-method rows it would just echo the forced method
        if row.method_counts and row.strategy.endswith("/auto"):
            chosen = ", ".join(
                f"{count} {method}"
                for method, count in sorted(row.method_counts.items())
            )
            notes.append(f"planner: {chosen}")
        lines.append(
            f"{row.strategy:>18} | {row.total_ms:>9.1f} | "
            f"{row.queries_per_second:>10.0f} | {row.speedup:>7.2f}x | "
            f"{'; '.join(notes)}"
        )
    return "\n".join(lines)


# -- rendering ----------------------------------------------------------------


def _format_parameter(value: float, as_query_size: bool) -> str:
    if as_query_size:
        return f"{value:.0%}"
    return f"{value:,.0f}"


def render_table(
    rows: Sequence[SweepRow],
    *,
    parameter_label: str,
    as_query_size: bool = False,
) -> str:
    """Render a sweep in the layout of the paper's Tables I and II."""
    header = (
        f"{parameter_label:>12} | {'Result size':>11} | "
        f"{'Trad. cand':>10} {'Trad. ms':>9} | "
        f"{'Vor. cand':>10} {'Vor. ms':>9} | "
        f"{'cand. saved':>11} {'time saved':>10}"
    )
    separator = "-" * len(header)
    lines = [header, separator]
    for row in rows:
        lines.append(
            f"{_format_parameter(row.parameter, as_query_size):>12} | "
            f"{row.result_size:>11.2f} | "
            f"{row.traditional_candidates:>10.2f} "
            f"{row.traditional_time_ms:>9.3f} | "
            f"{row.voronoi_candidates:>10.2f} "
            f"{row.voronoi_time_ms:>9.3f} | "
            f"{row.candidate_saving:>10.1%} "
            f"{row.time_saving:>10.1%}"
        )
    return "\n".join(lines)


def render_figure(
    rows: Sequence[SweepRow],
    *,
    value: str,
    title: str,
    as_query_size: bool = False,
    width: int = 60,
) -> str:
    """ASCII rendering of one of the paper's figures.

    ``value`` selects the y-series: ``"time"`` (Figs. 4 and 6) or
    ``"redundant"`` (Figs. 5 and 7).  Both methods are drawn as horizontal
    bars per sweep point, so the gap and its growth are visible in a
    terminal.
    """
    if value == "time":
        series = [
            (row.voronoi_time_ms, row.traditional_time_ms) for row in rows
        ]
        unit = "ms"
    elif value == "redundant":
        series = [
            (row.voronoi_redundant, row.traditional_redundant) for row in rows
        ]
        unit = "validations"
    else:
        raise ValueError(
            f"value must be 'time' or 'redundant', got {value!r}"
        )
    peak = max(max(pair) for pair in series) or 1.0
    lines = [title, f"(bar unit: {unit}; V = Voronoi method, T = traditional)"]
    for row, (v_value, t_value) in zip(rows, series):
        label = _format_parameter(row.parameter, as_query_size)
        v_bar = "#" * max(1, int(round(v_value / peak * width)))
        t_bar = "#" * max(1, int(round(t_value / peak * width)))
        lines.append(f"{label:>12} V |{v_bar:<{width}}| {v_value:,.1f}")
        lines.append(f"{'':>12} T |{t_bar:<{width}}| {t_value:,.1f}")
    return "\n".join(lines)


# -- command line ---------------------------------------------------------------

_TARGETS = (
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "batch",
    "mixed",
    "composite",
    "serve",
    "all",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line driver: regenerate the requested tables/figures."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=_TARGETS)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (1E5..1E6 points, 1000 reps); "
        "slow in pure Python",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="override repetitions"
    )
    parser.add_argument(
        "--backend",
        choices=("pure", "scipy"),
        default=None,
        help="Delaunay backend (default scipy for speed; results identical)",
    )
    parser.add_argument(
        "--data-size",
        type=int,
        default=None,
        help="fixed data size for the query-size sweep",
    )
    parser.add_argument(
        "--batch-distinct",
        type=int,
        default=30,
        help="batch target: distinct regions in the trace",
    )
    parser.add_argument(
        "--batch-repeat",
        type=int,
        default=3,
        help="batch target: repetitions of each region in the trace",
    )
    parser.add_argument(
        "--batch-query-size",
        type=float,
        default=0.01,
        help="batch target: query size of the trace regions",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="serve target: concurrent client connections",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="serve target: cross-client coalescing window",
    )
    args = parser.parse_args(argv)

    config = (
        ExperimentConfig.paper_scale()
        if args.paper_scale
        else ExperimentConfig()
    )
    if args.repetitions is not None:
        config = replace(config, repetitions=args.repetitions)
    if args.backend is not None:
        config = replace(config, backend_kind=args.backend)
    if args.data_size is not None:
        config = replace(config, fixed_data_size=args.data_size)

    def progress(message: str) -> None:
        print(f"  [{message}]", file=sys.stderr)

    if args.target in ("batch", "all"):
        batch_rows = run_batch_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            progress=progress,
        )
        print(
            "\nBatch engine throughput "
            f"({args.batch_distinct} regions x {args.batch_repeat} hits, "
            f"query size {args.batch_query_size:.0%}):"
        )
        print(render_batch_table(batch_rows))
        if args.target == "batch":
            return 0

    if args.target in ("mixed", "all"):
        mixed_rows = run_mixed_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            progress=progress,
        )
        print(
            "\nHeterogeneous batch throughput (mixed area/window/knn/"
            f"nearest specs, {args.batch_distinct} distinct x "
            f"{args.batch_repeat} hits):"
        )
        print(render_batch_table(mixed_rows))
        if args.target == "mixed":
            return 0

    if args.target in ("serve", "all"):
        serve_rows = run_serve_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            clients=args.clients,
            distinct=args.batch_distinct,
            repeat=args.batch_repeat,
            query_size=args.batch_query_size,
            window_ms=args.window_ms,
            progress=progress,
        )
        print(
            f"\nServed throughput over the NDJSON wire ({args.clients} "
            f"coalesced clients vs one sequential client, "
            f"{args.batch_distinct} regions x {args.batch_repeat} hits):"
        )
        print(render_batch_table(serve_rows))
        if args.target == "serve":
            return 0

    if args.target in ("composite", "all"):
        composite_rows = run_composite_throughput_experiment(
            config,
            data_size=args.data_size or 10_000,
            distinct=args.batch_distinct,
            query_size=min(args.batch_query_size, 0.001),
            progress=progress,
        )
        print(
            "\nComposite decomposition throughput (unions/intersections/"
            f"differences of 4 sibling regions, {args.batch_distinct} "
            "distinct specs):"
        )
        print(render_batch_table(composite_rows))
        if args.target == "composite":
            return 0

    need_data = args.target in ("table1", "fig4", "fig5", "all")
    need_query = args.target in ("table2", "fig6", "fig7", "all")

    data_rows = (
        run_data_size_sweep(config, progress=progress) if need_data else []
    )
    query_rows = (
        run_query_size_sweep(config, progress=progress) if need_query else []
    )

    if args.target in ("table1", "all"):
        print("\nTable I — data-size sweep "
              f"(query size {config.fixed_query_size:.0%}):")
        print(render_table(data_rows, parameter_label="Data size"))
    if args.target in ("fig4", "all"):
        print()
        print(
            render_figure(
                data_rows, value="time", title="Fig. 4 — time vs data size"
            )
        )
    if args.target in ("fig5", "all"):
        print()
        print(
            render_figure(
                data_rows,
                value="redundant",
                title="Fig. 5 — redundant validations vs data size",
            )
        )
    if args.target in ("table2", "all"):
        print(f"\nTable II — query-size sweep "
              f"(data size {config.fixed_data_size:,}):")
        print(
            render_table(
                query_rows, parameter_label="Query size", as_query_size=True
            )
        )
    if args.target in ("fig6", "all"):
        print()
        print(
            render_figure(
                query_rows,
                value="time",
                title="Fig. 6 — time vs query size",
                as_query_size=True,
            )
        )
    if args.target in ("fig7", "all"):
        print()
        print(
            render_figure(
                query_rows,
                value="redundant",
                title="Fig. 7 — redundant validations vs query size",
                as_query_size=True,
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
