"""Seeded synthetic point datasets and update workloads.

The paper's databases are uniform random points in the solution space (the
unit square here; the paper never states units, and only ratios matter).
Clustered and grid datasets are provided beyond the paper for robustness
testing — the Voronoi method's invariants are distribution-free, and the
test suite exercises them on all three.

:func:`moving_object_steps` extends the static datasets with a *dynamic*
workload — random-waypoint object motion with hot-spot drift — whose move
steps (each a delete of the object's old position plus an insert of the
new one) drive the live-query subscription benchmarks and tests.

The **production-traffic model** lives at the bottom of the module:
:func:`zipf_ranks` draws skewed popularity (a few tiles take most of
the requests, the long tail takes the rest), and
:func:`bursty_arrivals` turns a target request rate into absolute
arrival timestamps with a diurnal wave and Poisson bursts — together
the three statistical facts that make real serving traffic different
from the uniform traces benchmarks default to.  Everything is
deterministic in its seed.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


def uniform_points(
    n: int,
    seed: int = 0,
    *,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """``n`` points uniform in ``space`` (the paper's data distribution)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = random.Random(seed)
    return [
        Point(
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )
        for _ in range(n)
    ]


def clustered_points(
    n: int,
    seed: int = 0,
    *,
    clusters: int = 10,
    spread: float = 0.03,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """``n`` points in Gaussian clusters (city-like density variation).

    Cluster centres are uniform in ``space``; members are normal around the
    centre with standard deviation ``spread`` (clipped into the space so all
    indexes built on default bounds stay valid).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    rng = random.Random(seed)
    centers = [
        (
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )
        for _ in range(clusters)
    ]
    points: List[Point] = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(clusters)]
        x = min(max(rng.gauss(cx, spread), space.min_x), space.max_x)
        y = min(max(rng.gauss(cy, spread), space.min_y), space.max_y)
        points.append(Point(x, y))
    return points


def grid_points(
    n: int,
    *,
    jitter: float = 0.0,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """About ``n`` points on a regular grid, optionally jittered.

    A worst-ish case for Delaunay degeneracy (many cocircular quadruples
    when ``jitter == 0``), which is exactly why the tests use it.  Returns
    ``ceil(sqrt(n))**2`` points.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    side = math.ceil(math.sqrt(n))
    rng = random.Random(seed)
    step_x = space.width / side
    step_y = space.height / side
    points: List[Point] = []
    for i in range(side):
        for j in range(side):
            x = space.min_x + (i + 0.5) * step_x
            y = space.min_y + (j + 0.5) * step_y
            if jitter > 0.0:
                x += rng.uniform(-jitter, jitter) * step_x
                y += rng.uniform(-jitter, jitter) * step_y
            points.append(
                Point(
                    min(max(x, space.min_x), space.max_x),
                    min(max(y, space.min_y), space.max_y),
                )
            )
    return points


#: one object move: ``(object index, (old x, old y), (new x, new y))``
MoveStep = Tuple[int, Tuple[float, float], Tuple[float, float]]


def moving_object_steps(
    positions: List[Point],
    steps: int,
    seed: int = 0,
    *,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    speed: float = 0.02,
    hotspot_fraction: float = 0.3,
    hotspot_spread: float = 0.05,
    hotspot_drift: float = 0.002,
) -> Iterator[MoveStep]:
    """Random-waypoint motion with hot-spot drift, as discrete move steps.

    The standard moving-objects workload: each object in ``positions``
    (its starting location — e.g. :func:`uniform_points`) heads toward a
    private waypoint at ``speed`` per step; on arrival it draws a new
    waypoint — uniform in ``space``, or, with probability
    ``hotspot_fraction``, Gaussian (``hotspot_spread``) around a shared
    *hot spot* that itself random-walks ``hotspot_drift`` per step, so
    the write load concentrates on a slowly wandering region (the
    dirty-tile fan-out's non-uniform case).

    Yields ``steps`` :data:`MoveStep` tuples, one randomly chosen object
    per step.  A move maps onto the mutable store as delete(old row) +
    insert(new position) — the caller owns the object→row bookkeeping.
    The input list is not mutated; everything is deterministic in
    ``seed``.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    if not positions:
        if steps:
            raise ValueError("cannot generate steps without objects")
        return
    if speed <= 0.0:
        raise ValueError(f"speed must be positive, got {speed}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    rng = random.Random(seed)
    current = [(p.x, p.y) for p in positions]

    def clamp(x: float, y: float) -> Tuple[float, float]:
        """Clip a coordinate pair into ``space``."""
        return (
            min(max(x, space.min_x), space.max_x),
            min(max(y, space.min_y), space.max_y),
        )

    hot = (
        rng.uniform(space.min_x, space.max_x),
        rng.uniform(space.min_y, space.max_y),
    )

    def new_waypoint() -> Tuple[float, float]:
        """Draw the next waypoint (hot-spot biased or uniform)."""
        if rng.random() < hotspot_fraction:
            return clamp(
                rng.gauss(hot[0], hotspot_spread),
                rng.gauss(hot[1], hotspot_spread),
            )
        return (
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )

    waypoints = [new_waypoint() for _ in current]
    for _ in range(steps):
        hot = clamp(
            hot[0] + rng.uniform(-hotspot_drift, hotspot_drift),
            hot[1] + rng.uniform(-hotspot_drift, hotspot_drift),
        )
        index = rng.randrange(len(current))
        old = current[index]
        target = waypoints[index]
        dx = target[0] - old[0]
        dy = target[1] - old[1]
        distance = math.hypot(dx, dy)
        if distance <= speed:
            new = target
            waypoints[index] = new_waypoint()
        else:
            scale = speed / distance
            new = clamp(old[0] + dx * scale, old[1] + dy * scale)
        current[index] = new
        yield (index, old, new)


def zipf_ranks(
    n_items: int,
    count: int,
    *,
    alpha: float = 1.1,
    seed: int = 0,
) -> List[int]:
    """``count`` item indices drawn Zipf-skewed over ``n_items`` ranks.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** alpha`` — the classic popularity law of production
    read traffic (a handful of hot map tiles absorb most requests).
    ``alpha`` around 1 matches measured web/tile workloads; larger is
    more skewed, ``alpha=0`` degenerates to uniform.  Sampling is by
    bisection over the precomputed cumulative weights, so cost is
    ``O(n_items + count log n_items)``.  Deterministic in ``seed``.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if alpha < 0.0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    from bisect import bisect_right

    rng = random.Random(seed)
    cumulative: List[float] = []
    total = 0.0
    for rank in range(n_items):
        total += 1.0 / (rank + 1) ** alpha
        cumulative.append(total)
    return [
        bisect_right(cumulative, rng.random() * total)
        for _ in range(count)
    ]


def bursty_arrivals(
    count: int,
    rate: float,
    *,
    seed: int = 0,
    diurnal_period_s: float = 0.0,
    diurnal_amplitude: float = 0.5,
    burst_probability: float = 0.0,
    burst_size: int = 8,
) -> List[float]:
    """``count`` absolute arrival times (seconds) at mean ``rate`` /s.

    The base process is Poisson: exponential inter-arrival gaps at the
    instantaneous rate.  Two production effects modulate it:

    * **Diurnal wave** — with ``diurnal_period_s > 0`` the rate swings
      sinusoidally by ``±diurnal_amplitude`` (fraction of ``rate``)
      over each period, compressing a day's load curve into the trace.
    * **Poisson bursts** — with probability ``burst_probability`` an
      arrival brings ``burst_size - 1`` followers packed tightly behind
      it (a thundering herd: one viral location, one fleet of vehicles
      reporting in sync), which is what actually exercises an admission
      queue — a smooth Poisson stream at the same mean rarely does.

    Returns a sorted list of timestamps starting near 0.  Offered load
    averages ``rate`` requests/second regardless of the knobs (bursts
    add followers but the gap after a burst grows to compensate).
    Deterministic in ``seed``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError(
            f"burst_probability must be in [0, 1], "
            f"got {burst_probability}"
        )
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1), "
            f"got {diurnal_amplitude}"
        )
    rng = random.Random(seed)
    arrivals: List[float] = []
    now = 0.0
    while len(arrivals) < count:
        instantaneous = rate
        if diurnal_period_s > 0.0:
            instantaneous = rate * (
                1.0
                + diurnal_amplitude
                * math.sin(2.0 * math.pi * now / diurnal_period_s)
            )
        if rng.random() < burst_probability:
            # A burst: the leader plus followers one mean service gap
            # apart, then a long compensating lull so the offered load
            # still averages `rate`.
            followers = min(burst_size, count - len(arrivals))
            for i in range(followers):
                arrivals.append(now + i / (instantaneous * burst_size))
            # Advance past the last follower before the lull, or a short
            # exponential draw could start the next arrival inside the
            # burst and break the sorted-timestamps contract.
            now += (followers - 1) / (instantaneous * burst_size)
            now += rng.expovariate(instantaneous) * burst_size
        else:
            arrivals.append(now)
            now += rng.expovariate(instantaneous)
    return arrivals[:count]
