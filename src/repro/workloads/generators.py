"""Seeded synthetic point datasets.

The paper's databases are uniform random points in the solution space (the
unit square here; the paper never states units, and only ratios matter).
Clustered and grid datasets are provided beyond the paper for robustness
testing — the Voronoi method's invariants are distribution-free, and the
test suite exercises them on all three.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


def uniform_points(
    n: int,
    seed: int = 0,
    *,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """``n`` points uniform in ``space`` (the paper's data distribution)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = random.Random(seed)
    return [
        Point(
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )
        for _ in range(n)
    ]


def clustered_points(
    n: int,
    seed: int = 0,
    *,
    clusters: int = 10,
    spread: float = 0.03,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """``n`` points in Gaussian clusters (city-like density variation).

    Cluster centres are uniform in ``space``; members are normal around the
    centre with standard deviation ``spread`` (clipped into the space so all
    indexes built on default bounds stay valid).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    rng = random.Random(seed)
    centers = [
        (
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )
        for _ in range(clusters)
    ]
    points: List[Point] = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(clusters)]
        x = min(max(rng.gauss(cx, spread), space.min_x), space.max_x)
        y = min(max(rng.gauss(cy, spread), space.min_y), space.max_y)
        points.append(Point(x, y))
    return points


def grid_points(
    n: int,
    *,
    jitter: float = 0.0,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Point]:
    """About ``n`` points on a regular grid, optionally jittered.

    A worst-ish case for Delaunay degeneracy (many cocircular quadruples
    when ``jitter == 0``), which is exactly why the tests use it.  Returns
    ``ceil(sqrt(n))**2`` points.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    side = math.ceil(math.sqrt(n))
    rng = random.Random(seed)
    step_x = space.width / side
    step_y = space.height / side
    points: List[Point] = []
    for i in range(side):
        for j in range(side):
            x = space.min_x + (i + 0.5) * step_x
            y = space.min_y + (j + 0.5) * step_y
            if jitter > 0.0:
                x += rng.uniform(-jitter, jitter) * step_x
                y += rng.uniform(-jitter, jitter) * step_y
            points.append(
                Point(
                    min(max(x, space.min_x), space.max_x),
                    min(max(y, space.min_y), space.max_y),
                )
            )
    return points
