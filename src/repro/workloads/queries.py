"""Query-area workloads.

The paper's experiments issue "a randomly generated polygon of ten points"
per repetition, scaled so the MBR covers a chosen fraction (*query size*) of
the solution space.  :func:`make_query_areas` reproduces that; the shape
variants (convex / rectangle) feed the polygon-shape ablation bench, which
probes the paper's introduction claim that the traditional method is fine
for rectangle-like areas and bad for irregular ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.geometry.polygon import Polygon, convex_hull
from repro.geometry.random_shapes import (
    random_star_polygon,
    scale_polygon_to_query_size,
)
from repro.geometry.rectangle import Rect

_SHAPES = ("irregular", "convex", "rectangle")


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible stream of query areas.

    Parameters mirror the paper's experimental knobs: ``query_size`` is
    MBR(area) / area(space); ``n_vertices`` is 10 in every paper experiment;
    ``shape`` selects the ablation variants.
    """

    query_size: float
    n_vertices: int = 10
    shape: str = "irregular"
    seed: int = 0
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.query_size <= 1.0:
            raise ValueError(
                f"query_size must be in (0, 1], got {self.query_size}"
            )
        if self.shape not in _SHAPES:
            raise ValueError(
                f"shape must be one of {_SHAPES}, got {self.shape!r}"
            )
        if self.n_vertices < 3:
            raise ValueError(
                f"n_vertices must be >= 3, got {self.n_vertices}"
            )

    def areas(self, count: int) -> List[Polygon]:
        """The first ``count`` query areas of this workload (deterministic)."""
        rng = random.Random(self.seed)
        return [self._one(rng) for _ in range(count)]

    def _one(self, rng: random.Random) -> Polygon:
        if self.shape == "rectangle":
            # A rectangle with a random aspect ratio: MBR area == own area,
            # the best case for the traditional method.
            aspect = rng.uniform(0.4, 2.5)
            width = (self.query_size * aspect) ** 0.5
            height = self.query_size / width
            width = min(width, 1.0)
            height = min(height, 1.0)
            x = rng.uniform(0.0, 1.0 - width) + self.space.min_x
            y = rng.uniform(0.0, 1.0 - height) + self.space.min_y
            return Polygon.from_rect(Rect(x, y, x + width, y + height))

        shape = random_star_polygon(self.n_vertices, rng)
        if self.shape == "convex":
            hull = convex_hull(shape.vertices)
            shape = Polygon(hull)
        return scale_polygon_to_query_size(
            shape, self.query_size, self.space, rng
        )


def make_query_areas(
    query_size: float,
    count: int,
    *,
    n_vertices: int = 10,
    shape: str = "irregular",
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> List[Polygon]:
    """Convenience wrapper: the paper's query workload as a list."""
    return QueryWorkload(
        query_size=query_size,
        n_vertices=n_vertices,
        shape=shape,
        seed=seed,
        space=space,
    ).areas(count)
