"""Workload generation and the paper's experiment harness.

* :mod:`repro.workloads.generators` — seeded synthetic point datasets
  (uniform, the paper's workload; clustered and grid variants for
  robustness testing) and the moving-objects update workload
  (random-waypoint motion with hot-spot drift) feeding the live-query
  benchmarks.
* :mod:`repro.workloads.queries` — query-area workloads (the paper's random
  10-vertex polygons at a given query size, plus convex/rectangle variants
  for the ablation).
* :mod:`repro.workloads.experiments` — the sweeps regenerating Tables I–II
  and Figures 4–7, with ASCII renderings matching the paper's table layout.
  Also runnable as a module: ``python -m repro.workloads.experiments``.
"""

from repro.workloads.generators import (
    clustered_points,
    grid_points,
    moving_object_steps,
    uniform_points,
)
from repro.workloads.queries import QueryWorkload, make_query_areas
from repro.workloads.experiments import (
    ExperimentConfig,
    SweepRow,
    run_data_size_sweep,
    run_query_size_sweep,
    render_table,
)

__all__ = [
    "uniform_points",
    "clustered_points",
    "grid_points",
    "moving_object_steps",
    "QueryWorkload",
    "make_query_areas",
    "ExperimentConfig",
    "SweepRow",
    "run_data_size_sweep",
    "run_query_size_sweep",
    "render_table",
]
