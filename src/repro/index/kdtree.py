"""Dynamic k-d tree over 2-D points.

One of the classical indexes the paper's related work surveys (Bentley
1975).  Supports the same interface as the R-tree — window query and
(k-)nearest-neighbour — so the ablation bench can swap it into the
traditional filter–refine pipeline.

The tree alternates split axes by depth.  Deletion is implemented by
tombstoning plus periodic rebuilds (amortised O(log n)); bulk loading builds
a perfectly balanced tree by median splitting.

Being a *binary* tree over point coordinates (rather than a bucketed MBR
tree), its per-node fanout is 2, so ``index_node_accesses`` counts are
naturally higher than the R-tree's for the same query — the ablation bench
normalises by reporting both node accesses and wall time.  Incremental
inserts do not rebalance; heavily skewed insert orders degrade toward
O(n) paths until the next tombstone-triggered rebuild restores balance.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import Entry, SpatialIndex

_REBUILD_TOMBSTONE_FRACTION = 0.5


class _KDNode:
    __slots__ = ("point", "item_id", "axis", "left", "right", "deleted")

    def __init__(self, point: Point, item_id: int, axis: int) -> None:
        self.point = point
        self.item_id = item_id
        self.axis = axis  # 0 = x, 1 = y
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.deleted = False

    def key(self) -> float:
        return self.point.x if self.axis == 0 else self.point.y


class KDTree(SpatialIndex):
    """A 2-D k-d tree with window and best-first NN queries."""

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[_KDNode] = None
        self._count = 0
        self._tombstones = 0

    # -- construction ------------------------------------------------------

    def insert(self, point: Point, item_id: int) -> None:
        if self._root is None:
            self._root = _KDNode(point, item_id, axis=0)
        else:
            node = self._root
            while True:
                coordinate = point.x if node.axis == 0 else point.y
                branch = "left" if coordinate < node.key() else "right"
                child = getattr(node, branch)
                if child is None:
                    setattr(
                        node,
                        branch,
                        _KDNode(point, item_id, axis=1 - node.axis),
                    )
                    break
                node = child
        self._count += 1

    def bulk_load(self, entries) -> None:
        """Median-split balanced build (replaces repeated insertion)."""
        entries = list(entries)
        existing = list(self.items())
        all_entries = existing + entries
        self._root = _build_balanced(all_entries, axis=0)
        self._count = len(all_entries)
        self._tombstones = 0

    def delete(self, point: Point, item_id: int) -> bool:
        node = self._root
        while node is not None:
            if (
                not node.deleted
                and node.point == point
                and node.item_id == item_id
            ):
                node.deleted = True
                self._count -= 1
                self._tombstones += 1
                self._maybe_rebuild()
                return True
            coordinate = point.x if node.axis == 0 else point.y
            # Equal keys go right on insert, but an equal-key duplicate may
            # also match this node's key exactly; search both sides when
            # the coordinate equals the split key.
            if coordinate < node.key():
                node = node.left
            elif coordinate > node.key():
                node = node.right
            else:
                # Ambiguous: exhaustive search of both subtrees from here.
                return self._delete_exhaustive(node, point, item_id)
        return False

    def _delete_exhaustive(
        self, start: _KDNode, point: Point, item_id: int
    ) -> bool:
        stack = [start]
        while stack:
            node = stack.pop()
            if (
                not node.deleted
                and node.point == point
                and node.item_id == item_id
            ):
                node.deleted = True
                self._count -= 1
                self._tombstones += 1
                self._maybe_rebuild()
                return True
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return False

    def _maybe_rebuild(self) -> None:
        if (
            self._count > 0
            and self._tombstones > self._count * _REBUILD_TOMBSTONE_FRACTION
        ):
            live = list(self.items())
            self._root = _build_balanced(live, axis=0)
            self._tombstones = 0

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------

    def window_query(self, window: Rect) -> List[Entry]:
        results: List[Entry] = []
        if self._root is None:
            return results
        stack: List[Tuple[_KDNode, float, float, float, float]] = [
            (
                self._root,
                float("-inf"),
                float("-inf"),
                float("inf"),
                float("inf"),
            )
        ]
        while stack:
            node, min_x, min_y, max_x, max_y = stack.pop()
            self.stats.node_accesses += 1
            if not node.deleted:
                self.stats.entry_tests += 1
                if window.contains_point(node.point):
                    results.append((node.point, node.item_id))
            key = node.key()
            if node.axis == 0:
                if node.left is not None and window.min_x < key:
                    stack.append((node.left, min_x, min_y, key, max_y))
                if node.right is not None and window.max_x >= key:
                    stack.append((node.right, key, min_y, max_x, max_y))
            else:
                if node.left is not None and window.min_y < key:
                    stack.append((node.left, min_x, min_y, max_x, key))
                if node.right is not None and window.max_y >= key:
                    stack.append((node.right, min_x, key, max_x, max_y))
        return results

    def window_ids_array(self, window: Rect):
        """Bulk window probe: ids only, contained half-spaces wholesale.

        Tracks each subtree's implicit bounding box during the descent
        (as :meth:`window_query` does) and, once a box falls entirely
        inside the window, emits the whole subtree's live ids without
        further per-point tests.  Id set identical to
        :meth:`window_query`; int64 array, unspecified order.
        """
        import numpy as np

        ids: List[int] = []
        if self._root is None:
            return np.empty(0, dtype=np.int64)
        inf = float("inf")
        stack: List[Tuple[_KDNode, float, float, float, float]] = [
            (self._root, -inf, -inf, inf, inf)
        ]
        while stack:
            node, min_x, min_y, max_x, max_y = stack.pop()
            if (
                window.min_x <= min_x
                and window.min_y <= min_y
                and window.max_x >= max_x
                and window.max_y >= max_y
            ):
                self._collect_subtree_ids(node, ids)
                continue
            self.stats.node_accesses += 1
            if not node.deleted:
                self.stats.entry_tests += 1
                if window.contains_point(node.point):
                    ids.append(node.item_id)
            key = node.key()
            if node.axis == 0:
                if node.left is not None and window.min_x < key:
                    stack.append((node.left, min_x, min_y, key, max_y))
                if node.right is not None and window.max_x >= key:
                    stack.append((node.right, key, min_y, max_x, max_y))
            else:
                if node.left is not None and window.min_y < key:
                    stack.append((node.left, min_x, min_y, max_x, key))
                if node.right is not None and window.max_y >= key:
                    stack.append((node.right, min_x, key, max_x, max_y))
        return np.fromiter(ids, dtype=np.int64, count=len(ids))

    def _collect_subtree_ids(self, start: _KDNode, ids: List[int]) -> None:
        """Append every live entry id below ``start`` (no geometric tests)."""
        stack = [start]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if not node.deleted:
                ids.append(node.item_id)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        results = self.k_nearest_neighbors(query, 1)
        return results[0] if results else None

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        """Best-first traversal over subtree bounding boxes."""
        if k <= 0 or self._root is None:
            return []
        counter = itertools.count()
        world = Rect(
            float("-inf"), float("-inf"), float("inf"), float("inf")
        )
        # Heap items: (distance, kind, tiebreak, payload, box); kind 0 =
        # subtree (explored before equal-distance entries), kind 1 = entry
        # tie-broken by id — deterministic results on duplicate locations.
        heap: List[Tuple[float, int, int, object, Optional[Rect]]] = [
            (0.0, 0, next(counter), self._root, world)
        ]
        results: List[Entry] = []
        while heap and len(results) < k:
            _, kind, _, item, box = heapq.heappop(heap)
            if kind == 0:
                self.stats.node_accesses += 1
                node: _KDNode = item  # type: ignore[assignment]
                assert box is not None
                if not node.deleted:
                    self.stats.entry_tests += 1
                    heapq.heappush(
                        heap,
                        (
                            node.point.squared_distance_to(query),
                            1,
                            node.item_id,
                            (node.point, node.item_id),
                            None,
                        ),
                    )
                key = node.key()
                if node.axis == 0:
                    child_boxes = (
                        Rect(box.min_x, box.min_y, key, box.max_y),
                        Rect(key, box.min_y, box.max_x, box.max_y),
                    )
                else:
                    child_boxes = (
                        Rect(box.min_x, box.min_y, box.max_x, key),
                        Rect(box.min_x, key, box.max_x, box.max_y),
                    )
                for child, child_box in zip(
                    (node.left, node.right), child_boxes
                ):
                    if child is not None:
                        heapq.heappush(
                            heap,
                            (
                                _box_squared_distance(child_box, query),
                                0,
                                next(counter),
                                child,
                                child_box,
                            ),
                        )
            else:
                results.append(item)  # type: ignore[arg-type]
        return results

    def items(self) -> Iterator[Entry]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if not node.deleted:
                yield (node.point, node.item_id)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    @property
    def depth(self) -> int:
        """Maximum node depth (1 for a single-node tree, 0 when empty)."""
        best = 0
        stack: List[Tuple[Optional[_KDNode], int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if node is None:
                continue
            best = max(best, depth)
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
        return best


def _build_balanced(entries: List[Entry], axis: int) -> Optional[_KDNode]:
    if not entries:
        return None
    entries.sort(key=lambda e: e[0].x if axis == 0 else e[0].y)
    median = len(entries) // 2
    # Push equal keys to the right subtree to match insert()'s convention.
    while median > 0 and (
        (entries[median - 1][0].x if axis == 0 else entries[median - 1][0].y)
        == (entries[median][0].x if axis == 0 else entries[median][0].y)
    ):
        median -= 1
    point, item_id = entries[median]
    node = _KDNode(point, item_id, axis)
    node.left = _build_balanced(entries[:median], 1 - axis)
    node.right = _build_balanced(entries[median + 1 :], 1 - axis)
    return node


def _box_squared_distance(box: Rect, p: Point) -> float:
    dx = max(box.min_x - p.x, 0.0, p.x - box.max_x)
    dy = max(box.min_y - p.y, 0.0, p.y - box.max_y)
    return dx * dx + dy * dy
