"""Spatial index substrate.

The traditional area-query baseline needs a spatial index supporting
*window* (range) queries; both methods need *nearest-neighbour* queries (the
Voronoi method seeds its expansion with one).  The paper uses an R-tree for
both roles; this package provides that R-tree plus the other classical
indexes the paper's related-work section surveys, all behind one interface:

* :class:`~repro.index.rtree.RTree` — Guttman R-tree, quadratic split (the
  paper's index).
* :class:`~repro.index.rstar.RStarTree` — R*-tree split/forced-reinsert
  variant (used by the index-choice ablation).
* :class:`~repro.index.kdtree.KDTree` — dynamic/bulk-loaded k-d tree.
* :class:`~repro.index.quadtree.QuadTree` — PR quadtree.
* :class:`~repro.index.grid.GridIndex` — uniform grid.
* :class:`~repro.index.base.BruteForceIndex` — linear-scan oracle for tests.

All indexes store ``(Point, item_id)`` pairs and count node/page accesses so
experiments can report IO-style metrics.
"""

from repro.index.base import BruteForceIndex, IndexStats, SpatialIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.quadtree import QuadTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

__all__ = [
    "SpatialIndex",
    "IndexStats",
    "BruteForceIndex",
    "RTree",
    "RStarTree",
    "KDTree",
    "QuadTree",
    "GridIndex",
]

INDEX_REGISTRY = {
    "rtree": RTree,
    "rstar": RStarTree,
    "kdtree": KDTree,
    "quadtree": QuadTree,
    "grid": GridIndex,
    "brute": BruteForceIndex,
}


def make_index(kind: str, **kwargs) -> SpatialIndex:
    """Instantiate an index by registry name (see ``INDEX_REGISTRY``)."""
    try:
        cls = INDEX_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; choose from "
            f"{sorted(INDEX_REGISTRY)}"
        ) from None
    return cls(**kwargs)
