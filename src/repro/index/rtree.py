"""Guttman R-tree with quadratic split.

This is the index the paper's experiments use for **both** methods: the
traditional baseline runs its MBR window query on it, and the Voronoi method
uses its nearest-neighbour search to find the seed point ("For fairness, the
index used to provide the NN query in our method is also R-tree").

Implemented features:

* insertion with Guttman's ChooseLeaf + quadratic node split,
* deletion with CondenseTree re-insertion,
* window (range) query,
* best-first (priority-queue) nearest-neighbour and k-NN search, and
* STR (sort-tile-recursive) bulk loading for fast construction of the large
  experimental datasets.

Nodes count their accesses in :attr:`SpatialIndex.stats` so experiments can
report page-read proxies.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect, union_all
from repro.index.base import Entry, SpatialIndex

_DEFAULT_MAX_ENTRIES = 16


class _Node:
    """One R-tree node: a leaf holds ``Entry`` tuples, an internal node holds
    child nodes.  ``mbr`` is kept tight at all times."""

    __slots__ = ("is_leaf", "entries", "children", "mbr", "parent", "_weight")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: List[Entry] = []
        self.children: List["_Node"] = []
        self.mbr: Optional[Rect] = None
        self.parent: Optional["_Node"] = None
        self._weight = 0  # entries below an internal node (leaves count live)

    def weight(self) -> int:
        """Number of entries in this subtree (supports counting queries)."""
        return len(self.entries) if self.is_leaf else self._weight

    def recompute_mbr(self) -> None:
        if self.is_leaf:
            if self.entries:
                self.mbr = Rect.from_points(p for p, _ in self.entries)
            else:
                self.mbr = None
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = union_all(rects) if rects else None
            self._weight = sum(child.weight() for child in self.children)

    def extend_mbr(self, rect: Rect) -> None:
        self.mbr = rect if self.mbr is None else self.mbr.union(rect)

    def size(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


def _mask_boundary_entries(window: Rect, sure_ids: List[int], entries):
    """Finish a bulk window probe: mask boundary-leaf entries in one pass.

    ``sure_ids`` came from fully-contained subtrees (no tests needed);
    ``entries`` are the candidates from partially-overlapping leaves.
    Packs the candidates into coordinate/id columns and applies one
    vectorized closed-bounds mask — the same comparison
    ``Rect.contains_point`` performs, at C speed per entry.  Shared by
    the R-tree family and the quadtree.
    """
    import numpy as np

    sure = np.fromiter(sure_ids, dtype=np.int64, count=len(sure_ids))
    count = len(entries)
    if not count:
        return sure
    if count < 32:  # numpy packing overhead beats tiny leaf scans
        matched = [
            item_id
            for point, item_id in entries
            if window.contains_point(point)
        ]
        inside = np.fromiter(matched, dtype=np.int64, count=len(matched))
        return np.concatenate((sure, inside)) if sure.size else inside
    from repro.geometry.kernels import rect_contains_many

    xs = np.fromiter((p.x for p, _ in entries), np.float64, count)
    ys = np.fromiter((p.y for p, _ in entries), np.float64, count)
    ids = np.fromiter((i for _, i in entries), np.int64, count)
    inside = ids[rect_contains_many(window, xs, ys)]
    return np.concatenate((sure, inside)) if sure.size else inside


class RTree(SpatialIndex):
    """Dynamic R-tree over 2-D points.

    Parameters
    ----------
    max_entries:
        Node capacity ``M``; a node splits when it would exceed this.
    min_entries:
        Minimum fill ``m`` (default ``ceil(M * 0.4)``); underfull nodes are
        dissolved and their contents re-inserted on deletion.
    """

    def __init__(
        self,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        min_entries: Optional[int] = None,
    ) -> None:
        super().__init__()
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries
            if min_entries is not None
            else max(1, math.ceil(max_entries * 0.4))
        )
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, max_entries/2], got "
                f"{self.min_entries} for max_entries={max_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._count = 0
        self._packed = False  # STR bulk loads may legally underfill nodes

    # -- construction ------------------------------------------------------

    def insert(self, point: Point, item_id: int) -> None:
        leaf = self._choose_leaf(self._root, point)
        leaf.entries.append((point, item_id))
        leaf.extend_mbr(Rect.from_point(point))
        self._count += 1
        if leaf.size() > self.max_entries:
            self._split_and_propagate(leaf)
        else:
            self._tighten_upwards(leaf.parent)

    def bulk_load(self, entries) -> None:
        """STR (sort-tile-recursive) packing.

        Replaces the current contents only if the tree is empty, otherwise
        falls back to repeated insertion (mixing packed and dynamic content
        would violate balance guarantees we rely on in tests).
        """
        entries = list(entries)
        if self._count > 0:
            for point, item_id in entries:
                self.insert(point, item_id)
            return
        if not entries:
            return
        self._root = self._str_pack(entries)
        self._root.parent = None
        self._count = len(entries)
        self._packed = True

    def _str_pack(self, entries: List[Entry]) -> _Node:
        capacity = self.max_entries
        if len(entries) <= capacity:
            leaf = _Node(is_leaf=True)
            leaf.entries = list(entries)
            leaf.recompute_mbr()
            return leaf

        # Leaf level: sort by x, slice into vertical strips, sort each strip
        # by y, and cut into runs of `capacity`.
        leaf_count = math.ceil(len(entries) / capacity)
        strip_count = math.ceil(math.sqrt(leaf_count))
        by_x = sorted(entries, key=lambda e: (e[0].x, e[0].y))
        strip_size = math.ceil(len(by_x) / strip_count)
        leaves: List[_Node] = []
        for i in range(0, len(by_x), strip_size):
            strip = sorted(
                by_x[i : i + strip_size], key=lambda e: (e[0].y, e[0].x)
            )
            for j in range(0, len(strip), capacity):
                leaf = _Node(is_leaf=True)
                leaf.entries = strip[j : j + capacity]
                leaf.recompute_mbr()
                leaves.append(leaf)

        # Pack upper levels the same way on node centres.
        level = leaves
        while len(level) > 1:
            parent_count = math.ceil(len(level) / capacity)
            strip_count = math.ceil(math.sqrt(parent_count))
            by_x_nodes = sorted(
                level, key=lambda n: (n.mbr.center.x, n.mbr.center.y)
            )
            strip_size = math.ceil(len(by_x_nodes) / strip_count)
            parents: List[_Node] = []
            for i in range(0, len(by_x_nodes), strip_size):
                strip = sorted(
                    by_x_nodes[i : i + strip_size],
                    key=lambda n: (n.mbr.center.y, n.mbr.center.x),
                )
                for j in range(0, len(strip), capacity):
                    parent = _Node(is_leaf=False)
                    parent.children = strip[j : j + capacity]
                    for child in parent.children:
                        child.parent = parent
                    parent.recompute_mbr()
                    parents.append(parent)
            level = parents
        return level[0]

    def delete(self, point: Point, item_id: int) -> bool:
        leaf = self._find_leaf(self._root, point, item_id)
        if leaf is None:
            return False
        leaf.entries.remove((point, item_id))
        self._count -= 1
        self._condense_tree(leaf)
        # The root may have become a lone internal node; shrink the tree.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        return True

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------

    def window_query(self, window: Rect) -> List[Entry]:
        results: List[Entry] = []
        if self._root.mbr is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.is_leaf:
                self.stats.entry_tests += len(node.entries)
                results.extend(
                    entry
                    for entry in node.entries
                    if window.contains_point(entry[0])
                )
            else:
                stack.extend(
                    child
                    for child in node.children
                    if child.mbr is not None and window.intersects(child.mbr)
                )
        return results

    def window_ids_array(self, window: Rect):
        """Bulk window probe: ids only, fully-contained subtrees wholesale.

        Same id set as :meth:`window_query`, but subtrees whose MBR lies
        entirely inside the window dump their entries' ids without a
        single per-point containment test (the MBR containment already
        proves membership — the trick :meth:`window_count` uses for
        aggregates, here applied to materialization).  Only boundary
        leaves pay per-entry tests.  Returns an int64 array in
        unspecified order for the columnar refine paths to gather
        coordinates by row id.
        """
        import numpy as np

        ids: List[int] = []
        boundary_entries: List[Entry] = []
        if self._root.mbr is None:
            return np.empty(0, dtype=np.int64)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not window.intersects(node.mbr):
                continue
            self.stats.node_accesses += 1
            if window.contains_rect(node.mbr):
                self._collect_subtree_ids(node, ids)
                continue
            if node.is_leaf:
                self.stats.entry_tests += len(node.entries)
                boundary_entries.extend(node.entries)
            else:
                stack.extend(node.children)
        return _mask_boundary_entries(window, ids, boundary_entries)

    def _collect_subtree_ids(self, node: _Node, ids: List[int]) -> None:
        """Append every entry id below ``node`` (no geometric tests)."""
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                ids.extend([item_id for _, item_id in current.entries])
            else:
                self.stats.node_accesses += len(current.children)
                stack.extend(current.children)

    def window_count(self, window: Rect) -> int:
        """Number of entries inside ``window`` without materialising them.

        Subtrees whose MBR is fully contained in the window contribute
        their maintained weight and are not descended — a COUNT(*)
        aggregate query in O(perimeter) node visits instead of
        O(result size).
        """
        if self._root.mbr is None:
            return 0
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not window.intersects(node.mbr):
                continue
            self.stats.node_accesses += 1
            if window.contains_rect(node.mbr):
                total += node.weight()
                continue
            if node.is_leaf:
                self.stats.entry_tests += len(node.entries)
                total += sum(
                    1
                    for point, _ in node.entries
                    if window.contains_point(point)
                )
            else:
                stack.extend(node.children)
        return total

    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        results = self.k_nearest_neighbors(query, 1)
        return results[0] if results else None

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        """Best-first k-NN (Hjaltason & Samet style) over squared MINDIST.

        Deterministic tie-breaking: equidistant entries are returned in
        ascending id order (nodes sort before entries at equal distance so
        no closer-or-equal entry can be missed), matching the brute-force
        oracle and the Voronoi kNN exactly even on duplicate locations.
        """
        if k <= 0 or self._root.mbr is None:
            return []
        counter = itertools.count()  # heap never compares node objects
        heap: List[Tuple[float, int, int, object]] = [
            (
                self._root.mbr.squared_distance_to_point(query),
                0,
                next(counter),
                self._root,
            )
        ]
        results: List[Entry] = []
        while heap and len(results) < k:
            distance, kind, _, item = heapq.heappop(heap)
            if kind == 0:
                node: _Node = item  # type: ignore[assignment]
                self.stats.node_accesses += 1
                if node.is_leaf:
                    self.stats.entry_tests += len(node.entries)
                    for entry in node.entries:
                        heapq.heappush(
                            heap,
                            (
                                entry[0].squared_distance_to(query),
                                1,
                                entry[1],
                                entry,
                            ),
                        )
                else:
                    for child in node.children:
                        if child.mbr is not None:
                            heapq.heappush(
                                heap,
                                (
                                    child.mbr.squared_distance_to_point(query),
                                    0,
                                    next(counter),
                                    child,
                                ),
                            )
            else:
                results.append(item)  # type: ignore[arg-type]
        return results

    def items(self) -> Iterator[Entry]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)

    # -- introspection (used by tests and benches) --------------------------

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any structural invariant fails.

        Checked: tight MBRs, parent pointers, fill bounds (except the root,
        and except minimum fill after an STR bulk load, whose trailing slices
        may legally underfill), and uniform leaf depth.
        """
        leaf_depths: List[int] = []
        stack: List[Tuple[_Node, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if (
                not self._packed
                and node is not self._root
                and node.size() < self.min_entries
            ):
                raise AssertionError(
                    f"underfull node: {node.size()} < {self.min_entries}"
                )
            if node.size() > self.max_entries:
                raise AssertionError(
                    f"overfull node: {node.size()} > {self.max_entries}"
                )
            if node.is_leaf:
                leaf_depths.append(depth)
                if node.entries:
                    expected = Rect.from_points(p for p, _ in node.entries)
                    if node.mbr != expected:
                        raise AssertionError("stale leaf MBR")
            else:
                expected = union_all(
                    c.mbr for c in node.children if c.mbr is not None
                )
                if node.mbr != expected:
                    raise AssertionError("stale internal MBR")
                expected_weight = sum(c.weight() for c in node.children)
                if node.weight() != expected_weight:
                    raise AssertionError(
                        f"stale subtree weight: {node.weight()} != "
                        f"{expected_weight}"
                    )
                for child in node.children:
                    if child.parent is not node:
                        raise AssertionError("broken parent pointer")
                    stack.append((child, depth + 1))
        if leaf_depths and len(set(leaf_depths)) != 1:
            raise AssertionError(f"unbalanced leaf depths: {set(leaf_depths)}")

    # -- internals ----------------------------------------------------------

    def _choose_leaf(self, node: _Node, point: Point) -> _Node:
        """Guttman ChooseLeaf: descend by least enlargement, ties by area."""
        rect = Rect.from_point(point)
        while not node.is_leaf:
            node = min(
                node.children,
                key=lambda child: (
                    child.mbr.enlargement(rect) if child.mbr else 0.0,
                    child.mbr.area if child.mbr else 0.0,
                ),
            )
        return node

    def _tighten_upwards(self, node: Optional[_Node]) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    def _split_and_propagate(self, node: _Node) -> None:
        while node.size() > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(is_leaf=False)
                new_root.children = [node, sibling]
                node.parent = sibling.parent = new_root
                new_root.recompute_mbr()
                self._root = new_root
                return
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_mbr()
            node = parent
        self._tighten_upwards(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        """Split ``node`` in place, returning the new sibling."""
        if node.is_leaf:
            rects = [Rect.from_point(p) for p, _ in node.entries]
            payload: Sequence = node.entries
        else:
            rects = [c.mbr for c in node.children]
            payload = node.children

        seed_a, seed_b = _pick_seeds(rects)
        group_a = [seed_a]
        group_b = [seed_b]
        mbr_a = rects[seed_a]
        mbr_b = rects[seed_b]
        remaining = [i for i in range(len(rects)) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group must absorb the rest to reach minimum fill, do so.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            if need_a >= len(remaining):
                group_a.extend(remaining)
                for i in remaining:
                    mbr_a = mbr_a.union(rects[i])
                break
            if need_b >= len(remaining):
                group_b.extend(remaining)
                for i in remaining:
                    mbr_b = mbr_b.union(rects[i])
                break
            # PickNext: the entry with the largest preference difference.
            best_index = max(
                range(len(remaining)),
                key=lambda idx: abs(
                    mbr_a.enlargement(rects[remaining[idx]])
                    - mbr_b.enlargement(rects[remaining[idx]])
                ),
            )
            i = remaining.pop(best_index)
            growth_a = mbr_a.enlargement(rects[i])
            growth_b = mbr_b.enlargement(rects[i])
            if (growth_a, mbr_a.area, len(group_a)) <= (
                growth_b,
                mbr_b.area,
                len(group_b),
            ):
                group_a.append(i)
                mbr_a = mbr_a.union(rects[i])
            else:
                group_b.append(i)
                mbr_b = mbr_b.union(rects[i])

        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            entries = node.entries
            node.entries = [entries[i] for i in group_a]
            sibling.entries = [entries[i] for i in group_b]
        else:
            children = node.children
            node.children = [children[i] for i in group_a]
            sibling.children = [children[i] for i in group_b]
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    def _find_leaf(
        self, node: _Node, point: Point, item_id: int
    ) -> Optional[_Node]:
        if node.mbr is None or not node.mbr.contains_point(point):
            return None
        if node.is_leaf:
            return node if (point, item_id) in node.entries else None
        for child in node.children:
            found = self._find_leaf(child, point, item_id)
            if found is not None:
                return found
        return None

    def _condense_tree(self, leaf: _Node) -> None:
        """Guttman CondenseTree: dissolve underfull nodes, re-insert orphans."""
        orphans: List[Entry] = []
        node = leaf
        while node.parent is not None:
            parent = node.parent
            if node.size() < self.min_entries:
                parent.children.remove(node)
                orphans.extend(_collect_entries(node))
            else:
                node.recompute_mbr()
            node = parent
        self._root.recompute_mbr()
        for point, item_id in orphans:
            self._count -= 1  # insert() will re-increment
            self.insert(point, item_id)


def _pick_seeds(rects: Sequence[Rect]) -> Tuple[int, int]:
    """Guttman PickSeeds: the pair wasting the most area together."""
    best_pair = (0, 1)
    worst_waste = -math.inf
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = (
                rects[i].union(rects[j]).area - rects[i].area - rects[j].area
            )
            if waste > worst_waste:
                worst_waste = waste
                best_pair = (i, j)
    return best_pair


def _collect_entries(node: _Node) -> List[Entry]:
    """All leaf entries beneath ``node``."""
    collected: List[Entry] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            collected.extend(current.entries)
        else:
            stack.extend(current.children)
    return collected
