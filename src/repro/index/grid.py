"""Uniform grid index.

The simplest useful spatial index: space is cut into ``resolution x
resolution`` equal cells and each cell keeps a bucket of entries.  It serves
two roles here: a cheap baseline for the index ablation, and a second
independent oracle (besides brute force) in the test suite — its query logic
shares no code with the tree indexes.

Complexity: for uniform data a window query touches the
``O(window_area * resolution^2)`` overlapped cells plus their occupants,
so it is excellent for small windows over uniform data and degrades when
data is skewed into few cells (no adaptivity — that is the quadtree's
job).  Nearest-neighbour search rings outward cell-by-cell from the query
cell, which keeps it correct even for points outside ``bounds`` (they are
clamped into the border cells).  Node accesses count visited cells, so
grid numbers are directly comparable with the tree indexes in the
ablation bench.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import Entry, SpatialIndex

_DEFAULT_RESOLUTION = 64


class GridIndex(SpatialIndex):
    """Fixed-resolution uniform grid over a bounding box.

    Points outside ``bounds`` are clamped into the border cells, so the
    index remains correct (if less efficient) for out-of-range data.
    """

    def __init__(
        self,
        bounds: Rect = Rect(0.0, 0.0, 1.0, 1.0),
        resolution: int = _DEFAULT_RESOLUTION,
    ) -> None:
        super().__init__()
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if bounds.width <= 0.0 or bounds.height <= 0.0:
            raise ValueError("grid bounds must have positive area")
        self.extent = bounds
        self.resolution = resolution
        self._cells: Dict[Tuple[int, int], List[Entry]] = defaultdict(list)
        self._count = 0

    # -- cell addressing ----------------------------------------------------

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        cx = int(
            (point.x - self.extent.min_x) / self.extent.width * self.resolution
        )
        cy = int(
            (point.y - self.extent.min_y) / self.extent.height * self.resolution
        )
        return (
            min(max(cx, 0), self.resolution - 1),
            min(max(cy, 0), self.resolution - 1),
        )

    def _cell_box(self, cx: int, cy: int) -> Rect:
        w = self.extent.width / self.resolution
        h = self.extent.height / self.resolution
        return Rect(
            self.extent.min_x + cx * w,
            self.extent.min_y + cy * h,
            self.extent.min_x + (cx + 1) * w,
            self.extent.min_y + (cy + 1) * h,
        )

    # -- construction ------------------------------------------------------

    def insert(self, point: Point, item_id: int) -> None:
        self._cells[self._cell_of(point)].append((point, item_id))
        self._count += 1

    def delete(self, point: Point, item_id: int) -> bool:
        bucket = self._cells.get(self._cell_of(point))
        if not bucket:
            return False
        try:
            bucket.remove((point, item_id))
        except ValueError:
            return False
        self._count -= 1
        return True

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------

    def window_query(self, window: Rect) -> List[Entry]:
        overlap = window.intersection(self.extent)
        results: List[Entry] = []
        if overlap is None:
            # Window entirely outside the nominal bounds; clamped points may
            # still match, so scan the border cells via the clamp.
            lo = self._cell_of(Point(window.min_x, window.min_y))
            hi = self._cell_of(Point(window.max_x, window.max_y))
        else:
            lo = self._cell_of(Point(overlap.min_x, overlap.min_y))
            hi = self._cell_of(Point(overlap.max_x, overlap.max_y))
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                self.stats.node_accesses += 1
                self.stats.entry_tests += len(bucket)
                results.extend(
                    entry for entry in bucket if window.contains_point(entry[0])
                )
        return results

    def window_ids_array(self, window: Rect):
        """Bulk window probe: gather whole buckets, mask once.

        Instead of calling ``window.contains_point`` per entry, the
        overlapped cells' buckets are gathered into coordinate/id arrays
        and filtered with one vectorized closed-bounds mask — identical
        ids to :meth:`window_query` (the mask is the same comparison),
        at C speed per candidate.  Every gathered entry goes through the
        mask: a "cell box inside the window" shortcut would be unsound
        here, because cell *assignment* (a division rounding) and the
        cell-box corners (a multiplication rounding) can disagree by an
        ulp, so a bucket may legitimately hold a point fractionally
        outside its nominal box — besides the border cells, which hold
        clamped out-of-extent points outright.
        """
        import numpy as np

        overlap = window.intersection(self.extent)
        if overlap is None:
            lo = self._cell_of(Point(window.min_x, window.min_y))
            hi = self._cell_of(Point(window.max_x, window.max_y))
        else:
            lo = self._cell_of(Point(overlap.min_x, overlap.min_y))
            hi = self._cell_of(Point(overlap.max_x, overlap.max_y))
        candidates: List[Entry] = []
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                self.stats.node_accesses += 1
                self.stats.entry_tests += len(bucket)
                candidates.extend(bucket)
        count = len(candidates)
        if not count:
            return np.empty(0, dtype=np.int64)
        xs = np.fromiter(
            (p.x for p, _ in candidates), dtype=np.float64, count=count
        )
        ys = np.fromiter(
            (p.y for p, _ in candidates), dtype=np.float64, count=count
        )
        ids = np.fromiter(
            (item_id for _, item_id in candidates),
            dtype=np.int64,
            count=count,
        )
        from repro.geometry.kernels import rect_contains_many

        return ids[rect_contains_many(window, xs, ys)]

    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        results = self.k_nearest_neighbors(query, 1)
        return results[0] if results else None

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        """Expanding-ring search around the query's cell."""
        if k <= 0 or self._count == 0:
            return []
        center = self._cell_of(query)
        best: List[Tuple[float, int, Point]] = []
        cell_w = self.extent.width / self.resolution
        cell_h = self.extent.height / self.resolution
        max_radius = self.resolution  # rings beyond this cover everything

        for radius in range(0, max_radius + 1):
            for cx, cy in self._ring_cells(center, radius):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                self.stats.node_accesses += 1
                self.stats.entry_tests += len(bucket)
                for point, item_id in bucket:
                    best.append(
                        (point.squared_distance_to(query), item_id, point)
                    )
            if len(best) >= k:
                best.sort(key=lambda t: (t[0], t[1]))
                # The k-th candidate is only final once the next unexplored
                # ring cannot contain anything closer.
                kth_distance = math.sqrt(best[k - 1][0])
                ring_distance = radius * min(cell_w, cell_h)
                if kth_distance <= ring_distance:
                    break
        best.sort(key=lambda t: (t[0], t[1]))
        return [(point, item_id) for _, item_id, point in best[:k]]

    def _ring_cells(
        self, center: Tuple[int, int], radius: int
    ) -> Iterator[Tuple[int, int]]:
        cx0, cy0 = center
        if radius == 0:
            if 0 <= cx0 < self.resolution and 0 <= cy0 < self.resolution:
                yield (cx0, cy0)
            return
        lo_x, hi_x = cx0 - radius, cx0 + radius
        lo_y, hi_y = cy0 - radius, cy0 + radius
        for cx in range(lo_x, hi_x + 1):
            for cy in (lo_y, hi_y):
                if 0 <= cx < self.resolution and 0 <= cy < self.resolution:
                    yield (cx, cy)
        for cy in range(lo_y + 1, hi_y):
            for cx in (lo_x, hi_x):
                if 0 <= cx < self.resolution and 0 <= cy < self.resolution:
                    yield (cx, cy)

    def items(self) -> Iterator[Entry]:
        for bucket in self._cells.values():
            yield from bucket

    def occupancy(self) -> Dict[Tuple[int, int], int]:
        """Bucket sizes keyed by cell, for diagnostics and tests."""
        return {cell: len(bucket) for cell, bucket in self._cells.items() if bucket}
