"""PR (point-region) quadtree.

Another classical index from the paper's related-work survey (Samet 1984).
Space is recursively quartered; leaves hold up to ``capacity`` points.  The
tree needs a bounding box at construction time — callers index normalised
data in the unit square by default, and the box grows automatically if a
point falls outside it (by re-rooting).

Unlike the R-tree family the decomposition is *space*-driven, not
data-driven: node boundaries never overlap, so a window query descends
every subtree intersecting the window with no double-visits, while
clustered data simply subdivides deeper (down to ``_MAX_DEPTH``, where
duplicates and near-duplicates stay in one overflowing leaf rather than
recursing forever).  That makes it the interesting *middle* point of the
index ablation: adaptive like a tree, overlap-free like the grid.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import Entry, SpatialIndex

_DEFAULT_CAPACITY = 16
_MAX_DEPTH = 48  # beyond this, duplicates/near-duplicates stay in one leaf


class _QuadNode:
    __slots__ = ("box", "entries", "children", "depth")

    def __init__(self, box: Rect, depth: int) -> None:
        self.box = box
        self.entries: Optional[List[Entry]] = []  # None once subdivided
        self.children: Optional[List["_QuadNode"]] = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def quadrant_for(self, point: Point) -> int:
        """0=SW, 1=SE, 2=NW, 3=NE, by comparison with the box centre."""
        center = self.box.center
        index = 0
        if point.x >= center.x:
            index += 1
        if point.y >= center.y:
            index += 2
        return index

class QuadTree(SpatialIndex):
    """PR quadtree with window and best-first NN queries."""

    def __init__(
        self,
        bounds: Rect = Rect(0.0, 0.0, 1.0, 1.0),
        capacity: int = _DEFAULT_CAPACITY,
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._root = _QuadNode(bounds, depth=0)
        self._count = 0

    # -- construction ------------------------------------------------------

    def insert(self, point: Point, item_id: int) -> None:
        while not self._root.box.contains_point(point):
            self._grow_towards(point)
        self._insert_into(self._root, point, item_id)
        self._count += 1

    def _grow_towards(self, point: Point) -> None:
        """Double the root box towards ``point``, re-rooting the tree."""
        b = self._root.box
        grow_left = point.x < b.min_x
        grow_down = point.y < b.min_y
        new_box = Rect(
            b.min_x - (b.width if grow_left else 0.0),
            b.min_y - (b.height if grow_down else 0.0),
            b.max_x + (0.0 if grow_left else b.width),
            b.max_y + (0.0 if grow_down else b.height),
        )
        old_root = self._root
        new_root = _QuadNode(new_box, depth=0)
        new_root.entries = None
        center = new_box.center
        new_root.children = [
            _QuadNode(Rect(new_box.min_x, new_box.min_y, center.x, center.y), 1),
            _QuadNode(Rect(center.x, new_box.min_y, new_box.max_x, center.y), 1),
            _QuadNode(Rect(new_box.min_x, center.y, center.x, new_box.max_y), 1),
            _QuadNode(Rect(center.x, center.y, new_box.max_x, new_box.max_y), 1),
        ]
        # The old root occupies exactly one quadrant of the new root.
        quadrant = new_root.quadrant_for(old_root.box.center)
        old_root.depth = 1
        _bump_depths(old_root)
        new_root.children[quadrant] = old_root
        self._root = new_root

    def _insert_into(self, node: _QuadNode, point: Point, item_id: int) -> None:
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[node.quadrant_for(point)]
        assert node.entries is not None
        node.entries.append((point, item_id))
        if len(node.entries) > self.capacity and node.depth < _MAX_DEPTH:
            self._subdivide(node)

    def _subdivide(self, node: _QuadNode) -> None:
        center = node.box.center
        b = node.box
        node.children = [
            _QuadNode(Rect(b.min_x, b.min_y, center.x, center.y), node.depth + 1),
            _QuadNode(Rect(center.x, b.min_y, b.max_x, center.y), node.depth + 1),
            _QuadNode(Rect(b.min_x, center.y, center.x, b.max_y), node.depth + 1),
            _QuadNode(Rect(center.x, center.y, b.max_x, b.max_y), node.depth + 1),
        ]
        assert node.entries is not None
        entries, node.entries = node.entries, None
        for point, item_id in entries:
            self._insert_into(node, point, item_id)

    def delete(self, point: Point, item_id: int) -> bool:
        node = self._root
        if not node.box.contains_point(point):
            return False
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[node.quadrant_for(point)]
        assert node.entries is not None
        try:
            node.entries.remove((point, item_id))
        except ValueError:
            return False
        self._count -= 1
        return True

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------

    def window_query(self, window: Rect) -> List[Entry]:
        results: List[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not window.intersects(node.box):
                continue
            self.stats.node_accesses += 1
            if node.is_leaf:
                assert node.entries is not None
                self.stats.entry_tests += len(node.entries)
                results.extend(
                    entry
                    for entry in node.entries
                    if window.contains_point(entry[0])
                )
            else:
                assert node.children is not None
                stack.extend(node.children)
        return results

    def window_ids_array(self, window: Rect):
        """Bulk window probe: ids only, contained quadrants wholesale.

        Quadrant boxes are exact (space-driven decomposition), so a node
        box inside the window proves every occupant's membership — those
        subtrees dump ids with no per-point tests; only boundary leaves
        pay them.  Id set identical to :meth:`window_query`; int64
        array, unspecified order.
        """
        from repro.index.rtree import _mask_boundary_entries

        ids: List[int] = []
        boundary_entries: List[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not window.intersects(node.box):
                continue
            self.stats.node_accesses += 1
            if window.contains_rect(node.box):
                self._collect_subtree_ids(node, ids)
                continue
            if node.is_leaf:
                assert node.entries is not None
                self.stats.entry_tests += len(node.entries)
                boundary_entries.extend(node.entries)
            else:
                assert node.children is not None
                stack.extend(node.children)
        return _mask_boundary_entries(window, ids, boundary_entries)

    def _collect_subtree_ids(self, start: _QuadNode, ids: List[int]) -> None:
        """Append every entry id below ``start`` (no geometric tests)."""
        stack = [start]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.entries is not None
                ids.extend([item_id for _, item_id in node.entries])
            else:
                assert node.children is not None
                self.stats.node_accesses += len(node.children)
                stack.extend(node.children)

    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        results = self.k_nearest_neighbors(query, 1)
        return results[0] if results else None

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        if k <= 0 or self._count == 0:
            return []
        counter = itertools.count()
        # (distance, kind, tiebreak, payload): nodes (kind 0) explored
        # before equal-distance entries (kind 1, tie-broken by id), so
        # equidistant duplicates come out in deterministic id order.
        heap: List[Tuple[float, int, int, object]] = [
            (
                self._root.box.squared_distance_to_point(query),
                0,
                next(counter),
                self._root,
            )
        ]
        results: List[Entry] = []
        while heap and len(results) < k:
            _, kind, _, item = heapq.heappop(heap)
            if kind == 0:
                node: _QuadNode = item  # type: ignore[assignment]
                self.stats.node_accesses += 1
                if node.is_leaf:
                    assert node.entries is not None
                    self.stats.entry_tests += len(node.entries)
                    for entry in node.entries:
                        heapq.heappush(
                            heap,
                            (
                                entry[0].squared_distance_to(query),
                                1,
                                entry[1],
                                entry,
                            ),
                        )
                else:
                    assert node.children is not None
                    for child in node.children:
                        heapq.heappush(
                            heap,
                            (
                                child.box.squared_distance_to_point(query),
                                0,
                                next(counter),
                                child,
                            ),
                        )
            else:
                results.append(item)  # type: ignore[arg-type]
        return results

    def items(self) -> Iterator[Entry]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.entries is not None
                yield from node.entries
            else:
                assert node.children is not None
                stack.extend(node.children)

    @property
    def depth(self) -> int:
        """Maximum leaf depth."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                assert node.children is not None
                stack.extend(node.children)
        return best


def _bump_depths(node: _QuadNode) -> None:
    """Recursively shift subtree depths after re-rooting."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.children is not None:
            for child in current.children:
                child.depth = current.depth + 1
                stack.append(child)
