"""R*-tree: Beckmann et al.'s improved R-tree.

Used in the index-choice ablation (``benchmarks/bench_ablation_indexes.py``):
the paper argues that the traditional method's weakness is the *candidate
set*, not the filter — so even a better-shaped tree should not close the gap
to the Voronoi method.  This variant implements the three R* signatures:

* **ChooseSubtree** minimising overlap enlargement at the level above the
  leaves (plain area enlargement higher up),
* **topological split**: choose the split axis by minimum margin sum, the
  split index by minimum overlap, and
* **forced re-insertion** of the 30 % of entries farthest from the node
  centre on the first overflow at each level per insertion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree, _Node, _collect_entries

_REINSERT_FRACTION = 0.3


class RStarTree(RTree):
    """R*-tree over 2-D points; same public interface as :class:`RTree`."""

    def __init__(
        self,
        max_entries: int = 16,
        min_entries: Optional[int] = None,
    ) -> None:
        super().__init__(max_entries, min_entries)
        self._reinserting_levels: Set[int] = set()

    # -- insertion ----------------------------------------------------------

    def insert(self, point: Point, item_id: int) -> None:
        self._reinserting_levels.clear()
        self._insert_entry(point, item_id)

    def _insert_entry(self, point: Point, item_id: int) -> None:
        leaf = self._choose_subtree(point)
        leaf.entries.append((point, item_id))
        leaf.extend_mbr(Rect.from_point(point))
        self._count += 1
        if leaf.size() > self.max_entries:
            self._overflow_treatment(leaf, level=self._node_level(leaf))
        else:
            self._tighten_upwards(leaf.parent)

    def _choose_subtree(self, point: Point) -> _Node:
        rect = Rect.from_point(point)
        node = self._root
        while not node.is_leaf:
            children = node.children
            if children and children[0].is_leaf:
                # Level above the leaves: minimise overlap enlargement.
                node = min(
                    children,
                    key=lambda child: (
                        _overlap_enlargement(child, children, rect),
                        child.mbr.enlargement(rect) if child.mbr else 0.0,
                        child.mbr.area if child.mbr else 0.0,
                    ),
                )
            else:
                node = min(
                    children,
                    key=lambda child: (
                        child.mbr.enlargement(rect) if child.mbr else 0.0,
                        child.mbr.area if child.mbr else 0.0,
                    ),
                )
        return node

    def _node_level(self, node: _Node) -> int:
        level = 0
        current = node
        while current.parent is not None:
            current = current.parent
            level += 1
        return level

    def _overflow_treatment(self, node: _Node, level: int) -> None:
        if node is not self._root and level not in self._reinserting_levels:
            self._reinserting_levels.add(level)
            self._forced_reinsert(node)
        else:
            self._split_and_propagate(node)

    def _forced_reinsert(self, node: _Node) -> None:
        """Remove the entries farthest from the node centre and re-insert."""
        center = node.mbr.center if node.mbr is not None else Point(0.0, 0.0)
        reinsert_count = max(1, int(node.size() * _REINSERT_FRACTION))
        if node.is_leaf:
            node.entries.sort(
                key=lambda entry: entry[0].squared_distance_to(center)
            )
            evicted = node.entries[-reinsert_count:]
            node.entries = node.entries[:-reinsert_count]
            node.recompute_mbr()
            self._tighten_upwards(node.parent)
            for point, item_id in evicted:
                self._count -= 1  # _insert_entry re-increments
                self._insert_entry(point, item_id)
        else:
            node.children.sort(
                key=lambda child: (
                    child.mbr.center.squared_distance_to(center)
                    if child.mbr is not None
                    else 0.0
                )
            )
            evicted_nodes = node.children[-reinsert_count:]
            node.children = node.children[:-reinsert_count]
            node.recompute_mbr()
            self._tighten_upwards(node.parent)
            for child in evicted_nodes:
                for point, item_id in _collect_entries(child):
                    self._count -= 1
                    self._insert_entry(point, item_id)

    # -- split --------------------------------------------------------------

    def _quadratic_split(self, node: _Node) -> _Node:
        """R* topological split (name kept so RTree's propagation reuses it)."""
        if node.is_leaf:
            rects = [Rect.from_point(p) for p, _ in node.entries]
            payload: Sequence = list(node.entries)
        else:
            rects = [c.mbr for c in node.children]
            payload = list(node.children)

        order, split_at = self._choose_split(rects)
        group_a = [payload[i] for i in order[:split_at]]
        group_b = [payload[i] for i in order[split_at:]]

        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    def _choose_split(
        self, rects: Sequence[Rect]
    ) -> Tuple[List[int], int]:
        """Pick (sorted index order, split position) per the R* criteria."""
        m = self.min_entries
        n = len(rects)
        best: Tuple[float, float, List[int], int] | None = None
        for axis_keys in (
            lambda r: (r.min_x, r.max_x),
            lambda r: (r.min_y, r.max_y),
        ):
            order = sorted(range(n), key=lambda i: axis_keys(rects[i]))
            margin_sum = 0.0
            candidates: List[Tuple[float, float, int]] = []
            for split_at in range(m, n - m + 1):
                left = _union_rects([rects[i] for i in order[:split_at]])
                right = _union_rects([rects[i] for i in order[split_at:]])
                margin_sum += left.margin + right.margin
                overlap = left.intersection_area(right)
                area = left.area + right.area
                candidates.append((overlap, area, split_at))
            overlap, area, split_at = min(candidates)
            key = (margin_sum, overlap + area)
            if best is None or key < (best[0], best[1]):
                best = (margin_sum, overlap + area, order, split_at)
        assert best is not None
        return best[2], best[3]


def _union_rects(rects: Sequence[Rect]) -> Rect:
    result = rects[0]
    for rect in rects[1:]:
        result = result.union(rect)
    return result


def _overlap_enlargement(
    child: _Node, siblings: Sequence[_Node], rect: Rect
) -> float:
    """Increase in total overlap with siblings if ``child`` absorbs ``rect``."""
    if child.mbr is None:
        return 0.0
    enlarged = child.mbr.union(rect)
    before = 0.0
    after = 0.0
    for other in siblings:
        if other is child or other.mbr is None:
            continue
        before += child.mbr.intersection_area(other.mbr)
        after += enlarged.intersection_area(other.mbr)
    return after - before
